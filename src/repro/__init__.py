"""repro: a reproduction of MAMUT (DATE 2019).

MAMUT is a multi-agent Q-learning run-time manager for QoS-aware real-time
multi-user HEVC video transcoding: three cooperating agents tune the HEVC
Quantization Parameter, the number of WPP encoding threads and the per-core
frequency of a multicore server, with throughput and quality objectives under
power and bandwidth constraints.

Quick start::

    from repro import (
        MamutController, MamutConfig, TranscodingRequest, TranscodingSession,
        Orchestrator, make_sequence,
    )

    sequence = make_sequence("Cactus", num_frames=240)
    request = TranscodingRequest(user_id="u0", sequence=sequence)
    controller = MamutController(MamutConfig.for_request(request))
    session = TranscodingSession(request, controller)
    result = Orchestrator([session]).run()
    print(result.summary().qos_violation_pct)

See ``DESIGN.md`` for the module map and ``EXPERIMENTS.md`` for the
paper-versus-measured comparison of every table and figure.
"""

from repro.constants import (
    DVFS_VALUES_GHZ,
    HR_MAX_THREADS,
    LR_MAX_THREADS,
    QP_VALUES,
    TARGET_FPS,
)
from repro.core import (
    ActionSet,
    Controller,
    Decision,
    MamutConfig,
    MamutController,
    Observation,
    QLearningAgent,
    RewardConfig,
    RewardFunction,
    StateSpace,
    SystemState,
)
from repro.baselines import (
    HeuristicConfig,
    HeuristicController,
    MonoAgentConfig,
    MonoAgentController,
    StaticController,
)
from repro.hevc import EncoderConfig, HevcEncoder, Preset, Transcoder
from repro.manager import (
    ExperimentRunner,
    Orchestrator,
    SessionSpec,
    TranscodingSession,
    heuristic_factory,
    mamut_factory,
    monoagent_factory,
    scenario_one,
    scenario_two,
    static_factory,
)
from repro.cluster import (
    AdmissionVerdict,
    AlwaysAdmit,
    CapacityThreshold,
    ClusterOrchestrator,
    ClusterResult,
    CompositeTraffic,
    DiurnalTraffic,
    FlashCrowdTraffic,
    LeastLoaded,
    PoissonTraffic,
    PowerAware,
    PowerHeadroom,
    RoundRobin,
    WorkloadGenerator,
)
from repro.metrics import ClusterSummary, ExperimentSummary, FrameRecord, SessionSummary
from repro.platform import (
    CpuTopology,
    DvfsDriver,
    DvfsPolicy,
    MulticoreServer,
    PowerModel,
)
from repro.video import (
    ResolutionClass,
    TranscodingRequest,
    VideoSequence,
    make_sequence,
)

__version__ = "1.0.0"

__all__ = [
    # constants
    "QP_VALUES",
    "DVFS_VALUES_GHZ",
    "HR_MAX_THREADS",
    "LR_MAX_THREADS",
    "TARGET_FPS",
    # core
    "ActionSet",
    "Controller",
    "Decision",
    "MamutConfig",
    "MamutController",
    "Observation",
    "QLearningAgent",
    "RewardConfig",
    "RewardFunction",
    "StateSpace",
    "SystemState",
    # baselines
    "HeuristicConfig",
    "HeuristicController",
    "MonoAgentConfig",
    "MonoAgentController",
    "StaticController",
    # hevc
    "EncoderConfig",
    "HevcEncoder",
    "Preset",
    "Transcoder",
    # manager
    "ExperimentRunner",
    "Orchestrator",
    "SessionSpec",
    "TranscodingSession",
    "mamut_factory",
    "monoagent_factory",
    "heuristic_factory",
    "static_factory",
    "scenario_one",
    "scenario_two",
    # cluster
    "ClusterOrchestrator",
    "ClusterResult",
    "WorkloadGenerator",
    "PoissonTraffic",
    "DiurnalTraffic",
    "FlashCrowdTraffic",
    "CompositeTraffic",
    "AdmissionVerdict",
    "AlwaysAdmit",
    "CapacityThreshold",
    "PowerHeadroom",
    "RoundRobin",
    "LeastLoaded",
    "PowerAware",
    # metrics
    "ClusterSummary",
    "ExperimentSummary",
    "FrameRecord",
    "SessionSummary",
    # platform
    "CpuTopology",
    "DvfsDriver",
    "DvfsPolicy",
    "MulticoreServer",
    "PowerModel",
    # video
    "ResolutionClass",
    "TranscodingRequest",
    "VideoSequence",
    "make_sequence",
    "__version__",
]
