"""Command-line interface for the MAMUT reproduction.

Provides quick access to the main experiments without writing Python::

    repro-mamut quickstart --frames 600
    repro-mamut compare --hr 1 --lr 1 --frames 360
    repro-mamut fig2
    repro-mamut fig5 --frames 500
    repro-mamut table1
    repro-mamut table2 --mixes 1x1,2x2,3x3

(Equivalently: ``python -m repro.cli <command> ...``.)
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.figures import fig2_characterization, fig5_trace
from repro.analysis.tables import (
    fig4_scenario_one_sweep,
    table1_threads_frequency,
    table2_scenario_two,
)
from repro.constants import DEFAULT_POWER_CAP_W
from repro.core.config import MamutConfig
from repro.core.mamut import MamutController
from repro.manager.factories import heuristic_factory, mamut_factory, monoagent_factory
from repro.manager.orchestrator import Orchestrator
from repro.manager.runner import ExperimentRunner
from repro.manager.scenario import scenario_one
from repro.manager.session import TranscodingSession
from repro.metrics.report import format_table
from repro.video.catalog import make_sequence
from repro.video.request import TranscodingRequest

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-mamut",
        description="MAMUT (DATE 2019) reproduction: experiments from the command line.",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--power-cap", type=float, default=DEFAULT_POWER_CAP_W, help="server power cap (W)"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    quickstart = subparsers.add_parser("quickstart", help="one HR video under MAMUT control")
    quickstart.add_argument("--frames", type=int, default=600)
    quickstart.add_argument("--sequence", default="Cactus")

    compare = subparsers.add_parser("compare", help="compare MAMUT against the baselines")
    compare.add_argument("--hr", type=int, default=1, help="number of HR videos")
    compare.add_argument("--lr", type=int, default=1, help="number of LR videos")
    compare.add_argument("--frames", type=int, default=240)
    compare.add_argument("--repetitions", type=int, default=1)
    compare.add_argument("--warmup-videos", type=int, default=1)

    fig2 = subparsers.add_parser("fig2", help="regenerate the Fig. 2 characterisation")
    fig2.add_argument("--frames", type=int, default=24)

    fig4 = subparsers.add_parser("fig4", help="regenerate the Fig. 4 Scenario I sweep")
    fig4.add_argument("--frames", type=int, default=120)
    fig4.add_argument("--warmup-videos", type=int, default=1)

    fig5 = subparsers.add_parser("fig5", help="regenerate the Fig. 5 MAMUT trace")
    fig5.add_argument("--frames", type=int, default=500)
    fig5.add_argument("--sequence", default="Cactus")

    subparsers.add_parser("table1", help="regenerate Table I (threads / frequency)")

    table2 = subparsers.add_parser("table2", help="regenerate Table II (Scenario II)")
    table2.add_argument(
        "--mixes",
        default="1x1,2x2,3x3",
        help="comma-separated HRxLR mixes, e.g. 1x1,2x3",
    )
    table2.add_argument("--frames-per-video", type=int, default=96)
    table2.add_argument("--warmup-videos", type=int, default=3)

    return parser


def _parse_mixes(text: str) -> list[tuple[int, int]]:
    mixes = []
    for chunk in text.split(","):
        hr, _, lr = chunk.strip().partition("x")
        mixes.append((int(hr), int(lr)))
    return mixes


def _cmd_quickstart(args: argparse.Namespace) -> None:
    sequence = make_sequence(args.sequence, num_frames=args.frames, seed=args.seed)
    request = TranscodingRequest(user_id="cli", sequence=sequence)
    controller = MamutController(
        MamutConfig.for_request(request, power_cap_w=args.power_cap, seed=args.seed)
    )
    summary = Orchestrator([TranscodingSession(request, controller)]).run().summary()
    session = summary.sessions["cli"]
    print(
        format_table(
            ["metric", "value"],
            [
                ["frames", session.frames],
                ["mean FPS", session.mean_fps],
                ["QoS violations (%)", session.qos_violation_pct],
                ["mean PSNR (dB)", session.mean_psnr_db],
                ["mean power (W)", summary.mean_power_w],
            ],
            float_format="{:.2f}",
        )
    )


def _cmd_compare(args: argparse.Namespace) -> None:
    specs = scenario_one(args.hr, args.lr, num_frames=args.frames, seed=args.seed)
    runner = ExperimentRunner(power_cap_w=args.power_cap, seed=args.seed)
    results = runner.compare(
        {
            "Heuristic": heuristic_factory(args.power_cap),
            "MonoAgent": monoagent_factory(args.power_cap),
            "MAMUT": mamut_factory(args.power_cap),
        },
        specs,
        repetitions=args.repetitions,
        warmup_videos=args.warmup_videos,
    )
    rows = [
        [label, r.qos_violation_pct, r.mean_power_w, r.mean_fps, r.mean_threads, r.mean_frequency_ghz]
        for label, r in results.items()
    ]
    print(format_table(["controller", "Δ (%)", "Power (W)", "FPS", "Nth", "Freq (GHz)"], rows))


def _cmd_fig2(args: argparse.Namespace) -> None:
    points = fig2_characterization(num_frames=args.frames, seed=args.seed)
    rows = [
        [p.threads, p.qp, p.fps, p.power_w, p.psnr_db, p.bandwidth_mbytes_per_s]
        for p in points
    ]
    print(format_table(["threads", "QP", "FPS", "Power (W)", "PSNR", "BW (MB/s)"], rows, "{:.2f}"))


def _cmd_fig4(args: argparse.Namespace) -> None:
    rows = fig4_scenario_one_sweep(
        num_frames=args.frames,
        warmup_videos=args.warmup_videos,
        power_cap_w=args.power_cap,
        seed=args.seed,
    )
    table = [[r.workload, r.controller, r.qos_violation_pct, r.power_w] for r in rows]
    print(format_table(["workload", "controller", "Δ (%)", "Power (W)"], table))


def _cmd_fig5(args: argparse.Namespace) -> None:
    trace = fig5_trace(
        sequence_name=args.sequence,
        num_frames=args.frames,
        power_cap_w=args.power_cap,
        seed=args.seed,
    )
    rows = [
        [int(frame), fps, qp, threads, freq]
        for frame, fps, qp, threads, freq in zip(
            trace["frame"], trace["fps"], trace["qp"], trace["threads"], trace["frequency_ghz"]
        )
    ][:: max(1, args.frames // 25)]
    print(format_table(["frame", "FPS", "QP", "threads", "freq (GHz)"], rows, "{:.2f}"))


def _cmd_table1(args: argparse.Namespace) -> None:
    rows = table1_threads_frequency(power_cap_w=args.power_cap, seed=args.seed)
    table = [[r.controller, r.resolution_class, r.mean_threads, r.mean_frequency_ghz] for r in rows]
    print(format_table(["controller", "class", "Nth", "Freq (GHz)"], table, "{:.2f}"))


def _cmd_table2(args: argparse.Namespace) -> None:
    rows = table2_scenario_two(
        mixes=_parse_mixes(args.mixes),
        frames_per_video=args.frames_per_video,
        warmup_videos=args.warmup_videos,
        power_cap_w=args.power_cap,
        seed=args.seed,
    )
    table = [
        [r.workload, r.controller, r.power_w, r.mean_threads, r.mean_fps, r.qos_violation_pct]
        for r in rows
    ]
    print(format_table(["mix", "controller", "Watts", "Nth", "FPS", "Δ (%)"], table))


_COMMANDS = {
    "quickstart": _cmd_quickstart,
    "compare": _cmd_compare,
    "fig2": _cmd_fig2,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _COMMANDS[args.command](args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
