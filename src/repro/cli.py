"""Command-line interface for the MAMUT reproduction.

Provides quick access to the main experiments without writing Python::

    repro-mamut quickstart --frames 600
    repro-mamut compare --hr 1 --lr 1 --frames 360
    repro-mamut fig2
    repro-mamut fig5 --frames 500
    repro-mamut table1
    repro-mamut table2 --mixes 1x1,2x2,3x3
    repro-mamut cluster --servers 4 --arrival-rate 2.0 --duration 500
    repro-mamut cluster --traffic flash --autoscale reactive --max-servers 12
    repro-mamut cluster --traffic flash --patience 12 --brownout
    repro-mamut cluster --admission class-aware --hr-max-queue 32 --lr-max-queue 4
    repro-mamut cluster --fault-mtbf 60 --fault-seed 7 --autoscale reactive
    repro-mamut cluster --slo-queue-wait-p95 4 --slo-shed-rate 5 --summary-out run.json
    repro-mamut obs report trace.jsonl --summary run.json
    repro-mamut obs compare baseline.json candidate.json --rel-tol 0.01
    repro-mamut lint src tests
    repro-mamut lint --list-rules

(Equivalently: ``python -m repro.cli <command> ...``.)
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import sys
from typing import Sequence

from repro.analysis.figures import fig2_characterization, fig5_trace
from repro.cluster import (
    AlwaysAdmit,
    BrownoutController,
    CapacityThreshold,
    ClassAwareAdmission,
    ClusterOrchestrator,
    DiurnalTraffic,
    FailureAware,
    FailureTopology,
    FaultConfig,
    FlashCrowdTraffic,
    KillSchedule,
    LeastLoaded,
    PoissonTraffic,
    PowerAware,
    PowerHeadroom,
    PredictiveScaling,
    QueueWhileWarming,
    ReactiveThreshold,
    RoundRobin,
    TargetTracking,
    WorkloadGenerator,
)
from repro.video.sequence import ResolutionClass
from repro.analysis.tables import (
    fig4_scenario_one_sweep,
    table1_threads_frequency,
    table2_scenario_two,
)
from repro.constants import DEFAULT_POWER_CAP_W
from repro.core.config import MamutConfig
from repro.core.mamut import MamutController
from repro.lint import add_lint_arguments, lint_command
from repro.manager.factories import heuristic_factory, mamut_factory, monoagent_factory
from repro.manager.orchestrator import Orchestrator
from repro.manager.runner import ExperimentRunner
from repro.manager.scenario import scenario_one
from repro.manager.session import TranscodingSession
from repro.metrics.cluster import ClusterSummary
from repro.metrics.report import format_table
from repro.telemetry import (
    LOG_LEVELS,
    QueueWaitObjective,
    ShedRateObjective,
    TelemetryConfig,
    ViolationRateObjective,
    analyze_trace,
    configure_logging,
    provenance_mismatches,
    provenance_of,
    stamp_provenance,
)
from repro.video.catalog import make_sequence
from repro.video.request import TranscodingRequest

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-mamut",
        description="MAMUT (DATE 2019) reproduction: experiments from the command line.",
    )
    parser.add_argument("--seed", type=int, default=0, help="base random seed")
    parser.add_argument(
        "--power-cap", type=float, default=DEFAULT_POWER_CAP_W, help="server power cap (W)"
    )
    parser.add_argument(
        "--log-level",
        choices=LOG_LEVELS,
        default="info",
        help="verbosity of the 'repro' logger (debug shows scaling/brownout transitions)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    quickstart = subparsers.add_parser("quickstart", help="one HR video under MAMUT control")
    quickstart.add_argument("--frames", type=int, default=600)
    quickstart.add_argument("--sequence", default="Cactus")

    compare = subparsers.add_parser("compare", help="compare MAMUT against the baselines")
    compare.add_argument("--hr", type=int, default=1, help="number of HR videos")
    compare.add_argument("--lr", type=int, default=1, help="number of LR videos")
    compare.add_argument("--frames", type=int, default=240)
    compare.add_argument("--repetitions", type=int, default=1)
    compare.add_argument("--warmup-videos", type=int, default=1)

    fig2 = subparsers.add_parser("fig2", help="regenerate the Fig. 2 characterisation")
    fig2.add_argument("--frames", type=int, default=24)

    fig4 = subparsers.add_parser("fig4", help="regenerate the Fig. 4 Scenario I sweep")
    fig4.add_argument("--frames", type=int, default=120)
    fig4.add_argument("--warmup-videos", type=int, default=1)

    fig5 = subparsers.add_parser("fig5", help="regenerate the Fig. 5 MAMUT trace")
    fig5.add_argument("--frames", type=int, default=500)
    fig5.add_argument("--sequence", default="Cactus")

    subparsers.add_parser("table1", help="regenerate Table I (threads / frequency)")

    table2 = subparsers.add_parser("table2", help="regenerate Table II (Scenario II)")
    table2.add_argument(
        "--mixes",
        default="1x1,2x2,3x3",
        help="comma-separated HRxLR mixes, e.g. 1x1,2x3",
    )
    table2.add_argument("--frames-per-video", type=int, default=96)
    table2.add_argument("--warmup-videos", type=int, default=3)

    cluster = subparsers.add_parser(
        "cluster", help="multi-server fleet under arriving traffic"
    )
    cluster.add_argument("--servers", type=int, default=4, help="servers in the fleet")
    cluster.add_argument(
        "--arrival-rate", type=float, default=2.0, help="expected requests per step"
    )
    cluster.add_argument("--duration", type=int, default=500, help="arrival window (steps)")
    cluster.add_argument(
        "--traffic",
        choices=("poisson", "diurnal", "flash"),
        default="poisson",
        help="traffic model shaping the arrival rate",
    )
    cluster.add_argument(
        "--admission",
        choices=("always", "capacity", "power", "class-aware"),
        default="capacity",
        help="admission control policy (class-aware: per-resolution-class SLAs)",
    )
    cluster.add_argument(
        "--dispatch",
        choices=("round-robin", "least-loaded", "power-aware", "failure-aware"),
        default="least-loaded",
        help="load-balancing policy (failure-aware: crash-history-weighted)",
    )
    cluster.add_argument(
        "--max-sessions-per-server",
        type=int,
        default=4,
        help="concurrency bound of the capacity admission policy",
    )
    cluster.add_argument(
        "--max-queue", type=int, default=16, help="admission queue bound"
    )
    cluster.add_argument(
        "--hr-max-queue",
        type=int,
        default=None,
        help="HR queue bound under class-aware admission (default: --max-queue)",
    )
    cluster.add_argument(
        "--lr-max-queue",
        type=int,
        default=None,
        help="LR queue bound under class-aware admission (default: --max-queue)",
    )
    cluster.add_argument(
        "--patience",
        type=int,
        default=None,
        help="steps a queued request waits before being dropped (default: forever)",
    )
    cluster.add_argument(
        "--hr-patience",
        type=int,
        default=None,
        help="patience override for HR requests",
    )
    cluster.add_argument(
        "--lr-patience",
        type=int,
        default=None,
        help="patience override for LR requests",
    )
    cluster.add_argument(
        "--queue-while-warming",
        action="store_true",
        help="while servers warm, queue instead of rejecting (backlog may "
        "grow to 2x the queue bound)",
    )
    cluster.add_argument(
        "--brownout",
        action="store_true",
        help="degrade quality fleet-wide under sustained pressure instead of shedding",
    )
    cluster.add_argument(
        "--brownout-fps-relax",
        type=float,
        default=0.75,
        help="FPS-target factor applied to sessions admitted during brownout",
    )
    cluster.add_argument(
        "--brownout-extra-sessions",
        type=int,
        default=2,
        help="extra per-server session slots capacity admission unlocks during brownout",
    )
    cluster.add_argument("--hr-fraction", type=float, default=0.5)
    cluster.add_argument("--frames-per-video", type=int, default=72)
    cluster.add_argument("--playlist-videos", type=int, default=1)
    cluster.add_argument(
        "--autoscale",
        choices=("none", "reactive", "target-tracking", "predictive"),
        default="none",
        help="elastic fleet policy (--servers becomes the initial size)",
    )
    cluster.add_argument(
        "--min-servers", type=int, default=1, help="autoscaling floor"
    )
    cluster.add_argument(
        "--max-servers",
        type=int,
        default=None,
        help="autoscaling ceiling (default: 4x --servers)",
    )
    cluster.add_argument(
        "--warmup-steps",
        type=int,
        default=3,
        help="provisioning delay before a commissioned server takes sessions",
    )
    cluster.add_argument(
        "--no-drain",
        action="store_true",
        help="stop at the end of the arrival window instead of finishing sessions",
    )
    cluster.add_argument(
        "--fault-mtbf",
        type=float,
        default=None,
        metavar="STEPS",
        help="inject server crashes: per-server mean time between failures",
    )
    cluster.add_argument(
        "--fault-mttr",
        type=float,
        default=10.0,
        metavar="STEPS",
        help="mean downtime of a crashed server before it reboots",
    )
    cluster.add_argument(
        "--fault-straggler-mtbf",
        type=float,
        default=None,
        metavar="STEPS",
        help="inject transient throttles: per-server mean time between stragglers",
    )
    cluster.add_argument(
        "--fault-straggler-duration",
        type=float,
        default=5.0,
        metavar="STEPS",
        help="mean length of a straggler throttle episode",
    )
    cluster.add_argument(
        "--fault-warmup-failure",
        type=float,
        default=0.0,
        metavar="P",
        help="probability a freshly commissioned server never comes ready",
    )
    cluster.add_argument(
        "--fault-retries",
        type=int,
        default=3,
        help="crash-retry budget per request (0 = naive load shedding)",
    )
    cluster.add_argument(
        "--fault-backoff",
        type=int,
        default=2,
        metavar="STEPS",
        help="exponential retry backoff base after a crash",
    )
    cluster.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault injector's private random stream",
    )
    cluster.add_argument(
        "--fault-zones",
        type=int,
        default=1,
        metavar="N",
        help="failure zones the fleet is spread across",
    )
    cluster.add_argument(
        "--fault-racks-per-zone",
        type=int,
        default=1,
        metavar="N",
        help="racks inside each failure zone",
    )
    cluster.add_argument(
        "--fault-zone-mtbf",
        type=float,
        default=None,
        metavar="STEPS",
        help="inject correlated zone outages: per-zone mean time between failures",
    )
    cluster.add_argument(
        "--fault-zone-mttr",
        type=float,
        default=15.0,
        metavar="STEPS",
        help="mean downtime of the servers a zone outage takes down",
    )
    cluster.add_argument(
        "--kill-zone",
        action="append",
        default=None,
        metavar="Z:STEP:DUR",
        help="declaratively kill zone Z at STEP for DUR steps (repeatable)",
    )
    cluster.add_argument(
        "--checkpoint-interval",
        type=int,
        default=None,
        metavar="FRAMES",
        help="checkpoint session state every N frames so retries resume "
        "instead of recomputing the whole video",
    )
    # Accepted after the subcommand as well (SUPPRESS keeps the pre-command
    # values when the trailing flags are absent).
    cluster.add_argument(
        "--engine",
        choices=("batch", "scalar"),
        default="batch",
        help="stepping engine: vectorized NumPy batch (default) or scalar",
    )
    cluster.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write request-lifecycle spans as JSONL to PATH",
    )
    cluster.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write final metrics in Prometheus text format to PATH",
    )
    cluster.add_argument(
        "--profile",
        action="store_true",
        help="report per-phase engine wall time after the run",
    )
    cluster.add_argument(
        "--summary-out",
        default=None,
        metavar="PATH",
        help="write the run summary (with provenance) as JSON to PATH, "
        "for 'repro-mamut obs compare'",
    )
    cluster.add_argument(
        "--slo-queue-wait-p95",
        type=float,
        default=None,
        metavar="STEPS",
        help="SLO: windowed p95 queue wait must stay <= STEPS",
    )
    cluster.add_argument(
        "--slo-shed-rate",
        type=float,
        default=None,
        metavar="PCT",
        help="SLO: windowed shed rate (rejected+dropped+failed) <= PCT%% of arrivals",
    )
    cluster.add_argument(
        "--slo-violation-rate",
        type=float,
        default=None,
        metavar="PCT",
        help="SLO: windowed QoS-violating frames <= PCT%% of frames",
    )
    cluster.add_argument(
        "--slo-window",
        type=int,
        default=32,
        metavar="STEPS",
        help="rolling window the SLO objectives are judged over",
    )
    cluster.add_argument(
        "--slo-budget",
        type=float,
        default=5.0,
        metavar="PCT",
        help="error budget: share of run steps each SLO may spend in breach",
    )
    cluster.add_argument("--seed", type=int, default=argparse.SUPPRESS)
    cluster.add_argument("--power-cap", type=float, default=argparse.SUPPRESS)
    cluster.add_argument(
        "--log-level", choices=LOG_LEVELS, default=argparse.SUPPRESS
    )

    obs = subparsers.add_parser(
        "obs", help="observability: analyse traces, compare run artifacts"
    )
    obs_commands = obs.add_subparsers(dest="obs_command", required=True)
    report = obs_commands.add_parser(
        "report", help="human-readable analysis of a trace JSONL"
    )
    report.add_argument("trace", help="span stream written by --trace-out")
    report.add_argument(
        "--summary",
        default=None,
        metavar="PATH",
        help="run artifact from --summary-out to reconcile the trace against",
    )
    compare = obs_commands.add_parser(
        "compare",
        help="diff two --summary-out artifacts; nonzero exit on regression",
    )
    compare.add_argument("baseline", help="baseline run artifact (JSON)")
    compare.add_argument("candidate", help="candidate run artifact (JSON)")
    compare.add_argument(
        "--rel-tol",
        type=float,
        default=0.0,
        metavar="FRAC",
        help="relative tolerance for numeric drift (e.g. 0.01 = 1%%)",
    )
    compare.add_argument(
        "--abs-tol",
        type=float,
        default=0.0,
        metavar="X",
        help="absolute tolerance for numeric drift",
    )
    compare.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="GLOB",
        help="dotted metric paths to skip (fnmatch glob; repeatable)",
    )
    compare.add_argument(
        "--force",
        action="store_true",
        help="diff anyway when provenance says the runs are not comparable",
    )

    lint = subparsers.add_parser(
        "lint",
        help="static analysis: RNG discipline, layering, scalar/batch "
        "parity, telemetry purity",
    )
    add_lint_arguments(lint)

    return parser


def _parse_mixes(text: str) -> list[tuple[int, int]]:
    mixes = []
    for chunk in text.split(","):
        hr, _, lr = chunk.strip().partition("x")
        mixes.append((int(hr), int(lr)))
    return mixes


def _cmd_quickstart(args: argparse.Namespace) -> None:
    sequence = make_sequence(args.sequence, num_frames=args.frames, seed=args.seed)
    request = TranscodingRequest(user_id="cli", sequence=sequence)
    controller = MamutController(
        MamutConfig.for_request(request, power_cap_w=args.power_cap, seed=args.seed)
    )
    summary = Orchestrator([TranscodingSession(request, controller)]).run().summary()
    session = summary.sessions["cli"]
    print(
        format_table(
            ["metric", "value"],
            [
                ["frames", session.frames],
                ["mean FPS", session.mean_fps],
                ["QoS violations (%)", session.qos_violation_pct],
                ["mean PSNR (dB)", session.mean_psnr_db],
                ["mean power (W)", summary.mean_power_w],
            ],
            float_format="{:.2f}",
        )
    )


def _cmd_compare(args: argparse.Namespace) -> None:
    specs = scenario_one(args.hr, args.lr, num_frames=args.frames, seed=args.seed)
    runner = ExperimentRunner(power_cap_w=args.power_cap, seed=args.seed)
    results = runner.compare(
        {
            "Heuristic": heuristic_factory(args.power_cap),
            "MonoAgent": monoagent_factory(args.power_cap),
            "MAMUT": mamut_factory(args.power_cap),
        },
        specs,
        repetitions=args.repetitions,
        warmup_videos=args.warmup_videos,
    )
    rows = [
        [label, r.qos_violation_pct, r.mean_power_w, r.mean_fps, r.mean_threads, r.mean_frequency_ghz]
        for label, r in results.items()
    ]
    print(format_table(["controller", "Δ (%)", "Power (W)", "FPS", "Nth", "Freq (GHz)"], rows))


def _cmd_fig2(args: argparse.Namespace) -> None:
    points = fig2_characterization(num_frames=args.frames, seed=args.seed)
    rows = [
        [p.threads, p.qp, p.fps, p.power_w, p.psnr_db, p.bandwidth_mbytes_per_s]
        for p in points
    ]
    print(format_table(["threads", "QP", "FPS", "Power (W)", "PSNR", "BW (MB/s)"], rows, "{:.2f}"))


def _cmd_fig4(args: argparse.Namespace) -> None:
    rows = fig4_scenario_one_sweep(
        num_frames=args.frames,
        warmup_videos=args.warmup_videos,
        power_cap_w=args.power_cap,
        seed=args.seed,
    )
    table = [[r.workload, r.controller, r.qos_violation_pct, r.power_w] for r in rows]
    print(format_table(["workload", "controller", "Δ (%)", "Power (W)"], table))


def _cmd_fig5(args: argparse.Namespace) -> None:
    trace = fig5_trace(
        sequence_name=args.sequence,
        num_frames=args.frames,
        power_cap_w=args.power_cap,
        seed=args.seed,
    )
    rows = [
        [int(frame), fps, qp, threads, freq]
        for frame, fps, qp, threads, freq in zip(
            trace["frame"], trace["fps"], trace["qp"], trace["threads"], trace["frequency_ghz"]
        )
    ][:: max(1, args.frames // 25)]
    print(format_table(["frame", "FPS", "QP", "threads", "freq (GHz)"], rows, "{:.2f}"))


def _cmd_table1(args: argparse.Namespace) -> None:
    rows = table1_threads_frequency(power_cap_w=args.power_cap, seed=args.seed)
    table = [[r.controller, r.resolution_class, r.mean_threads, r.mean_frequency_ghz] for r in rows]
    print(format_table(["controller", "class", "Nth", "Freq (GHz)"], table, "{:.2f}"))


def _cmd_table2(args: argparse.Namespace) -> None:
    rows = table2_scenario_two(
        mixes=_parse_mixes(args.mixes),
        frames_per_video=args.frames_per_video,
        warmup_videos=args.warmup_videos,
        power_cap_w=args.power_cap,
        seed=args.seed,
    )
    table = [
        [r.workload, r.controller, r.power_w, r.mean_threads, r.mean_fps, r.qos_violation_pct]
        for r in rows
    ]
    print(format_table(["mix", "controller", "Watts", "Nth", "FPS", "Δ (%)"], table))


def _cluster_traffic(args: argparse.Namespace):
    if args.traffic == "diurnal":
        return DiurnalTraffic(args.arrival_rate, amplitude=0.6, period=max(2, args.duration // 2))
    if args.traffic == "flash":
        # Baseline traffic with a 4x crowd in the middle fifth of the run
        # (FlashCrowdTraffic already emits the base rate outside the burst).
        return FlashCrowdTraffic(
            args.arrival_rate,
            peak_multiplier=4.0,
            start=2 * args.duration // 5,
            duration=max(1, args.duration // 5),
        )
    return PoissonTraffic(args.arrival_rate)


def _cluster_admission(args: argparse.Namespace):
    def capacity(max_queue: int) -> CapacityThreshold:
        return CapacityThreshold(
            max_sessions_per_server=args.max_sessions_per_server,
            max_queue=max_queue,
            brownout_extra_sessions=(
                args.brownout_extra_sessions if args.brownout else 0
            ),
        )

    queue_bound = args.max_queue
    if args.admission == "always":
        policy = AlwaysAdmit()
    elif args.admission == "power":
        policy = PowerHeadroom(max_queue=args.max_queue)
    elif args.admission == "class-aware":
        hr_queue = args.hr_max_queue if args.hr_max_queue is not None else args.max_queue
        lr_queue = args.lr_max_queue if args.lr_max_queue is not None else args.max_queue
        policy = ClassAwareAdmission(
            {
                ResolutionClass.HR: capacity(hr_queue),
                ResolutionClass.LR: capacity(lr_queue),
            }
        )
        queue_bound = max(hr_queue, lr_queue)
    else:
        policy = capacity(args.max_queue)
    if args.queue_while_warming:
        # The wrapper only matters if it tolerates a deeper backlog than
        # the wrapped policy (which already queues up to its own bound):
        # while servers warm, the queue may grow to twice the normal bound.
        policy = QueueWhileWarming(policy, max_queue=2 * queue_bound)
    return policy


def _cluster_slo(args: argparse.Namespace) -> tuple:
    """SLO objectives from the ``--slo-*`` flags (empty when none given)."""
    objectives = []
    if args.slo_queue_wait_p95 is not None:
        objectives.append(
            QueueWaitObjective(
                name="queue-wait-p95",
                max_steps=args.slo_queue_wait_p95,
                window_steps=args.slo_window,
                error_budget_pct=args.slo_budget,
            )
        )
    if args.slo_shed_rate is not None:
        objectives.append(
            ShedRateObjective(
                name="shed-rate",
                max_pct=args.slo_shed_rate,
                window_steps=args.slo_window,
                error_budget_pct=args.slo_budget,
            )
        )
    if args.slo_violation_rate is not None:
        objectives.append(
            ViolationRateObjective(
                name="qos-violation-rate",
                max_pct=args.slo_violation_rate,
                window_steps=args.slo_window,
                error_budget_pct=args.slo_budget,
            )
        )
    return tuple(objectives)


#: Scenario-shaping cluster flags, i.e. the provenance ``config``
#: fingerprint of a --summary-out artifact.  Deliberately excluded:
#: output paths and verbosity (don't shape results), ``engine`` (the
#: engines are seed-for-seed identical, so cross-engine comparison is a
#: legitimate gate) and the ``--slo-*`` flags (observe-only by contract).
_CLUSTER_CONFIG_KEYS = (
    "servers",
    "arrival_rate",
    "duration",
    "traffic",
    "admission",
    "dispatch",
    "max_sessions_per_server",
    "max_queue",
    "hr_max_queue",
    "lr_max_queue",
    "patience",
    "hr_patience",
    "lr_patience",
    "queue_while_warming",
    "brownout",
    "brownout_fps_relax",
    "brownout_extra_sessions",
    "hr_fraction",
    "frames_per_video",
    "playlist_videos",
    "autoscale",
    "min_servers",
    "max_servers",
    "warmup_steps",
    "no_drain",
    "fault_mtbf",
    "fault_mttr",
    "fault_straggler_mtbf",
    "fault_straggler_duration",
    "fault_warmup_failure",
    "fault_retries",
    "fault_backoff",
    "fault_zones",
    "fault_racks_per_zone",
    "fault_zone_mtbf",
    "fault_zone_mttr",
    "kill_zone",
    "checkpoint_interval",
    "power_cap",
)


def _cmd_cluster(args: argparse.Namespace) -> None:
    admission = _cluster_admission(args)
    dispatcher = {
        "round-robin": RoundRobin,
        "least-loaded": LeastLoaded,
        "power-aware": PowerAware,
        "failure-aware": FailureAware,
    }[args.dispatch]()
    patience_by_class = {}
    if args.hr_patience is not None:
        patience_by_class[ResolutionClass.HR] = args.hr_patience
    if args.lr_patience is not None:
        patience_by_class[ResolutionClass.LR] = args.lr_patience
    workload = WorkloadGenerator(
        _cluster_traffic(args),
        seed=args.seed,
        hr_fraction=args.hr_fraction,
        playlist_videos=args.playlist_videos,
        frames_per_video=args.frames_per_video,
        patience_steps=args.patience,
        patience_by_class=patience_by_class or None,
    )
    brownout = None
    if args.brownout:
        # The relaxed request target flows into the MAMUT config through the
        # normal controller factory, so no separate degraded factory is
        # needed here.
        brownout = BrownoutController(
            sessions_per_server=args.max_sessions_per_server,
            fps_relax=args.brownout_fps_relax,
        )
    autoscaler = None
    if args.autoscale != "none":
        service_steps = args.frames_per_video * args.playlist_videos
        autoscaler = {
            "reactive": lambda: ReactiveThreshold(
                sessions_per_server=args.max_sessions_per_server
            ),
            "target-tracking": lambda: TargetTracking(),
            "predictive": lambda: PredictiveScaling(
                sessions_per_server=args.max_sessions_per_server,
                service_steps=service_steps,
            ),
        }[args.autoscale]()
    faults = None
    if (
        args.fault_mtbf is not None
        or args.fault_straggler_mtbf is not None
        or args.fault_warmup_failure > 0
        or args.fault_zone_mtbf is not None
        or args.kill_zone
        or args.checkpoint_interval is not None
    ):
        faults = FaultConfig(
            crash_mtbf_steps=args.fault_mtbf,
            crash_mttr_steps=args.fault_mttr,
            straggler_mtbf_steps=args.fault_straggler_mtbf,
            straggler_duration_steps=args.fault_straggler_duration,
            warmup_failure_rate=args.fault_warmup_failure,
            max_retries=args.fault_retries,
            retry_backoff_steps=args.fault_backoff,
            seed=args.fault_seed,
            topology=FailureTopology(
                zones=args.fault_zones,
                racks_per_zone=args.fault_racks_per_zone,
                seed=args.fault_seed,
            ),
            zone_mtbf_steps=args.fault_zone_mtbf,
            zone_mttr_steps=args.fault_zone_mttr,
            kill_schedule=KillSchedule.parse(args.kill_zone) if args.kill_zone else None,
            checkpoint_interval_frames=args.checkpoint_interval,
        )
    cluster = ClusterOrchestrator(
        args.servers,
        workload,
        admission=admission,
        dispatcher=dispatcher,
        power_cap_w=args.power_cap,
        seed=args.seed,
        engine=args.engine,
        autoscaler=autoscaler,
        min_servers=args.min_servers,
        max_servers=args.max_servers,
        provision_warmup_steps=args.warmup_steps,
        brownout=brownout,
        faults=faults,
    )
    slo_objectives = _cluster_slo(args)
    telemetry = None
    if args.trace_out or args.metrics_out or args.profile or slo_objectives:
        telemetry = TelemetryConfig(
            trace_path=args.trace_out,
            metrics_path=args.metrics_out,
            profile=args.profile,
            slo=slo_objectives,
        )
    summary = cluster.run(
        args.duration, drain=not args.no_drain, telemetry=telemetry
    ).summary()

    fleet_label = (
        f"{args.servers} servers"
        if autoscaler is None
        else f"{args.servers} servers ({args.autoscale} autoscaling)"
    )
    print(
        f"ClusterSummary: {fleet_label}, {args.traffic} traffic "
        f"@ {args.arrival_rate}/step, {args.admission} admission, "
        f"{args.dispatch} dispatch"
    )
    rows = [
        ["steps (incl. drain)", summary.steps],
        ["arrivals", summary.arrivals],
        ["admitted sessions", summary.admitted],
        ["rejected", summary.rejected],
        ["dropped (patience)", summary.dropped],
        ["abandoned in queue", summary.abandoned],
        ["rejection rate (%)", 100.0 * summary.rejection_rate],
        ["shed rate (%)", 100.0 * summary.shed_rate],
        ["mean queue wait (steps)", summary.mean_queue_wait_steps],
        ["mean active sessions", summary.mean_active_sessions],
        ["fleet power (W)", summary.fleet_mean_power_w],
        ["fleet energy (kJ)", summary.fleet_energy_j / 1000.0],
        ["watts per session", summary.watts_per_session],
        ["mean FPS", summary.mean_fps],
        ["QoS violations (Δ, %)", summary.qos_violation_pct],
    ]
    if brownout is not None:
        rows += [
            ["brownout steps", summary.brownout_steps],
            ["degraded sessions", summary.degraded_sessions],
        ]
    if faults is not None:
        rows += [
            ["server crashes", summary.server_crashes],
            ["stragglers", summary.stragglers],
            ["warm-up failures", summary.warmup_failures],
            ["sessions retried", summary.retried],
            ["requests failed", summary.failed],
            ["mean healthy servers", summary.mean_healthy_servers],
            ["zone outages", summary.failed_domains],
            ["mean available domains", summary.mean_available_domains],
            ["recomputed frames", summary.recomputed_frames],
            ["checkpoint writes", summary.checkpoint_writes],
            ["checkpoint energy (J)", summary.checkpoint_energy_j],
        ]
    if autoscaler is not None:
        rows += [
            ["mean fleet size", summary.mean_fleet_size],
            ["peak fleet size", summary.peak_fleet_size],
            ["scale-up events", summary.scale_up_events],
            ["scale-down events", summary.scale_down_events],
            ["servers added / removed",
             f"{summary.servers_added} / {summary.servers_removed}"],
            ["scaling-transient steps", summary.transient_steps],
            ["transient queue length", summary.transient_mean_queue_length],
            ["transient QoS (Δ, %)", summary.transient_qos_violation_pct],
        ]
    print(format_table(["metric", "value"], rows, float_format="{:.2f}"))
    print()
    print(
        format_table(
            ["server", "sessions", "frames", "util (%)", "power (W)", "Δ (%)"],
            [
                [
                    f"srv-{server.server_index}",
                    server.sessions_served,
                    server.frames,
                    100.0 * server.utilization,
                    server.mean_power_w,
                    server.qos_violation_pct,
                ]
                for server in summary.servers
            ],
            float_format="{:.1f}",
        )
    )
    slo_report = cluster.telemetry.slo.report() if cluster.telemetry.slo else []
    if slo_report:
        print()
        print("SLO report:")
        print(
            format_table(
                ["objective", "target", "breach steps", "budget used (%)",
                 "max burn", "worst", "verdict"],
                [
                    [
                        row["name"],
                        row["objective"],
                        f"{row['breach_steps']}/{row['steps']}",
                        row["budget_consumed_pct"],
                        row["max_burn_rate"],
                        row["worst_value"],
                        "OK" if row["healthy"] else "BREACHED",
                    ]
                    for row in slo_report
                ],
                float_format="{:.2f}",
            )
        )
    if telemetry is not None:
        _print_telemetry(cluster.telemetry)
    if args.summary_out:
        artifact = {"summary": summary.to_dict()}
        if slo_report:
            artifact["slo"] = slo_report
        seeds = {"seed": args.seed}
        if faults is not None:
            seeds["fault_seed"] = args.fault_seed
        stamp_provenance(
            artifact,
            kind="cluster",
            seed=seeds,
            config={key: getattr(args, key) for key in _CLUSTER_CONFIG_KEYS},
        )
        with open(args.summary_out, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nSummary artifact -> {args.summary_out}")


def _print_telemetry(telemetry) -> None:
    """Print the run's telemetry section (trace/metrics paths, profile)."""
    info = telemetry.summary()
    print()
    print("Telemetry:")
    if "trace_events" in info:
        path = f" -> {info['trace_path']}" if "trace_path" in info else ""
        print(f"  trace: {info['trace_events']} spans{path}")
    if "metrics" in info:
        path = f" -> {info['metrics_path']}" if "metrics_path" in info else ""
        print(f"  metrics: {info['metrics']} instruments{path}")
    if "profile" in info:
        profile = info["profile"]
        print(
            f"  profile: {profile['steps']} steps, "
            f"{profile['steps_per_s']:.1f} steps/s over "
            f"{profile['instrumented_s']:.3f}s instrumented"
        )
        print(
            format_table(
                ["phase", "total (s)", "calls", "share (%)"],
                [
                    [
                        row["name"],
                        row["total_s"],
                        row["calls"],
                        100.0 * row["share"],
                    ]
                    for row in profile["phases"]
                ],
                float_format="{:.3f}",
            )
        )


def _stats_row(label: str, stats) -> list:
    return [label, stats.count, stats.mean, stats.p50, stats.p95, stats.p99, stats.max]


def _load_artifact(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _cmd_obs_report(args: argparse.Namespace) -> int:
    analysis = analyze_trace(args.trace)
    print(
        f"Trace report: {args.trace} — {analysis.span_count} spans, "
        f"{analysis.arrivals} requests, {analysis.steps + 1} steps"
    )
    counts = analysis.terminal_counts()
    print()
    print(
        format_table(
            ["outcome", "requests"],
            [[kind, counts[kind]] for kind in
             ("served", "rejected", "dropped", "abandoned", "failed")]
            + [["retried (re-dispatches)", analysis.retried],
               ["interrupted (crashes)", analysis.interrupted]],
        )
    )
    print()
    print("Latency breakdown (steps):")
    print(
        format_table(
            ["population", "n", "mean", "p50", "p95", "p99", "max"],
            [
                _stats_row("queue wait", analysis.wait_stats()),
                _stats_row("service (dispatch->done)", analysis.service_stats()),
                _stats_row("end-to-end (arrival->done)", analysis.end_to_end_stats()),
                _stats_row("retry overhead", analysis.retry_overhead_stats()),
            ],
            float_format="{:.2f}",
        )
    )
    by_class = analysis.wait_stats_by_class()
    if by_class:
        print()
        print("Queue wait by service class:")
        print(
            format_table(
                ["class", "n", "mean", "p50", "p95", "p99", "max"],
                [_stats_row(cls, stats) for cls, stats in by_class.items()],
                float_format="{:.2f}",
            )
        )
    by_server = analysis.wait_stats_by_server()
    if by_server:
        print()
        print("Queue wait by first-dispatch server:")
        print(
            format_table(
                ["server", "n", "mean", "p50", "p95", "p99", "max"],
                [
                    _stats_row(f"srv-{server}", stats)
                    for server, stats in by_server.items()
                ],
                float_format="{:.2f}",
            )
        )
    if analysis.fault_events:
        print()
        print("Fault timeline:")
        print(
            format_table(
                ["step", "server", "fault"],
                [
                    [event.get("step"), event.get("request"), event.get("fault")]
                    for event in analysis.fault_events
                ],
            )
        )
    if analysis.slo_breaches:
        print()
        print("SLO breaches (entries):")
        print(
            format_table(
                ["step", "slo", "value", "threshold", "burn rate"],
                [
                    [
                        span.get("step"),
                        span.get("slo"),
                        span.get("value"),
                        span.get("threshold"),
                        span.get("burn_rate"),
                    ]
                    for span in analysis.slo_breaches
                ],
                float_format="{:.2f}",
            )
        )
    failures = list(analysis.errors)
    if args.summary:
        artifact = _load_artifact(args.summary)
        summary = ClusterSummary.from_dict(artifact.get("summary", artifact))
        mismatches = analysis.reconcile(summary)
        print()
        if mismatches:
            print(f"Reconciliation against {args.summary}: MISMATCH")
            for mismatch in mismatches:
                print(f"  - {mismatch}")
            failures.extend(mismatches)
        else:
            print(f"Reconciliation against {args.summary}: OK")
    elif failures:
        print()
        print("Lifecycle errors:")
        for error in failures:
            print(f"  - {error}")
    return 1 if failures else 0


def _numeric_leaves(node, prefix: str = "") -> dict[str, object]:
    """Flatten nested dicts/lists to dotted-path leaves (skips provenance)."""
    leaves: dict[str, object] = {}
    if isinstance(node, dict):
        for key, value in node.items():
            if prefix == "" and key == "provenance":
                continue
            leaves.update(_numeric_leaves(value, f"{prefix}{key}."))
    elif isinstance(node, list):
        for index, value in enumerate(node):
            leaves.update(_numeric_leaves(value, f"{prefix}{index}."))
    else:
        leaves[prefix[:-1]] = node
    return leaves


def _leaf_regression(base, cand, rel_tol: float, abs_tol: float):
    """None when within tolerance, else a short description of the drift."""
    numeric = lambda v: isinstance(v, (int, float)) and not isinstance(v, bool)
    if numeric(base) and numeric(cand):
        delta = abs(cand - base)
        if delta <= abs_tol or delta <= rel_tol * abs(base):
            return None
        return f"{base!r} -> {cand!r}"
    if base != cand:
        return f"{base!r} -> {cand!r}"
    return None


def _cmd_obs_compare(args: argparse.Namespace) -> int:
    baseline = _load_artifact(args.baseline)
    candidate = _load_artifact(args.candidate)
    refusals, warnings = provenance_mismatches(baseline, candidate)
    for warning in warnings:
        print(f"warning: {warning}")
    if refusals:
        for refusal in refusals:
            print(f"not comparable: {refusal}")
        if not args.force:
            print("refusing to diff (pass --force to compare anyway)")
            return 2
        print("--force: diffing despite provenance mismatch")
    base_leaves = _numeric_leaves(baseline)
    cand_leaves = _numeric_leaves(candidate)
    ignored = lambda path: any(
        fnmatch.fnmatch(path, pattern) for pattern in args.ignore
    )
    regressions = []
    for path in sorted(set(base_leaves) | set(cand_leaves)):
        if ignored(path):
            continue
        if path not in base_leaves:
            regressions.append([path, "only in candidate"])
        elif path not in cand_leaves:
            regressions.append([path, "only in baseline"])
        else:
            drift = _leaf_regression(
                base_leaves[path], cand_leaves[path], args.rel_tol, args.abs_tol
            )
            if drift is not None:
                regressions.append([path, drift])
    compared = sum(1 for path in base_leaves if not ignored(path))
    if regressions:
        print(f"REGRESSION: {len(regressions)} of {compared} metrics drifted "
              f"beyond tolerance (rel {args.rel_tol}, abs {args.abs_tol})")
        print(format_table(["metric", "drift"], regressions))
        return 1
    print(f"OK: {compared} metrics within tolerance "
          f"({args.baseline} vs {args.candidate})")
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    return {"report": _cmd_obs_report, "compare": _cmd_obs_compare}[
        args.obs_command
    ](args)


_COMMANDS = {
    "quickstart": _cmd_quickstart,
    "compare": _cmd_compare,
    "fig2": _cmd_fig2,
    "fig4": _cmd_fig4,
    "fig5": _cmd_fig5,
    "table1": _cmd_table1,
    "table2": _cmd_table2,
    "cluster": _cmd_cluster,
    "obs": _cmd_obs,
    "lint": lint_command,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Command handlers may return an int exit code (the ``obs`` family does:
    1 = regression/reconciliation failure, 2 = artifacts not comparable);
    ``None`` means success.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(args.log_level)
    code = _COMMANDS[args.command](args)
    return int(code) if code else 0


if __name__ == "__main__":
    sys.exit(main())
