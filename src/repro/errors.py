"""Exception hierarchy for the MAMUT reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish configuration problems from runtime problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class VideoError(ReproError):
    """A video sequence or transcoding request is malformed."""


class EncodingError(ReproError):
    """The HEVC encoder simulator was driven with an invalid configuration."""


class PlatformError(ReproError):
    """The platform substrate (CPU, DVFS, power) rejected an operation."""


class DvfsError(PlatformError):
    """A frequency outside the supported range (or on an unknown core) was requested."""


class AllocationError(PlatformError):
    """Thread/core allocation on the server failed."""


class LearningError(ReproError):
    """The reinforcement-learning core was used inconsistently."""


class SchedulingError(ReproError):
    """The agent sequence/schedule was configured inconsistently."""


class ScenarioError(ReproError):
    """A multi-user scenario could not be constructed."""


class ClusterError(ReproError):
    """The cluster layer (workload, admission, dispatch) was misconfigured."""
