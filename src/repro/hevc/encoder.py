"""HEVC encoder simulator.

Combines the rate-distortion, complexity and WPP models into a frame-level
encoder: given a frame, an :class:`~repro.hevc.params.EncoderConfig` and the
platform operating point (frequency and the effective parallelism granted by
the server), it produces an :class:`EncodedFrame` with the outputs the MAMUT
agents observe.
"""

from __future__ import annotations

import dataclasses

from repro.constants import TARGET_FPS
from repro.errors import EncodingError
from repro.hevc.complexity import ComplexityModel
from repro.hevc.params import EncoderConfig
from repro.hevc.rd_model import RateDistortionModel
from repro.hevc.wpp import WppModel
from repro.video.sequence import Frame

__all__ = ["EncodedFrame", "HevcEncoder"]


@dataclasses.dataclass(frozen=True)
class EncodedFrame:
    """Result of encoding a single frame.

    Attributes
    ----------
    frame_index:
        Index of the source frame.
    psnr_db:
        Luma PSNR of the reconstructed frame.
    bits:
        Compressed frame size in bits.
    bitrate_mbps:
        Output bitrate in Mbit/s at the delivery frame rate.
    encode_time_s:
        Wall-clock encoding time in seconds.
    fps:
        Instantaneous throughput (1 / encode time).
    cycles:
        Serial CPU cycles spent encoding the frame.
    threads_used:
        Threads requested by the configuration.
    effective_parallelism:
        Parallel speedup actually achieved (WPP speedup scaled by any
        server-side contention).
    frequency_ghz:
        Core frequency at which the frame was encoded.
    qp:
        Quantization Parameter used.
    """

    frame_index: int
    psnr_db: float
    bits: float
    bitrate_mbps: float
    encode_time_s: float
    fps: float
    cycles: float
    threads_used: int
    effective_parallelism: float
    frequency_ghz: float
    qp: int


class HevcEncoder:
    """Frame-level analytical HEVC encoder.

    Parameters
    ----------
    rd_model:
        Rate-distortion model (PSNR, bits); a default-calibrated model is
        created when omitted.
    complexity_model:
        Encoding cost model.
    wpp_model:
        Wavefront parallel speedup model.
    delivery_fps:
        Frame rate at which the output stream is delivered (bitrate basis).
    """

    def __init__(
        self,
        rd_model: RateDistortionModel | None = None,
        complexity_model: ComplexityModel | None = None,
        wpp_model: WppModel | None = None,
        delivery_fps: float = TARGET_FPS,
    ) -> None:
        if delivery_fps <= 0:
            raise EncodingError(f"delivery_fps must be positive, got {delivery_fps}")
        self.rd_model = rd_model if rd_model is not None else RateDistortionModel()
        self.complexity_model = (
            complexity_model if complexity_model is not None else ComplexityModel()
        )
        self.wpp_model = wpp_model if wpp_model is not None else WppModel()
        self.delivery_fps = float(delivery_fps)

    def encode_frame(
        self,
        frame: Frame,
        config: EncoderConfig,
        frequency_ghz: float,
        contention_scale: float = 1.0,
    ) -> EncodedFrame:
        """Encode one frame and report quality, rate and timing.

        Parameters
        ----------
        frame:
            The source frame.
        config:
            Encoder configuration (QP, threads, preset).
        frequency_ghz:
            Operating frequency of the cores encoding this frame.
        contention_scale:
            Multiplicative penalty in ``(0, 1]`` applied to the parallel
            speedup when the server cannot grant all requested threads
            exclusively (multi-user contention / SMT sharing).
        """
        if frequency_ghz <= 0:
            raise EncodingError(f"frequency_ghz must be positive, got {frequency_ghz}")
        if not 0.0 < contention_scale <= 1.0:
            raise EncodingError(
                f"contention_scale must be in (0, 1], got {contention_scale}"
            )

        speedup = self.wpp_model.speedup(
            config.threads, frame.width, frame.height, wpp=config.wpp
        )
        effective = max(1.0, speedup * contention_scale)

        cycles = self.complexity_model.encode_cycles(frame, config)
        encode_time = cycles / (frequency_ghz * 1e9 * effective)

        psnr = self.rd_model.psnr_db(frame, config)
        bits = self.rd_model.frame_bits(frame, config)
        bitrate = self.rd_model.bitrate_mbps(frame, config, self.delivery_fps)

        return EncodedFrame(
            frame_index=frame.index,
            psnr_db=psnr,
            bits=bits,
            bitrate_mbps=bitrate,
            encode_time_s=encode_time,
            fps=1.0 / encode_time,
            cycles=cycles,
            threads_used=config.threads,
            effective_parallelism=effective,
            frequency_ghz=frequency_ghz,
            qp=config.qp,
        )

    def activity_factor(self, frame: Frame, config: EncoderConfig) -> float:
        """Average busy fraction of each allocated thread while encoding.

        Used by the power model: threads stalled on the WPP wavefront ramp
        consume less dynamic power than fully busy ones.
        """
        return self.wpp_model.efficiency(
            config.threads, frame.width, frame.height, wpp=config.wpp
        )
