"""Encoder parameters: presets, QP, threads.

Mirrors the knobs exposed by Kvazaar that the paper uses: the *preset*
(ultrafast for HR videos, slow for LR videos in Sec. V-A), the Quantization
Parameter, and the number of WPP threads.
"""

from __future__ import annotations

import dataclasses
import enum

from repro.constants import QP_VALUES
from repro.errors import EncodingError

__all__ = ["Preset", "EncoderConfig", "QP_MIN", "QP_MAX"]

#: Valid HEVC QP range (the agents only use the subset in ``QP_VALUES``).
QP_MIN: int = 0
QP_MAX: int = 51


class Preset(enum.Enum):
    """Kvazaar-style speed/efficiency presets.

    Each preset trades encoding effort (cycles per pixel) for compression
    efficiency and quality.  The paper uses ``ULTRAFAST`` for HR videos and
    ``SLOW`` for LR videos.
    """

    ULTRAFAST = "ultrafast"
    SUPERFAST = "superfast"
    VERYFAST = "veryfast"
    FASTER = "faster"
    FAST = "fast"
    MEDIUM = "medium"
    SLOW = "slow"

    @property
    def effort_factor(self) -> float:
        """Relative encoding effort (cycles) compared to ``ULTRAFAST``."""
        return _EFFORT_FACTORS[self]

    @property
    def quality_gain_db(self) -> float:
        """PSNR gain (dB) over ``ULTRAFAST`` at equal QP."""
        return _QUALITY_GAIN_DB[self]

    @property
    def compression_gain(self) -> float:
        """Multiplicative bitrate reduction versus ``ULTRAFAST`` at equal QP."""
        return _COMPRESSION_GAIN[self]


_EFFORT_FACTORS: dict[Preset, float] = {
    Preset.ULTRAFAST: 1.0,
    Preset.SUPERFAST: 1.15,
    Preset.VERYFAST: 1.35,
    Preset.FASTER: 1.55,
    Preset.FAST: 1.8,
    Preset.MEDIUM: 2.1,
    Preset.SLOW: 2.4,
}

_QUALITY_GAIN_DB: dict[Preset, float] = {
    Preset.ULTRAFAST: 0.0,
    Preset.SUPERFAST: 0.3,
    Preset.VERYFAST: 0.6,
    Preset.FASTER: 0.9,
    Preset.FAST: 1.1,
    Preset.MEDIUM: 1.4,
    Preset.SLOW: 1.8,
}

_COMPRESSION_GAIN: dict[Preset, float] = {
    Preset.ULTRAFAST: 1.00,
    Preset.SUPERFAST: 0.96,
    Preset.VERYFAST: 0.92,
    Preset.FASTER: 0.89,
    Preset.FAST: 0.86,
    Preset.MEDIUM: 0.82,
    Preset.SLOW: 0.78,
}


@dataclasses.dataclass(frozen=True)
class EncoderConfig:
    """A complete encoder configuration for one frame.

    Attributes
    ----------
    qp:
        Quantization Parameter (0..51); the agents restrict themselves to
        :data:`repro.constants.QP_VALUES`.
    threads:
        Number of WPP encoding threads requested for the frame.
    preset:
        Kvazaar preset controlling the effort/efficiency trade-off.
    wpp:
        Whether Wavefront Parallel Processing is enabled; disabling it forces
        single-threaded row processing regardless of ``threads``.
    """

    qp: int
    threads: int
    preset: Preset = Preset.ULTRAFAST
    wpp: bool = True

    def __post_init__(self) -> None:
        if not QP_MIN <= self.qp <= QP_MAX:
            raise EncodingError(f"QP must be in [{QP_MIN}, {QP_MAX}], got {self.qp}")
        if self.threads < 1:
            raise EncodingError(f"threads must be >= 1, got {self.threads}")

    def replace(self, **changes: object) -> "EncoderConfig":
        """Return a copy of this configuration with ``changes`` applied."""
        return dataclasses.replace(self, **changes)

    @property
    def is_agent_qp(self) -> bool:
        """Whether the QP is one of the values the MAMUT QP agent explores."""
        return self.qp in QP_VALUES
