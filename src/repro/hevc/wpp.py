"""Wavefront Parallel Processing (WPP) speedup model.

HEVC's WPP tool lets one thread process each CTU row, with a two-CTU lag
between consecutive rows.  The achievable speedup is therefore bounded by the
number of CTU rows and by the wavefront ramp-up/ramp-down, which is why the
paper observes thread-count saturation at ~12 threads for 1080p and ~5
threads for 832x480 (Sec. V-A, Fig. 2).

The model uses the classic critical-path approximation: with ``R`` CTU rows of
``W`` CTUs each and ``n`` worker threads, the per-frame processing time in CTU
units is approximately::

    T(n) = (R / n) * W + 2 * (min(n, R) - 1)

(the first term is the work per thread, the second the wavefront lag), giving
``speedup(n) = (R * W) / T(n)``.  A small per-thread synchronisation overhead
is added on top.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.constants import CTU_SIZE
from repro.errors import EncodingError

__all__ = ["WppModelParameters", "WppModel"]


@dataclasses.dataclass(frozen=True)
class WppModelParameters:
    """Calibration constants of the WPP speedup model.

    Attributes
    ----------
    ctu_size:
        Coding Tree Unit size in pixels (64 for HEVC main profile).
    sync_overhead_per_thread:
        Relative time overhead added per extra thread (thread wake-up,
        entropy-state propagation, cache contention).
    """

    ctu_size: int = CTU_SIZE
    sync_overhead_per_thread: float = 0.005


class WppModel:
    """Parallel speedup of WPP encoding as a function of thread count."""

    def __init__(self, params: WppModelParameters | None = None) -> None:
        self.params = params if params is not None else WppModelParameters()

    def ctu_rows(self, height: int) -> int:
        """Number of CTU rows for a frame of the given height."""
        if height <= 0:
            raise EncodingError(f"height must be positive, got {height}")
        return math.ceil(height / self.params.ctu_size)

    def ctu_cols(self, width: int) -> int:
        """Number of CTU columns for a frame of the given width."""
        if width <= 0:
            raise EncodingError(f"width must be positive, got {width}")
        return math.ceil(width / self.params.ctu_size)

    def max_useful_threads(self, height: int) -> int:
        """Threads beyond which no additional speedup is possible (= CTU rows)."""
        return self.ctu_rows(height)

    def speedup(self, threads: int, width: int, height: int, wpp: bool = True) -> float:
        """Parallel speedup obtained with ``threads`` WPP threads.

        Returns 1.0 when WPP is disabled or a single thread is used.  The
        result is monotonically non-decreasing in ``threads`` up to the CTU
        row count, then flat (minus the per-thread overhead).
        """
        if threads < 1:
            raise EncodingError(f"threads must be >= 1, got {threads}")
        if not wpp or threads == 1:
            return 1.0

        rows = self.ctu_rows(height)
        cols = self.ctu_cols(width)
        usable = min(threads, rows)

        serial_units = rows * cols
        # Work per thread (rows are interleaved across threads, so the
        # per-thread share is fractional) plus the wavefront ramp lag.
        parallel_units = (rows / usable) * cols + 2 * (usable - 1)
        raw_speedup = serial_units / parallel_units

        overhead = 1.0 + self.params.sync_overhead_per_thread * (threads - 1)
        return float(max(1.0, raw_speedup / overhead))

    def efficiency(self, threads: int, width: int, height: int, wpp: bool = True) -> float:
        """Fraction of the allocated threads that does useful work on average.

        This feeds the power model: threads idling on the wavefront ramp do
        not consume full dynamic power.
        """
        return self.speedup(threads, width, height, wpp) / threads

    # -- batch entry points -----------------------------------------------------

    def speedup_batch(
        self,
        threads: np.ndarray,
        width: np.ndarray,
        height: np.ndarray,
        wpp: np.ndarray | bool = True,
    ) -> np.ndarray:
        """Vectorized :meth:`speedup` over parallel arrays.

        Elementwise bitwise-identical to the scalar method (the formula is
        pure IEEE arithmetic, applied in the same order).
        """
        threads = np.asarray(threads, dtype=np.int64)
        width = np.asarray(width)
        height = np.asarray(height)
        if threads.size and threads.min() < 1:
            raise EncodingError("threads values must be >= 1")
        if np.any(width <= 0) or np.any(height <= 0):
            raise EncodingError("width and height values must be positive")

        ctu = self.params.ctu_size
        rows = np.ceil(height / ctu)
        cols = np.ceil(width / ctu)
        usable = np.minimum(threads, rows)

        serial_units = rows * cols
        parallel_units = (rows / usable) * cols + 2 * (usable - 1)
        raw_speedup = serial_units / parallel_units

        overhead = 1.0 + self.params.sync_overhead_per_thread * (threads - 1)
        result = np.maximum(1.0, raw_speedup / overhead)
        return np.where(np.logical_and(wpp, threads > 1), result, 1.0)

    def efficiency_batch(
        self,
        threads: np.ndarray,
        width: np.ndarray,
        height: np.ndarray,
        wpp: np.ndarray | bool = True,
    ) -> np.ndarray:
        """Vectorized :meth:`efficiency` over parallel arrays."""
        return self.speedup_batch(threads, width, height, wpp) / np.asarray(
            threads, dtype=np.int64
        )

    def saturation_threads(
        self, width: int, height: int, gain_threshold: float = 0.03
    ) -> int:
        """Smallest thread count beyond which the marginal gain is negligible.

        The marginal gain is the relative speedup increase from adding one
        more thread; saturation is declared when it drops below
        ``gain_threshold``.  For 1920x1080 this lands near the paper's 12
        threads, and for 832x480 near 5 threads.
        """
        previous = self.speedup(1, width, height)
        for n in range(2, self.ctu_rows(height) + 1):
            current = self.speedup(n, width, height)
            if (current - previous) / previous < gain_threshold:
                return n - 1
            previous = current
        return self.ctu_rows(height)
