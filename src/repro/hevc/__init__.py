"""HEVC transcoder simulator.

The paper's environment is the Kvazaar HEVC encoder (preceded by a decoder)
running on a multicore server.  This package provides an analytical simulator
of that transcoder: given an encoder configuration (preset, QP, threads) and
the platform operating point (frequency, effective parallelism), it produces
the per-frame outputs the MAMUT agents observe — encode time (hence FPS),
PSNR, and bitrate — using rate-distortion, complexity, and Wavefront Parallel
Processing (WPP) models calibrated to reproduce the paper's Fig. 2 shapes.
"""

from repro.hevc.params import Preset, EncoderConfig
from repro.hevc.rd_model import RateDistortionModel
from repro.hevc.complexity import ComplexityModel
from repro.hevc.wpp import WppModel
from repro.hevc.encoder import EncodedFrame, HevcEncoder
from repro.hevc.decoder import DecodedFrame, HevcDecoder
from repro.hevc.transcoder import TranscodeResult, Transcoder

__all__ = [
    "Preset",
    "EncoderConfig",
    "RateDistortionModel",
    "ComplexityModel",
    "WppModel",
    "EncodedFrame",
    "HevcEncoder",
    "DecodedFrame",
    "HevcDecoder",
    "TranscodeResult",
    "Transcoder",
]
