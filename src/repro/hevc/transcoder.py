"""Transcoder pipeline: decoder followed by encoder.

The :class:`Transcoder` is the application half of the MAMUT environment
(Fig. 1): per frame, it decodes the source and re-encodes it with the
configuration chosen by the controller, reporting the observables (FPS, PSNR,
bitrate) plus timing and cost breakdowns.
"""

from __future__ import annotations

import dataclasses

from repro.hevc.decoder import DecodedFrame, HevcDecoder
from repro.hevc.encoder import EncodedFrame, HevcEncoder
from repro.hevc.params import EncoderConfig
from repro.video.sequence import Frame

__all__ = ["TranscodeResult", "Transcoder"]


@dataclasses.dataclass(frozen=True)
class TranscodeResult:
    """Per-frame output of the transcoding pipeline.

    Attributes
    ----------
    frame_index:
        Index of the transcoded frame.
    decoded:
        Decoder stage result.
    encoded:
        Encoder stage result.
    total_time_s:
        End-to-end processing time of the frame (decode + encode).
    fps:
        Instantaneous pipeline throughput (1 / total time).
    """

    frame_index: int
    decoded: DecodedFrame
    encoded: EncodedFrame
    total_time_s: float
    fps: float

    @property
    def psnr_db(self) -> float:
        """PSNR of the re-encoded frame."""
        return self.encoded.psnr_db

    @property
    def bitrate_mbps(self) -> float:
        """Output bitrate of the re-encoded frame in Mbit/s."""
        return self.encoded.bitrate_mbps

    @property
    def cycles(self) -> float:
        """Total CPU cycles spent on the frame (decode + encode)."""
        return self.decoded.cycles + self.encoded.cycles


class Transcoder:
    """Decoder + encoder pipeline for one video stream.

    Parameters
    ----------
    encoder:
        The encoder simulator (owns the RD / complexity / WPP models).
    decoder:
        The decoder simulator; a default one sharing the encoder's complexity
        model is created when omitted.
    """

    def __init__(
        self, encoder: HevcEncoder | None = None, decoder: HevcDecoder | None = None
    ) -> None:
        self.encoder = encoder if encoder is not None else HevcEncoder()
        self.decoder = (
            decoder
            if decoder is not None
            else HevcDecoder(complexity_model=self.encoder.complexity_model)
        )

    def transcode_frame(
        self,
        frame: Frame,
        config: EncoderConfig,
        frequency_ghz: float,
        contention_scale: float = 1.0,
    ) -> TranscodeResult:
        """Decode then re-encode one frame under the given operating point."""
        decoded = self.decoder.decode_frame(frame, frequency_ghz)
        encoded = self.encoder.encode_frame(
            decoded.frame, config, frequency_ghz, contention_scale=contention_scale
        )
        total_time = decoded.decode_time_s + encoded.encode_time_s
        return TranscodeResult(
            frame_index=frame.index,
            decoded=decoded,
            encoded=encoded,
            total_time_s=total_time,
            fps=1.0 / total_time,
        )

    def activity_factor(self, frame: Frame, config: EncoderConfig) -> float:
        """Busy fraction of allocated threads while processing ``frame``."""
        return self.encoder.activity_factor(frame, config)
