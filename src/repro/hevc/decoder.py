"""HEVC decoder simulator.

A transcoder is a decoder followed by an encoder (paper Sec. I).  Decoding is
roughly two orders of magnitude cheaper than encoding, so it barely affects
the control problem, but it is modelled explicitly so the transcoder pipeline
and its timing are complete.
"""

from __future__ import annotations

import dataclasses

from repro.errors import EncodingError
from repro.hevc.complexity import ComplexityModel
from repro.video.sequence import Frame

__all__ = ["DecodedFrame", "HevcDecoder"]


@dataclasses.dataclass(frozen=True)
class DecodedFrame:
    """Result of decoding a single source frame.

    Attributes
    ----------
    frame_index:
        Index of the frame within its sequence.
    decode_time_s:
        Wall-clock decoding time in seconds.
    cycles:
        CPU cycles spent decoding.
    frame:
        The decoded frame, passed on to the encoder unchanged (the simulator
        carries content descriptors, not pixels).
    """

    frame_index: int
    decode_time_s: float
    cycles: float
    frame: Frame


class HevcDecoder:
    """Frame-level analytical HEVC decoder."""

    def __init__(self, complexity_model: ComplexityModel | None = None) -> None:
        self.complexity_model = (
            complexity_model if complexity_model is not None else ComplexityModel()
        )

    def decode_frame(self, frame: Frame, frequency_ghz: float) -> DecodedFrame:
        """Decode one source frame at the given core frequency."""
        if frequency_ghz <= 0:
            raise EncodingError(f"frequency_ghz must be positive, got {frequency_ghz}")
        cycles = self.complexity_model.decode_cycles(frame)
        decode_time = cycles / (frequency_ghz * 1e9)
        return DecodedFrame(
            frame_index=frame.index,
            decode_time_s=decode_time,
            cycles=cycles,
            frame=frame,
        )
