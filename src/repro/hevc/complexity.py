"""Encoding complexity model: CPU cycles needed to encode a frame.

HEVC encoding cost grows with resolution, decreases as QP grows (larger QP
means coarser quantisation, fewer non-zero coefficients, cheaper RDO), and
grows with content complexity and motion.  Scene-change (intra) frames are
more expensive.  The model expresses cost in *cycles per frame*, so that
dividing by the operating frequency and the parallel speedup gives the frame
encode time used for FPS accounting.

Calibration anchor: a 1080p frame of average complexity at QP 27 with the
ultrafast preset costs ~6e8 cycles, i.e. ~5 FPS single-threaded at 3.2 GHz,
consistent with the single-thread points of the paper's Fig. 2.

Every cost also has a *batch* entry point (``encode_cycles_batch``, ...)
evaluating whole NumPy arrays at once.  The scalar and batch paths share the
same per-QP lookup table for the exponential QP factor and apply the rest of
the arithmetic in the same order, so their outputs are bitwise identical
elementwise (the vectorized stepping engine's equivalence guarantee).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from repro.hevc.params import EncoderConfig, QP_MAX, QP_MIN
from repro.video.sequence import Frame

__all__ = ["ComplexityModelParameters", "ComplexityModel"]


@dataclasses.dataclass(frozen=True)
class ComplexityModelParameters:
    """Calibration constants of the encoding-complexity model.

    Attributes
    ----------
    base_cycles_per_pixel:
        Cycles per luma pixel at the reference QP for the ultrafast preset
        and content of complexity 1.0.
    qp_sensitivity:
        Exponential sensitivity of cost to QP: cost scales with
        ``exp(qp_sensitivity * (ref_qp - qp))``.
    ref_qp:
        Anchor QP of the model.
    complexity_weight:
        Fraction of the cost that scales with spatial complexity.
    motion_weight:
        Additional relative cost at maximum motion (motion estimation work).
    intra_cost_factor:
        Multiplier for scene-change (intra) frames.
    decode_fraction:
        Decoder cost as a fraction of encoder cost at the same resolution
        (the paper cites ~1/100 in Sec. I).
    """

    base_cycles_per_pixel: float = 230.0
    qp_sensitivity: float = 0.030
    ref_qp: int = 32
    complexity_weight: float = 0.6
    motion_weight: float = 0.35
    intra_cost_factor: float = 1.25
    decode_fraction: float = 0.01


class ComplexityModel:
    """Computes the encode (and decode) cost of a frame in CPU cycles."""

    def __init__(self, params: ComplexityModelParameters | None = None) -> None:
        self.params = params if params is not None else ComplexityModelParameters()
        # Per-QP table of exp(sensitivity * (ref - qp)), shared by the scalar
        # and batch paths so both see the very same doubles.
        self._qp_factor_list: Optional[list[float]] = None
        self._qp_factor_array: Optional[np.ndarray] = None

    # -- shared QP table -------------------------------------------------------

    def _qp_factor_table(self) -> list[float]:
        """Cost factor ``exp(qp_sensitivity * (ref_qp - qp))`` per legal QP."""
        if self._qp_factor_list is None:
            p = self.params
            self._qp_factor_list = [
                math.exp(p.qp_sensitivity * (p.ref_qp - qp))
                for qp in range(QP_MIN, QP_MAX + 1)
            ]
            self._qp_factor_array = np.array(self._qp_factor_list)
        return self._qp_factor_list

    def _qp_factor_batch(self, qp: np.ndarray) -> np.ndarray:
        self._qp_factor_table()
        assert self._qp_factor_array is not None
        return self._qp_factor_array[qp]

    @staticmethod
    def _validate_qp_array(qp: np.ndarray) -> np.ndarray:
        qp = np.asarray(qp, dtype=np.int64)
        if qp.size and (qp.min() < QP_MIN or qp.max() > QP_MAX):
            raise ValueError(f"QP values must be in [{QP_MIN}, {QP_MAX}]")
        return qp

    def encode_cycles(self, frame: Frame, config: EncoderConfig) -> float:
        """Serial (single-thread) cycles required to encode ``frame``."""
        p = self.params
        qp_factor = self._qp_factor_table()[config.qp - QP_MIN]
        content_factor = (1.0 - p.complexity_weight) + p.complexity_weight * frame.complexity
        motion_factor = 1.0 + p.motion_weight * frame.motion
        intra_factor = p.intra_cost_factor if frame.is_scene_change else 1.0
        cycles = (
            p.base_cycles_per_pixel
            * frame.pixels
            * config.preset.effort_factor
            * qp_factor
            * content_factor
            * motion_factor
            * intra_factor
        )
        return float(cycles)

    def decode_cycles(self, frame: Frame) -> float:
        """Cycles required to decode the source frame before re-encoding.

        Decoding cost is roughly independent of the *output* configuration;
        it scales with resolution and (mildly) with content complexity.
        """
        p = self.params
        content_factor = 0.7 + 0.3 * frame.complexity
        return float(
            p.decode_fraction * p.base_cycles_per_pixel * frame.pixels * content_factor
        )

    def encode_time_seconds(
        self, frame: Frame, config: EncoderConfig, frequency_ghz: float, speedup: float
    ) -> float:
        """Wall-clock encode time given frequency (GHz) and parallel speedup."""
        if frequency_ghz <= 0:
            raise ValueError(f"frequency_ghz must be positive, got {frequency_ghz}")
        if speedup <= 0:
            raise ValueError(f"speedup must be positive, got {speedup}")
        cycles = self.encode_cycles(frame, config)
        return cycles / (frequency_ghz * 1e9 * speedup)

    # -- batch entry points -----------------------------------------------------

    def encode_cycles_batch(
        self,
        qp: np.ndarray,
        pixels: np.ndarray,
        complexity: np.ndarray,
        motion: np.ndarray,
        scene_change: np.ndarray,
        effort_factor: np.ndarray | float = 1.0,
    ) -> np.ndarray:
        """Vectorized :meth:`encode_cycles` over parallel arrays.

        ``effort_factor`` is the preset's relative effort (1.0 for ultrafast).
        Elementwise bitwise-identical to the scalar method.
        """
        p = self.params
        qp = self._validate_qp_array(qp)
        qp_factor = self._qp_factor_batch(qp - QP_MIN)
        content_factor = (
            (1.0 - p.complexity_weight)
            + p.complexity_weight * np.asarray(complexity)
        )
        motion_factor = 1.0 + p.motion_weight * np.asarray(motion)
        intra_factor = np.where(scene_change, p.intra_cost_factor, 1.0)
        return (
            p.base_cycles_per_pixel
            * np.asarray(pixels)
            * effort_factor
            * qp_factor
            * content_factor
            * motion_factor
            * intra_factor
        )

    def decode_cycles_batch(
        self, pixels: np.ndarray, complexity: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`decode_cycles` over parallel arrays."""
        p = self.params
        content_factor = 0.7 + 0.3 * np.asarray(complexity)
        return (
            p.decode_fraction
            * p.base_cycles_per_pixel
            * np.asarray(pixels)
            * content_factor
        )

    def encode_time_seconds_batch(
        self,
        qp: np.ndarray,
        pixels: np.ndarray,
        complexity: np.ndarray,
        motion: np.ndarray,
        scene_change: np.ndarray,
        frequency_ghz: np.ndarray,
        speedup: np.ndarray,
        effort_factor: np.ndarray | float = 1.0,
    ) -> np.ndarray:
        """Vectorized :meth:`encode_time_seconds` over parallel arrays."""
        frequency_ghz = np.asarray(frequency_ghz)
        speedup = np.asarray(speedup)
        if np.any(frequency_ghz <= 0):
            raise ValueError("frequency_ghz values must be positive")
        if np.any(speedup <= 0):
            raise ValueError("speedup values must be positive")
        cycles = self.encode_cycles_batch(
            qp, pixels, complexity, motion, scene_change, effort_factor
        )
        return cycles / (frequency_ghz * 1e9 * speedup)
