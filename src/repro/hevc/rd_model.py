"""Rate-distortion model: PSNR and bitrate as a function of QP and content.

The model reproduces the qualitative relationships HEVC encoders exhibit and
that the paper's Fig. 2 RD-curves show:

* PSNR decreases roughly linearly with QP (~0.45 dB per QP step) and is lower
  for complex/high-motion content;
* bits per pixel roughly halve for every +6 QP (the standard "QP + 6 ⇒ half
  the rate" rule of thumb), and grow with content complexity and motion;
* slower presets gain some quality and compression at equal QP.

Absolute values are calibrated so that a 1080p sequence of average complexity
spans roughly 32-40 dB and 1-10 Mbit/s over QP 22..37 with the ultrafast
preset, matching the ranges of Fig. 2.

Every quantity also has a *batch* entry point (``psnr_db_batch``,
``bits_per_pixel_batch``, ...) that evaluates whole NumPy arrays at once.
The batch and scalar paths share the same per-QP lookup table for the one
transcendental factor (the ``2^((ref-qp)/6)`` rate scale) and apply the
remaining arithmetic in the same order, so their outputs are *bitwise
identical* elementwise — the property the vectorized cluster stepping engine
relies on for seed-for-seed equivalence with the scalar engine.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional

import numpy as np

from repro.errors import EncodingError
from repro.hevc.params import EncoderConfig, QP_MAX, QP_MIN
from repro.video.sequence import Frame

__all__ = ["RdModelParameters", "RateDistortionModel"]


@dataclasses.dataclass(frozen=True)
class RdModelParameters:
    """Calibration constants of the rate-distortion model.

    Attributes
    ----------
    psnr_at_ref_qp:
        PSNR (dB) produced at ``ref_qp`` for content of complexity 1.0 with
        the ultrafast preset.
    psnr_slope_db_per_qp:
        PSNR decrease per unit of QP increase.
    psnr_complexity_penalty_db:
        PSNR penalty per unit of complexity above 1.0.
    psnr_motion_penalty_db:
        PSNR penalty at maximum motion (1.0).
    ref_qp:
        Anchor QP for both PSNR and bitrate.
    bpp_at_ref_qp:
        Bits per pixel produced at ``ref_qp`` for complexity 1.0.
    qp_per_rate_halving:
        QP increase that halves the bitrate (≈6 for HEVC).
    intra_rate_factor:
        Bitrate multiplier applied to scene-change (intra) frames.
    """

    psnr_at_ref_qp: float = 36.0
    psnr_slope_db_per_qp: float = 0.45
    psnr_complexity_penalty_db: float = 3.0
    psnr_motion_penalty_db: float = 1.0
    ref_qp: int = 32
    bpp_at_ref_qp: float = 0.050
    qp_per_rate_halving: float = 6.0
    intra_rate_factor: float = 1.8

    #: Hard clipping bounds for the produced PSNR.
    psnr_floor_db: float = 25.0
    psnr_ceiling_db: float = 55.0


class RateDistortionModel:
    """Computes PSNR and bits for an encoded frame.

    Parameters
    ----------
    params:
        Calibration constants; the defaults reproduce the paper's ranges.
    """

    def __init__(self, params: RdModelParameters | None = None) -> None:
        self.params = params if params is not None else RdModelParameters()
        # Per-QP table of 2^((ref-qp)/halving), shared by the scalar and
        # batch paths so both see the very same doubles.
        self._qp_rate_list: Optional[list[float]] = None
        self._qp_rate_array: Optional[np.ndarray] = None

    # -- shared QP table -------------------------------------------------------

    def _qp_rate_table(self) -> list[float]:
        """Rate scale ``2^((ref_qp - qp) / halving)`` for every legal QP."""
        if self._qp_rate_list is None:
            p = self.params
            self._qp_rate_list = [
                2.0 ** ((p.ref_qp - qp) / p.qp_per_rate_halving)
                for qp in range(QP_MIN, QP_MAX + 1)
            ]
            self._qp_rate_array = np.array(self._qp_rate_list)
        return self._qp_rate_list

    def _qp_rate_batch(self, qp: np.ndarray) -> np.ndarray:
        self._qp_rate_table()
        assert self._qp_rate_array is not None
        return self._qp_rate_array[qp]

    @staticmethod
    def _validate_qp_array(qp: np.ndarray) -> np.ndarray:
        qp = np.asarray(qp, dtype=np.int64)
        if qp.size and (qp.min() < QP_MIN or qp.max() > QP_MAX):
            raise EncodingError(f"QP values must be in [{QP_MIN}, {QP_MAX}]")
        return qp

    # -- quality --------------------------------------------------------------

    def psnr_db(self, frame: Frame, config: EncoderConfig) -> float:
        """PSNR (dB) of ``frame`` encoded with ``config``."""
        p = self.params
        psnr = (
            p.psnr_at_ref_qp
            - p.psnr_slope_db_per_qp * (config.qp - p.ref_qp)
            - p.psnr_complexity_penalty_db * (frame.complexity - 1.0)
            - p.psnr_motion_penalty_db * frame.motion
            + config.preset.quality_gain_db
        )
        return float(min(max(psnr, p.psnr_floor_db), p.psnr_ceiling_db))

    def psnr_db_batch(
        self,
        qp: np.ndarray,
        complexity: np.ndarray,
        motion: np.ndarray,
        quality_gain_db: np.ndarray | float = 0.0,
    ) -> np.ndarray:
        """Vectorized :meth:`psnr_db` over parallel arrays.

        ``quality_gain_db`` is the preset's quality gain (0 for ultrafast).
        Elementwise bitwise-identical to the scalar method.
        """
        p = self.params
        qp = self._validate_qp_array(qp)
        psnr = (
            p.psnr_at_ref_qp
            - p.psnr_slope_db_per_qp * (qp - p.ref_qp)
            - p.psnr_complexity_penalty_db * (np.asarray(complexity) - 1.0)
            - p.psnr_motion_penalty_db * np.asarray(motion)
            + quality_gain_db
        )
        return np.minimum(np.maximum(psnr, p.psnr_floor_db), p.psnr_ceiling_db)

    # -- rate ------------------------------------------------------------------

    def bits_per_pixel(self, frame: Frame, config: EncoderConfig) -> float:
        """Compressed bits per luma pixel for ``frame`` under ``config``."""
        p = self.params
        qp_scale = self._qp_rate_table()[config.qp - QP_MIN]
        content_scale = frame.complexity * (0.8 + 0.4 * frame.motion)
        intra_scale = p.intra_rate_factor if frame.is_scene_change else 1.0
        bpp = (
            p.bpp_at_ref_qp
            * qp_scale
            * content_scale
            * intra_scale
            * config.preset.compression_gain
        )
        return float(bpp)

    def bits_per_pixel_batch(
        self,
        qp: np.ndarray,
        complexity: np.ndarray,
        motion: np.ndarray,
        scene_change: np.ndarray,
        compression_gain: np.ndarray | float = 1.0,
    ) -> np.ndarray:
        """Vectorized :meth:`bits_per_pixel` over parallel arrays."""
        p = self.params
        qp = self._validate_qp_array(qp)
        qp_scale = self._qp_rate_batch(qp - QP_MIN)
        content_scale = np.asarray(complexity) * (0.8 + 0.4 * np.asarray(motion))
        intra_scale = np.where(scene_change, p.intra_rate_factor, 1.0)
        return (
            p.bpp_at_ref_qp
            * qp_scale
            * content_scale
            * intra_scale
            * compression_gain
        )

    def frame_bits_batch(
        self,
        qp: np.ndarray,
        complexity: np.ndarray,
        motion: np.ndarray,
        scene_change: np.ndarray,
        pixels: np.ndarray,
        compression_gain: np.ndarray | float = 1.0,
    ) -> np.ndarray:
        """Vectorized :meth:`frame_bits` over parallel arrays."""
        return (
            self.bits_per_pixel_batch(
                qp, complexity, motion, scene_change, compression_gain
            )
            * np.asarray(pixels)
        )

    def bitrate_mbps_batch(
        self,
        qp: np.ndarray,
        complexity: np.ndarray,
        motion: np.ndarray,
        scene_change: np.ndarray,
        pixels: np.ndarray,
        delivery_fps: np.ndarray | float,
        compression_gain: np.ndarray | float = 1.0,
    ) -> np.ndarray:
        """Vectorized :meth:`bitrate_mbps` over parallel arrays."""
        if np.any(np.asarray(delivery_fps) <= 0):
            raise EncodingError("delivery_fps must be positive")
        bits = self.frame_bits_batch(
            qp, complexity, motion, scene_change, pixels, compression_gain
        )
        return bits * delivery_fps / 1e6

    def frame_bits(self, frame: Frame, config: EncoderConfig) -> float:
        """Total compressed size of ``frame`` in bits."""
        return self.bits_per_pixel(frame, config) * frame.pixels

    def bitrate_mbps(
        self, frame: Frame, config: EncoderConfig, delivery_fps: float
    ) -> float:
        """Instantaneous output bitrate in Mbit/s at the delivery frame rate.

        Parameters
        ----------
        frame:
            The frame being encoded.
        config:
            Encoder configuration.
        delivery_fps:
            Frame rate at which the output stream is delivered to the user
            (the real-time target, 24 FPS in the paper).
        """
        if delivery_fps <= 0:
            raise EncodingError(f"delivery_fps must be positive, got {delivery_fps}")
        return self.frame_bits(frame, config) * delivery_fps / 1e6

    # -- convenience -----------------------------------------------------------

    def bandwidth_mbytes_per_s(
        self, frame: Frame, config: EncoderConfig, delivery_fps: float
    ) -> float:
        """Output bandwidth in MBytes/s (the unit used on Fig. 2's x-axis)."""
        return self.bitrate_mbps(frame, config, delivery_fps) / 8.0

    def expected_psnr_range(self, config_low_qp: int, config_high_qp: int) -> tuple[float, float]:
        """PSNR bounds (dB) spanned by a QP interval for average content.

        Useful for sanity checks and for sizing the state space: returns the
        PSNR at the *high* QP (low quality) and at the *low* QP (high
        quality) for a frame of complexity 1.0 and motion 0.4.
        """
        p = self.params
        if config_low_qp > config_high_qp:
            raise EncodingError("config_low_qp must be <= config_high_qp")

        def psnr_for(qp: int) -> float:
            return (
                p.psnr_at_ref_qp
                - p.psnr_slope_db_per_qp * (qp - p.ref_qp)
                - p.psnr_motion_penalty_db * 0.4
            )

        low = psnr_for(config_high_qp)
        high = psnr_for(config_low_qp)
        return (
            float(min(max(low, p.psnr_floor_db), p.psnr_ceiling_db)),
            float(min(max(high, p.psnr_floor_db), p.psnr_ceiling_db)),
        )

    @staticmethod
    def mse_from_psnr(psnr_db: float, max_value: int = 255) -> float:
        """Convert a PSNR value back to mean squared error (8-bit scale)."""
        return (max_value**2) / (10.0 ** (psnr_db / 10.0))

    @staticmethod
    def psnr_from_mse(mse: float, max_value: int = 255) -> float:
        """Convert a mean squared error to PSNR (dB, 8-bit scale)."""
        if mse <= 0:
            raise EncodingError(f"mse must be positive, got {mse}")
        return 10.0 * math.log10((max_value**2) / mse)
