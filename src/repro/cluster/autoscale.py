"""Autoscaling: grow and shrink the fleet at run time from cluster signals.

The paper keeps QoS under a power cap on a *fixed* server; a production
service additionally rightsizes the fleet itself as traffic moves.  An
:class:`AutoscalePolicy` is consulted once per cluster step with an
:class:`AutoscaleSignals` bundle — the scheduling
:class:`~repro.cluster.state.ClusterSnapshot` plus the arrivals observed this
step and the provisioning pipeline state — and answers the fleet size it
wants *provisioned* (dispatchable plus still-warming servers).  The
:class:`~repro.cluster.cluster.ClusterOrchestrator` clamps the answer to its
``[min_servers, max_servers]`` band and executes it:

* growing commissions fresh servers that idle through a provisioning
  warm-up delay (drawing idle power, serving nothing) before joining the
  dispatchable fleet;
* shrinking first cancels still-warming servers, then marks dispatchable
  servers as *draining* — they take no new sessions, finish the ones they
  have, and are decommissioned only once empty.  Active sessions are never
  killed.

Four policies ship:

* :class:`FixedFleet` — the no-op baseline (the pre-autoscaling behavior);
* :class:`ReactiveThreshold` — threshold-with-hysteresis on queue length and
  session-slot utilization: distinct scale-up/scale-down thresholds, queue
  backlog sized into the scale-up amount, warming servers subtracted so a
  burst is not over-provisioned, and a cooldown before scale-downs so a
  noisy trace does not flap the fleet;
* :class:`TargetTracking` — holds the fleet's projected power at a target
  fraction of its budget, the cluster-level analogue of the paper's
  per-server power cap;
* :class:`PredictiveScaling` — forecasts the arrival rate with an EWMA over
  the observed workload trace and provisions capacity for the forecast via
  Little's law ahead of the queue actually building.

Policies are deterministic and, like dispatch policies, may carry state
(cooldowns, the EWMA) — build a fresh instance per run for reproducible
traces.
"""

from __future__ import annotations

import abc
import dataclasses
import math

from repro.errors import ClusterError
from repro.cluster.state import ClusterSnapshot

__all__ = [
    "AutoscaleSignals",
    "AutoscaleDecision",
    "AutoscalePolicy",
    "FixedFleet",
    "ReactiveThreshold",
    "TargetTracking",
    "PredictiveScaling",
]


@dataclasses.dataclass(frozen=True)
class AutoscaleSignals:
    """Everything an autoscaling policy may observe for one decision.

    Attributes
    ----------
    step:
        Cluster step the decision is taken at.
    snapshot:
        Scheduling snapshot over the *dispatchable* servers (warming and
        draining servers are excluded, exactly as admission/dispatch see it).
    arrivals:
        Requests that arrived during this step — the signal the predictive
        policy forecasts from.
    provisioned_servers:
        Dispatchable plus warming servers — the quantity policies target.
    warming_servers:
        Commissioned servers still inside their provisioning warm-up.
    draining_servers:
        Servers finishing their sessions before decommission.
    min_servers, max_servers:
        The orchestrator's clamping band.  Policies use it to tell a real
        resize from a clamped no-op (e.g. asking to grow past
        ``max_servers``), so cooldowns count from resizes that actually
        happened.
    draining_tail:
        True during the post-window drain tail, when admission is closed and
        the leftover queue can never be served.  The orchestrator already
        reports an effective queue of 0 in the snapshot during the tail (a
        backlog nobody will admit must not block "scale down only when the
        queue is empty" rules and keep idle servers powered); the flag lets
        policies distinguish the tail explicitly.
    brownout_level:
        The brownout controller's fleet-wide degradation level this step
        (0 = normal).  A sustained level means the fleet is serving users
        degraded quality for lack of capacity — scale-up pressure that the
        queue and utilization signals understate, because brownout exists
        precisely to keep the queue from building.
    """

    step: int
    snapshot: ClusterSnapshot
    arrivals: int
    provisioned_servers: int
    warming_servers: int
    draining_servers: int
    min_servers: int = 1
    max_servers: int | None = None
    draining_tail: bool = False
    brownout_level: int = 0

    def clamp(self, target_servers: int) -> int:
        """``target_servers`` after the orchestrator's band is applied."""
        target = max(target_servers, self.min_servers)
        if self.max_servers is not None:
            target = min(target, self.max_servers)
        return target

    @property
    def queue_length(self) -> int:
        """Requests waiting in the admission queue."""
        return self.snapshot.queue_length

    @property
    def dispatchable_servers(self) -> int:
        """Servers currently accepting new sessions."""
        return self.snapshot.num_servers


@dataclasses.dataclass(frozen=True)
class AutoscaleDecision:
    """A policy's answer: the fleet size it wants provisioned, and why.

    ``target_servers`` counts dispatchable plus warming servers; the
    orchestrator clamps it to its ``[min_servers, max_servers]`` band before
    executing.  ``reason`` is carried verbatim into the
    :class:`~repro.metrics.records.ScalingEvent` record when the decision
    resizes the fleet.
    """

    target_servers: int
    reason: str = ""


class AutoscalePolicy(abc.ABC):
    """Pluggable fleet-sizing rule consulted once per cluster step."""

    @abc.abstractmethod
    def decide(self, signals: AutoscaleSignals) -> AutoscaleDecision:
        """Desired provisioned fleet size given the current signals."""

    @property
    def name(self) -> str:
        """Human-readable policy name (defaults to the class name)."""
        return type(self).__name__


class FixedFleet(AutoscalePolicy):
    """Never resize — the fixed-fleet baseline autoscaling compares against."""

    def decide(self, signals: AutoscaleSignals) -> AutoscaleDecision:
        return AutoscaleDecision(signals.provisioned_servers, "fixed fleet")


class ReactiveThreshold(AutoscalePolicy):
    """Threshold-with-hysteresis on queue length and slot utilization.

    Scales **up** when the admission queue reaches ``scale_up_queue`` or the
    fleet's session-slot utilization reaches ``scale_up_utilization``; the
    backlog is sized into the move (one server per ``sessions_per_server``
    queued requests) and servers already warming are subtracted, so a flash
    crowd triggers one appropriately-sized ramp instead of a new server
    every step.  Scales **down** one server at a time, only when the queue
    is empty, utilization has fallen to ``scale_down_utilization``, nothing
    is still warming, and at least ``scale_down_cooldown_steps`` have passed
    since the last resize in either direction.

    The gap between the two utilization thresholds plus the cooldown is the
    hysteresis band: a trace oscillating inside the band leaves the fleet
    untouched.

    The policy is additionally **brownout-aware**: a brownout level above 0
    means users are already being served degraded quality for lack of
    capacity — pressure the queue and utilization signals understate,
    because brownout exists precisely to keep the queue from building.  At
    brownout onset the policy remembers the provisioned fleet size and
    targets ``base + brownout_servers_per_level * level`` — one
    appropriately-sized ramp per level, not a new server every browned-out
    step — and refuses to scale down while the level is above 0.  The
    remembered base resets when the brownout clears, so the next episode is
    judged from its own starting fleet (no flapping between episodes).

    Parameters
    ----------
    scale_up_queue:
        Queue length that triggers a scale-up.
    scale_up_utilization, scale_down_utilization:
        Slot-utilization thresholds (active sessions over
        ``dispatchable_servers * sessions_per_server``); the scale-down
        threshold must sit strictly below the scale-up threshold.
    sessions_per_server:
        Session slots one server offers (match the admission policy's
        per-server concurrency bound).
    scale_down_cooldown_steps:
        Minimum steps between the last resize and a scale-down.
    max_step_up:
        Optional bound on how many servers one scale-up may add.
    brownout_servers_per_level:
        Servers added per brownout level above the fleet size at brownout
        onset (0 disables brownout awareness except for the scale-down
        freeze).
    """

    def __init__(
        self,
        scale_up_queue: int = 4,
        scale_up_utilization: float = 0.85,
        scale_down_utilization: float = 0.35,
        sessions_per_server: int = 4,
        scale_down_cooldown_steps: int = 15,
        max_step_up: int | None = None,
        brownout_servers_per_level: int = 1,
    ) -> None:
        if scale_up_queue < 1:
            raise ClusterError(f"scale_up_queue must be >= 1, got {scale_up_queue}")
        if not 0.0 < scale_up_utilization <= 1.0:
            raise ClusterError(
                f"scale_up_utilization must be in (0, 1], got {scale_up_utilization}"
            )
        if not 0.0 <= scale_down_utilization < scale_up_utilization:
            raise ClusterError(
                "scale_down_utilization must sit below scale_up_utilization "
                f"(got {scale_down_utilization} vs {scale_up_utilization})"
            )
        if sessions_per_server < 1:
            raise ClusterError(
                f"sessions_per_server must be >= 1, got {sessions_per_server}"
            )
        if scale_down_cooldown_steps < 0:
            raise ClusterError(
                f"scale_down_cooldown_steps must be >= 0, got {scale_down_cooldown_steps}"
            )
        if max_step_up is not None and max_step_up < 1:
            raise ClusterError(f"max_step_up must be >= 1, got {max_step_up}")
        if brownout_servers_per_level < 0:
            raise ClusterError(
                "brownout_servers_per_level must be >= 0, "
                f"got {brownout_servers_per_level}"
            )
        self.scale_up_queue = int(scale_up_queue)
        self.scale_up_utilization = float(scale_up_utilization)
        self.scale_down_utilization = float(scale_down_utilization)
        self.sessions_per_server = int(sessions_per_server)
        self.scale_down_cooldown_steps = int(scale_down_cooldown_steps)
        self.max_step_up = max_step_up
        self.brownout_servers_per_level = int(brownout_servers_per_level)
        self._last_resize_step = 0
        self._brownout_base: int | None = None

    def _utilization(self, signals: AutoscaleSignals) -> float:
        slots = signals.dispatchable_servers * self.sessions_per_server
        if slots == 0:
            return 1.0
        return signals.snapshot.total_active_sessions / slots

    def decide(self, signals: AutoscaleSignals) -> AutoscaleDecision:
        provisioned = signals.provisioned_servers
        queue = signals.queue_length
        utilization = self._utilization(signals)

        # Pin the brownout baseline at episode onset; forget it on recovery
        # so the next episode is judged from its own starting fleet.
        level = signals.brownout_level
        if level > 0:
            if self._brownout_base is None:
                self._brownout_base = provisioned
        else:
            self._brownout_base = None

        if queue >= self.scale_up_queue or utilization >= self.scale_up_utilization:
            needed = max(1, math.ceil(queue / self.sessions_per_server))
            if self.max_step_up is not None:
                needed = min(needed, self.max_step_up)
            add = needed - signals.warming_servers
            target = signals.clamp(provisioned + add) if add > 0 else provisioned
            if target > provisioned:
                self._last_resize_step = signals.step
                return AutoscaleDecision(
                    target,
                    f"queue={queue} utilization={utilization:.2f} above "
                    f"scale-up thresholds",
                )
            return AutoscaleDecision(
                provisioned,
                "pressure already covered by warming servers or the fleet "
                "ceiling",
            )

        if level > 0:
            boosted = signals.clamp(
                max(
                    provisioned,
                    self._brownout_base
                    + self.brownout_servers_per_level * level,
                )
            )
            if boosted > provisioned:
                self._last_resize_step = signals.step
                return AutoscaleDecision(
                    boosted,
                    f"brownout level {level}: provisioning to restore full "
                    f"quality",
                )
            # Shedding capacity while users are served degraded would only
            # deepen the brownout: freeze scale-downs until it clears.
            return AutoscaleDecision(
                provisioned, f"holding fleet at brownout level {level}"
            )

        if (
            queue == 0
            and signals.warming_servers == 0
            and utilization <= self.scale_down_utilization
            and signals.step - self._last_resize_step >= self.scale_down_cooldown_steps
        ):
            target = signals.clamp(provisioned - 1)
            if target < provisioned:
                self._last_resize_step = signals.step
                return AutoscaleDecision(
                    target,
                    f"utilization={utilization:.2f} below scale-down threshold",
                )

        return AutoscaleDecision(provisioned, "inside hysteresis band")


class TargetTracking(AutoscalePolicy):
    """Track a target fraction of the fleet's power budget.

    The fleet-level analogue of the paper's per-server power cap: the policy
    holds the fleet's *projected* power (the within-step projection shared
    with :class:`~repro.cluster.admission.PowerHeadroom`) at
    ``target_power_fraction`` of ``snapshot.power_cap_w`` by resizing
    proportionally — the classic target-tracking rule
    ``desired = current * metric / target``.  A symmetric ``deadband``
    around the target absorbs noise, and scale-downs additionally require an
    empty queue, no warming servers and a cooldown.

    Parameters
    ----------
    target_power_fraction:
        Fraction of the fleet power budget to hold (0 < target <= 1).
    watts_per_session_estimate:
        Idle-fleet fallback for the marginal-power estimate.
    deadband:
        Relative half-width of the no-action band around the target.
    scale_down_cooldown_steps:
        Minimum steps between the last resize and a scale-down.
    """

    def __init__(
        self,
        target_power_fraction: float = 0.65,
        watts_per_session_estimate: float = 25.0,
        deadband: float = 0.1,
        scale_down_cooldown_steps: int = 10,
    ) -> None:
        if not 0.0 < target_power_fraction <= 1.0:
            raise ClusterError(
                f"target_power_fraction must be in (0, 1], got {target_power_fraction}"
            )
        if watts_per_session_estimate <= 0:
            raise ClusterError(
                "watts_per_session_estimate must be positive, "
                f"got {watts_per_session_estimate}"
            )
        if deadband < 0:
            raise ClusterError(f"deadband must be >= 0, got {deadband}")
        if scale_down_cooldown_steps < 0:
            raise ClusterError(
                f"scale_down_cooldown_steps must be >= 0, got {scale_down_cooldown_steps}"
            )
        self.target_power_fraction = float(target_power_fraction)
        self.watts_per_session_estimate = float(watts_per_session_estimate)
        self.deadband = float(deadband)
        self.scale_down_cooldown_steps = int(scale_down_cooldown_steps)
        self._last_resize_step = 0

    def decide(self, signals: AutoscaleSignals) -> AutoscaleDecision:
        provisioned = signals.provisioned_servers
        snapshot = signals.snapshot
        if snapshot.num_servers == 0 or snapshot.power_cap_w <= 0:
            return AutoscaleDecision(provisioned, "no dispatchable budget to track")

        fraction = (
            snapshot.projected_power_w(self.watts_per_session_estimate)
            / snapshot.power_cap_w
        )
        target_fraction = self.target_power_fraction
        desired = signals.clamp(
            max(1, math.ceil(snapshot.num_servers * fraction / target_fraction))
        )
        reason = (
            f"power at {100 * fraction:.0f}% of budget, target "
            f"{100 * target_fraction:.0f}%"
        )

        if fraction > target_fraction * (1.0 + self.deadband) and desired > provisioned:
            self._last_resize_step = signals.step
            return AutoscaleDecision(desired, reason)
        if (
            fraction < target_fraction * (1.0 - self.deadband)
            and desired < provisioned
            and signals.queue_length == 0
            and signals.warming_servers == 0
            and signals.step - self._last_resize_step
            >= self.scale_down_cooldown_steps
        ):
            self._last_resize_step = signals.step
            return AutoscaleDecision(desired, reason)
        return AutoscaleDecision(provisioned, "inside target deadband")


class PredictiveScaling(AutoscalePolicy):
    """Forecast arrivals with an EWMA and provision for the forecast.

    Each step the observed arrival count updates an exponentially weighted
    moving average of the arrival rate; Little's law turns the forecast into
    an expected concurrency (``rate * service_steps``) and the policy
    provisions ``headroom`` times the servers that concurrency needs.  The
    fleet therefore starts growing while a ramp is still building — before
    the queue that would trigger a reactive policy even exists — at the cost
    of trusting the forecast.  Scale-downs wait for the EWMA to decay and
    are cooldown-gated so a burst's tail does not flap the fleet.

    Parameters
    ----------
    sessions_per_server:
        Session slots one server offers.
    service_steps:
        Expected session lifetime in cluster steps (one step transcodes one
        frame, so this is the playlist length in frames).
    alpha:
        EWMA smoothing factor in (0, 1]; higher tracks faster but chases
        the Poisson noise of per-step arrival counts (0.1 remembers roughly
        the last ten steps).
    headroom:
        Capacity multiplier over the point forecast (>= 1).
    scale_down_cooldown_steps:
        Minimum steps between the last resize and a scale-down.
    scale_down_slack:
        Servers of excess the forecast must show before a scale-down is
        worth it — the asymmetric half of the hysteresis (scale-ups act on
        a one-server deficit, scale-downs wait for ``1 + slack``), which
        keeps a slowly breathing trace from flapping the fleet.
    """

    def __init__(
        self,
        sessions_per_server: int = 4,
        service_steps: int = 72,
        alpha: float = 0.1,
        headroom: float = 1.15,
        scale_down_cooldown_steps: int = 12,
        scale_down_slack: int = 1,
    ) -> None:
        if sessions_per_server < 1:
            raise ClusterError(
                f"sessions_per_server must be >= 1, got {sessions_per_server}"
            )
        if service_steps < 1:
            raise ClusterError(f"service_steps must be >= 1, got {service_steps}")
        if not 0.0 < alpha <= 1.0:
            raise ClusterError(f"alpha must be in (0, 1], got {alpha}")
        if headroom < 1.0:
            raise ClusterError(f"headroom must be >= 1, got {headroom}")
        if scale_down_cooldown_steps < 0:
            raise ClusterError(
                f"scale_down_cooldown_steps must be >= 0, got {scale_down_cooldown_steps}"
            )
        if scale_down_slack < 0:
            raise ClusterError(
                f"scale_down_slack must be >= 0, got {scale_down_slack}"
            )
        self.sessions_per_server = int(sessions_per_server)
        self.service_steps = int(service_steps)
        self.alpha = float(alpha)
        self.headroom = float(headroom)
        self.scale_down_cooldown_steps = int(scale_down_cooldown_steps)
        self.scale_down_slack = int(scale_down_slack)
        self._rate_forecast: float | None = None
        self._last_resize_step = 0

    @property
    def rate_forecast(self) -> float:
        """The current EWMA arrival-rate forecast (0 before any sample)."""
        return self._rate_forecast if self._rate_forecast is not None else 0.0

    def decide(self, signals: AutoscaleSignals) -> AutoscaleDecision:
        if self._rate_forecast is None:
            self._rate_forecast = float(signals.arrivals)
        else:
            self._rate_forecast = (
                self.alpha * signals.arrivals
                + (1.0 - self.alpha) * self._rate_forecast
            )

        expected_sessions = self._rate_forecast * self.service_steps
        desired = signals.clamp(
            max(
                1,
                math.ceil(
                    self.headroom * expected_sessions / self.sessions_per_server
                ),
            )
        )
        provisioned = signals.provisioned_servers
        reason = (
            f"forecast {self._rate_forecast:.2f}/step -> "
            f"{expected_sessions:.0f} concurrent sessions"
        )

        if desired > provisioned:
            self._last_resize_step = signals.step
            return AutoscaleDecision(desired, reason)
        # Never shrink below what the sessions already running need — the
        # forecast may lag a burst's tail, but draining capacity that is
        # still in use would only force a re-provision a few steps later.
        occupancy_floor = max(
            1,
            math.ceil(
                signals.snapshot.total_active_sessions / self.sessions_per_server
            ),
        )
        target = signals.clamp(max(desired, occupancy_floor))
        if (
            target < provisioned - self.scale_down_slack
            and signals.queue_length == 0
            and signals.step - self._last_resize_step
            >= self.scale_down_cooldown_steps
        ):
            self._last_resize_step = signals.step
            return AutoscaleDecision(target, reason)
        return AutoscaleDecision(provisioned, reason)
