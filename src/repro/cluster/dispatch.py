"""Dispatch: route an admitted request to exactly one server of the fleet.

Mirrors the load-balancing layer of an SDN controller: a
:class:`DispatchPolicy` sees the same immutable
:class:`~repro.cluster.state.ClusterSnapshot` the admission controller saw
and returns the index of the target server.  Three classic policies ship:

* :class:`RoundRobin` — cycle through the servers regardless of load;
* :class:`LeastLoaded` — fewest active sessions wins (ties break to the
  lowest index, keeping traces deterministic);
* :class:`PowerAware` — lowest last-step package power wins, steering new
  work to the coolest machine;
* :class:`FailureAware` — crash-history-weighted: prefer servers with long
  observed uptimes and few crashes, and steer crash *retries* away from the
  failure zone that just lost them.

Policies never see unhealthy capacity: the snapshot's ``servers`` tuple is
the *dispatchable* roster, which the orchestrator already strips of
warming, draining, straggler-throttled and crashed servers — routing
around failures requires no fault awareness in the policies themselves.
:class:`FailureAware` goes one step further and reasons about the fault
*history* the roster cannot express.
"""

from __future__ import annotations

import abc

from repro.errors import ClusterError
from repro.cluster.state import ClusterSnapshot
from repro.cluster.workload import WorkloadEvent

__all__ = [
    "DispatchPolicy",
    "RoundRobin",
    "LeastLoaded",
    "PowerAware",
    "FailureAware",
]


class DispatchPolicy(abc.ABC):
    """Pluggable load-balancing rule: one admitted request -> one server."""

    @abc.abstractmethod
    def select(self, event: WorkloadEvent, snapshot: ClusterSnapshot) -> int:
        """Index of the server that receives ``event``.

        Must return a valid index into ``snapshot.servers``; the cluster
        orchestrator validates the choice and raises
        :class:`~repro.errors.ClusterError` on an out-of-range index.
        """

    @property
    def name(self) -> str:
        """Human-readable policy name (defaults to the class name)."""
        return type(self).__name__

    @staticmethod
    def _require_servers(snapshot: ClusterSnapshot) -> None:
        if snapshot.num_servers == 0:
            raise ClusterError("cannot dispatch on an empty fleet")


class RoundRobin(DispatchPolicy):
    """Cycle through the servers in index order, ignoring load."""

    def __init__(self) -> None:
        self._next = 0

    def select(self, event: WorkloadEvent, snapshot: ClusterSnapshot) -> int:
        self._require_servers(snapshot)
        index = self._next % snapshot.num_servers
        self._next = (index + 1) % snapshot.num_servers
        return index


class LeastLoaded(DispatchPolicy):
    """Send the request to the server with the fewest active sessions."""

    def select(self, event: WorkloadEvent, snapshot: ClusterSnapshot) -> int:
        self._require_servers(snapshot)
        return snapshot.least_loaded().server_index


class PowerAware(DispatchPolicy):
    """Send the request to the server projected to draw the least power.

    Server power is only sampled once per step, so ranking raw
    ``last_power_w`` would pile every request of a within-step burst onto
    the single coolest machine.  Instead each server is ranked by
    :meth:`~repro.cluster.state.ServerSnapshot.projected_power_w` — its last
    reading projected forward by the marginal power of every session
    admitted since the sample, with ``watts_per_session_estimate`` as the
    idle-server fallback (the same helper family
    :class:`~repro.cluster.admission.PowerHeadroom` uses fleet-wide).
    Ties break by active-session count and then by index, so dispatch stays
    deterministic.
    """

    def __init__(self, watts_per_session_estimate: float = 25.0) -> None:
        if watts_per_session_estimate <= 0:
            raise ClusterError(
                "watts_per_session_estimate must be positive, "
                f"got {watts_per_session_estimate}"
            )
        self.watts_per_session_estimate = float(watts_per_session_estimate)

    def select(self, event: WorkloadEvent, snapshot: ClusterSnapshot) -> int:
        self._require_servers(snapshot)
        estimate = self.watts_per_session_estimate
        best = min(
            snapshot.servers,
            key=lambda s: (
                s.projected_power_w(estimate),
                s.active_sessions,
                s.server_index,
            ),
        )
        return best.server_index


class FailureAware(DispatchPolicy):
    """Crash-history-weighted dispatch: trust machines that stay up.

    Closes the loop between the fault ledger and routing.  Each candidate
    is scored by a load-per-trust ratio — projected load ``active + 1``
    inflated by its observed crash count and discounted by its observed
    uptime::

        score = (active_sessions + 1) * (1 + crash_count) / (1 + uptime_steps)

    so at equal load a server that has crashed twice scores three times
    worse than one that never has, and at equal crash history the machine
    up longest wins.  Two extra rules harden recovery paths:

    * **Retry anti-affinity** — when the snapshot marks the decision as a
      crash retry (:attr:`~repro.cluster.state.ClusterSnapshot.retry_of_zone`),
      every server *outside* the zone that just lost the session outranks
      every server inside it.  One correlated outage then cannot eat a
      session's whole retry budget.
    * **Deterministic ties** — ties break by crash count, then longest
      uptime, then index, so both stepping engines route identically.
    """

    def select(self, event: WorkloadEvent, snapshot: ClusterSnapshot) -> int:
        self._require_servers(snapshot)
        avoid_zone = snapshot.retry_of_zone
        best = min(
            snapshot.servers,
            key=lambda s: (
                1 if avoid_zone is not None and s.zone == avoid_zone else 0,
                (s.active_sessions + 1) * (1 + s.crash_count) / (1 + s.uptime_steps),
                s.crash_count,
                -s.uptime_steps,
                s.server_index,
            ),
        )
        return best.server_index
