"""Cluster orchestration: N servers, arriving traffic, admission + dispatch.

The :class:`ClusterOrchestrator` closes the gap between the paper's
fixed-cohort experiments and a production service.  It owns one
:class:`~repro.manager.orchestrator.Orchestrator` per server and drives them
step-wise; each step it

1. re-evaluates queued requests (FIFO) against the admission policy,
2. offers the step's new arrivals to the admission policy,
3. routes admitted requests to a server via the dispatch policy
   (sessions join mid-run through ``Orchestrator.add_session``), and
4. advances every server by one frame, sampling idle power on servers with
   nothing to do so fleet energy accounting includes the machines that are
   merely switched on.

Step 4 runs on one of two engines selected by the ``engine`` parameter:
``"batch"`` (the default) advances the whole fleet in one fused NumPy batch
per step via :class:`~repro.cluster.batch.BatchStepper`; ``"scalar"`` steps
server by server and session by session through the scalar model calls.  The
engines are seed-for-seed equivalent — same results, the batch engine is
just what makes thousand-server fleets tractable.

Everything downstream of the seed is deterministic: the same
``(workload seed, policies, cluster seed)`` tuple reproduces the identical
:class:`ClusterResult` on either engine.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Mapping, Optional, Sequence

from repro.constants import DEFAULT_POWER_CAP_W
from repro.errors import ClusterError
from repro.cluster.admission import AdmissionPolicy, AdmissionVerdict, CapacityThreshold
from repro.cluster.batch import BatchStepper
from repro.cluster.dispatch import DispatchPolicy, LeastLoaded
from repro.cluster.state import ClusterSnapshot, ServerSnapshot
from repro.cluster.workload import WorkloadEvent, WorkloadGenerator
from repro.manager.factories import ControllerFactory, mamut_factory
from repro.manager.orchestrator import Orchestrator
from repro.manager.session import TranscodingSession
from repro.metrics.cluster import ClusterSummary, summarize_cluster
from repro.metrics.records import FrameRecord, PowerSample
from repro.platform.server import MulticoreServer

__all__ = ["ClusterResult", "ClusterOrchestrator"]


@dataclasses.dataclass(frozen=True)
class ClusterResult:
    """Raw output of one cluster run.

    Attributes
    ----------
    records_by_server:
        One ``{session_id: [FrameRecord, ...]}`` mapping per server.
    samples_by_server:
        One power trace per server; every server contributes exactly one
        sample per cluster step (idle steps included).
    arrivals, admitted, rejected, abandoned:
        The admission ledger; ``abandoned`` counts requests still queued
        when the run ended.
    queue_waits:
        Steps each admitted request spent queued (0 = admitted on arrival).
    steps:
        Cluster steps executed, drain included.
    """

    records_by_server: tuple[Mapping[str, Sequence[FrameRecord]], ...]
    samples_by_server: tuple[tuple[PowerSample, ...], ...]
    arrivals: int
    admitted: int
    rejected: int
    abandoned: int
    queue_waits: tuple[int, ...]
    steps: int

    def summary(self) -> ClusterSummary:
        """Aggregate the run into fleet-level metrics."""
        return summarize_cluster(
            self.records_by_server,
            self.samples_by_server,
            arrivals=self.arrivals,
            admitted=self.admitted,
            rejected=self.rejected,
            abandoned=self.abandoned,
            queue_waits=self.queue_waits,
            steps=self.steps,
        )


class ClusterOrchestrator:
    """Runs a fleet of transcoding servers under arriving traffic.

    Parameters
    ----------
    num_servers:
        Servers in the fleet; each gets its own fresh
        :class:`~repro.platform.server.MulticoreServer`.
    workload:
        The arrival stream (see :class:`~repro.cluster.workload.WorkloadGenerator`).
    admission:
        Admission policy; defaults to :class:`~repro.cluster.admission.CapacityThreshold`.
    dispatcher:
        Load-balancing policy; defaults to :class:`~repro.cluster.dispatch.LeastLoaded`.
    controller_factory:
        Per-session controller builder ``(request, seed) -> Controller``;
        defaults to fresh MAMUT controllers under ``power_cap_w``.
    server_factory:
        Callable creating one server; lets callers mix topologies.
    power_cap_w:
        Per-server power cap handed to the default controller factory; the
        fleet budget visible to admission policies is
        ``fleet_power_cap_w or num_servers * power_cap_w``.
    seed:
        Seeds the per-session controller randomness (the workload carries
        its own seed).
    engine:
        ``"batch"`` (default) advances the fleet through the vectorized
        :class:`~repro.cluster.batch.BatchStepper`; ``"scalar"`` steps each
        server's sessions one by one.  Both engines produce identical
        results for the same seed; use ``"scalar"`` when sessions carry
        models whose *methods* (not just parameters) were overridden.
    """

    def __init__(
        self,
        num_servers: int,
        workload: WorkloadGenerator,
        admission: Optional[AdmissionPolicy] = None,
        dispatcher: Optional[DispatchPolicy] = None,
        controller_factory: Optional[ControllerFactory] = None,
        server_factory=MulticoreServer,
        power_cap_w: float = DEFAULT_POWER_CAP_W,
        fleet_power_cap_w: Optional[float] = None,
        seed: int = 0,
        engine: str = "batch",
    ) -> None:
        if num_servers < 1:
            raise ClusterError(f"num_servers must be >= 1, got {num_servers}")
        if engine not in ("batch", "scalar"):
            raise ClusterError(
                f"engine must be 'batch' or 'scalar', got {engine!r}"
            )
        self.workload = workload
        self.admission = admission if admission is not None else CapacityThreshold()
        self.dispatcher = dispatcher if dispatcher is not None else LeastLoaded()
        self.controller_factory = (
            controller_factory
            if controller_factory is not None
            else mamut_factory(power_cap_w=power_cap_w)
        )
        self.power_cap_w = float(power_cap_w)
        self.fleet_power_cap_w = (
            float(fleet_power_cap_w)
            if fleet_power_cap_w is not None
            else num_servers * self.power_cap_w
        )
        self.seed = int(seed)
        self.engine = engine
        self._stepper: Optional[BatchStepper] = None
        self.orchestrators = [
            Orchestrator(server=server_factory()) for _ in range(num_servers)
        ]
        # Before a server's first step its "last power" is its idle draw
        # (allocate([]) is side-effect free).
        self._idle_power_w = [
            orch.server.allocate([]).total_power_w for orch in self.orchestrators
        ]
        self._last_power_w = list(self._idle_power_w)
        self._last_active = [0] * num_servers
        self._dispatched = [0] * num_servers
        self._admitted = 0
        self._ran = False

    @property
    def num_servers(self) -> int:
        """Servers in the fleet."""
        return len(self.orchestrators)

    # -- state -------------------------------------------------------------------------

    def snapshot(self, step: int, queue_length: int) -> ClusterSnapshot:
        """Immutable fleet state as seen by admission/dispatch policies."""
        servers = tuple(
            ServerSnapshot(
                server_index=index,
                active_sessions=len(orch.active_sessions()),
                last_power_w=self._last_power_w[index],
                sessions_dispatched=self._dispatched[index],
                idle_power_w=self._idle_power_w[index],
                last_active_sessions=self._last_active[index],
            )
            for index, orch in enumerate(self.orchestrators)
        )
        return ClusterSnapshot(
            step=step,
            servers=servers,
            queue_length=queue_length,
            power_cap_w=self.fleet_power_cap_w,
        )

    # -- execution ---------------------------------------------------------------------

    def run(
        self,
        duration: int,
        drain: bool = True,
        max_drain_steps: Optional[int] = None,
    ) -> ClusterResult:
        """Serve ``duration`` steps of arriving traffic.

        With ``drain=True`` (the default) the fleet keeps stepping after the
        arrival window until every admitted playlist finishes, so sessions
        admitted late are never cut off mid-video.  Draining closes
        admission: requests still queued when the window ends are *not*
        served by capacity freed during the tail — they are reported as
        ``abandoned``.  ``max_drain_steps`` bounds the tail for overload
        experiments.

        A cluster orchestrator is single-use: the per-server orchestrators
        keep their sessions, so a second ``run()`` would silently mix the
        runs' records.  Build a fresh instance per run instead.
        """
        if duration < 0:
            raise ClusterError(f"duration must be >= 0, got {duration}")
        if self._ran:
            raise ClusterError(
                "this ClusterOrchestrator has already run; create a fresh "
                "instance per run"
            )
        if self.workload.consumed:
            raise ClusterError(
                "the workload generator has already produced arrivals, so its "
                "trace would not start from the seed; create a fresh "
                "WorkloadGenerator (the same seed reproduces the trace)"
            )
        self._ran = True

        queue: deque[WorkloadEvent] = deque()
        samples: list[list[PowerSample]] = [[] for _ in self.orchestrators]
        arrivals = admitted = rejected = 0
        queue_waits: list[int] = []

        for step in range(duration):
            # Queued requests get first claim on freed capacity (FIFO: stop
            # at the first request the policy keeps queued).
            while queue:
                snapshot = self.snapshot(step, len(queue) - 1)
                verdict = self.admission.decide(queue[0], snapshot)
                if verdict is AdmissionVerdict.QUEUE:
                    break
                event = queue.popleft()
                if verdict is AdmissionVerdict.ADMIT:
                    self._dispatch(event, snapshot)
                    admitted += 1
                    queue_waits.append(step - event.arrival_step)
                else:
                    rejected += 1

            for event in self.workload.arrivals(step):
                arrivals += 1
                snapshot = self.snapshot(step, len(queue))
                verdict = self.admission.decide(event, snapshot)
                if verdict is AdmissionVerdict.ADMIT:
                    self._dispatch(event, snapshot)
                    admitted += 1
                    queue_waits.append(0)
                elif verdict is AdmissionVerdict.QUEUE:
                    queue.append(event)
                else:
                    rejected += 1

            self._advance(step, samples)

        steps = duration
        if drain:
            while any(orch.active_sessions() for orch in self.orchestrators):
                if max_drain_steps is not None and steps - duration >= max_drain_steps:
                    break
                self._advance(steps, samples)
                steps += 1

        return ClusterResult(
            records_by_server=tuple(
                {
                    session.session_id: tuple(session.records)
                    for session in orch.sessions
                }
                for orch in self.orchestrators
            ),
            samples_by_server=tuple(tuple(trace) for trace in samples),
            arrivals=arrivals,
            admitted=admitted,
            rejected=rejected,
            abandoned=len(queue),
            queue_waits=tuple(queue_waits),
            steps=steps,
        )

    # -- internals ---------------------------------------------------------------------

    def _dispatch(self, event: WorkloadEvent, snapshot: ClusterSnapshot) -> None:
        """Route an admitted event using the snapshot its admission saw
        (cluster state cannot change between the two decisions)."""
        index = self.dispatcher.select(event, snapshot)
        if not 0 <= index < self.num_servers:
            raise ClusterError(
                f"{self.dispatcher.name} chose server {index} "
                f"of a {self.num_servers}-server fleet"
            )
        controller = self.controller_factory(
            event.request, self.seed + self._admitted
        )
        self._admitted += 1
        session = TranscodingSession(
            request=event.request,
            controller=controller,
            playlist=event.playlist,
        )
        self.orchestrators[index].add_session(session)
        self._dispatched[index] += 1

    def _advance(self, step: int, samples: list[list[PowerSample]]) -> None:
        """Step every server once, sampling idle power on empty servers."""
        if self.engine == "batch":
            if self._stepper is None:
                self._stepper = BatchStepper(self.orchestrators)
            step_samples = self._stepper.step(step)
        else:
            step_samples = []
            for orch in self.orchestrators:
                sample = orch.run_step(step)
                if sample is None:
                    sample = orch.idle_step(step)
                step_samples.append(sample)
        for index, sample in enumerate(step_samples):
            samples[index].append(sample)
            self._last_power_w[index] = sample.power_w
            self._last_active[index] = sample.active_sessions
