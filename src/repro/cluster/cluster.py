"""Cluster orchestration: N servers, arriving traffic, admission + dispatch.

The :class:`ClusterOrchestrator` closes the gap between the paper's
fixed-cohort experiments and a production service.  It owns one
:class:`~repro.manager.orchestrator.Orchestrator` per server and drives them
step-wise; each step it

1. ages the admission queue — requests past their patience deadline are
   *dropped* (a ledger entry distinct from rejections) — and consults the
   optional brownout controller (:mod:`repro.cluster.brownout`), which may
   degrade the quality of newly admitted sessions fleet-wide instead of
   letting the fleet shed load,
2. re-evaluates queued requests (FIFO) against the admission policy and
   offers the step's new arrivals to it,
3. routes admitted requests to a server via the dispatch policy
   (sessions join mid-run through ``Orchestrator.add_session``),
4. consults the optional autoscaling policy
   (:mod:`repro.cluster.autoscale`) and resizes the fleet — commissioning
   servers that idle through a provisioning warm-up before accepting work,
   and draining servers before decommissioning them so active sessions are
   never killed, and
5. advances every powered-on server by one frame, sampling idle power on
   servers with nothing to do (warming servers included) so fleet energy
   accounting includes the machines that are merely switched on.

Step 5 runs on one of two engines selected by the ``engine`` parameter:
``"batch"`` (the default) advances the whole fleet in one fused NumPy batch
per step via :class:`~repro.cluster.batch.BatchStepper`; ``"scalar"`` steps
server by server and session by session through the scalar model calls.  The
engines are seed-for-seed equivalent — same results, the batch engine is
just what makes thousand-server fleets tractable.  Fleet resizes rebuild the
batch stepper's per-server constants; membership changes are therefore
identical on both engines.

Scheduling decisions are O(servers): per-server active-session counts are
maintained incrementally (updated once per step as the engines advance, and
on every dispatch) instead of walking each orchestrator's session list per
arrival, and consecutive decisions within a step derive their snapshot from
the previous one instead of rebuilding it.

An optional seeded fault injector (:mod:`repro.cluster.faults`) exercises
the recovery paths: abrupt server crashes (in-flight sessions salvaged —
Q-tables snapshotted, the remaining playlist re-dispatched with bounded
retries and exponential backoff, learning restored on the replacement
server), transient stragglers (throttled servers leave the dispatchable
roster but keep serving what they have), warm-up failures (a commissioned
server that never comes ready), and *correlated zone outages*: every slot
carries a seeded ``(zone, rack)`` failure domain, and a zone outage —
drawn from a zone MTBF or declared by a kill schedule — takes down every
server of the domain at once.  Periodic frame-level checkpoints (metered
as a bandwidth cost in fleet power) bound a retry's recomputation to the
checkpoint interval, and the failure-aware dispatcher steers work toward
long-uptime servers and retries away from the zone that lost them.
Fault-driven membership changes ride the same roster-refresh path as
autoscaling resizes, so both engines stay seed-for-seed identical under
any fault schedule.

Everything downstream of the seed is deterministic: the same
``(workload seed, policies, cluster seed, fault seed)`` tuple reproduces
the identical :class:`ClusterResult` on either engine.
"""

from __future__ import annotations

import dataclasses
import logging
from collections import deque
from typing import Mapping, Optional, Sequence

from repro.constants import DEFAULT_POWER_CAP_W
from repro.errors import ClusterError
from repro.cluster.admission import AdmissionPolicy, AdmissionVerdict, CapacityThreshold
from repro.cluster.autoscale import AutoscalePolicy, AutoscaleSignals
from repro.cluster.batch import BatchStepper
from repro.cluster.brownout import BrownoutController
from repro.cluster.dispatch import DispatchPolicy, LeastLoaded
from repro.cluster.faults import FailureTopology, FaultConfig, FaultInjector
from repro.cluster.state import ClusterSnapshot, ServerSnapshot
from repro.cluster.workload import WorkloadEvent, WorkloadGenerator
from repro.core.persistence import restore_session_state, snapshot_session
from repro.manager.factories import ControllerFactory, mamut_factory
from repro.manager.orchestrator import Orchestrator
from repro.manager.session import TranscodingSession
from repro.metrics.cluster import ClusterSummary, summarize_cluster
from repro.metrics.records import (
    FaultEvent,
    FleetSample,
    FrameRecord,
    PowerSample,
    ScalingEvent,
)
from repro.platform.server import MulticoreServer
from repro.telemetry.config import Telemetry, resolve_telemetry
from repro.telemetry.metrics import QUEUE_WAIT_EDGES

__all__ = ["ClusterResult", "ClusterOrchestrator"]

_LOG = logging.getLogger("repro.cluster")

# Lifecycle of one server slot.  Slots are append-only: a decommissioned
# server stops stepping but keeps its records and power trace in the result.
_WARMING = "warming"      # commissioned, idling through the provisioning delay
_ACTIVE = "active"        # dispatchable
_DRAINING = "draining"    # no new sessions; finishing the ones it has
_RETIRED = "retired"      # decommissioned; no longer stepping

# Health of one server slot, orthogonal to the lifecycle above.  Only an
# ACTIVE *and* HEALTHY slot is dispatchable; a FAILED slot is off power
# entirely (not live) until its seeded recovery.
_HEALTHY = "healthy"        # full service
_DEGRADED = "degraded"      # straggler throttle: keeps sessions, takes none
_FAILED = "failed"          # crashed; down until the seeded recovery step
_RECOVERING = "recovering"  # back on power, rebooting through the warm-up


class _ServerSlot:
    """One server's live bookkeeping inside the cluster."""

    __slots__ = (
        "index",
        "orchestrator",
        "state",
        "health",
        "idle_power_w",
        "last_power_w",
        "last_active",
        "dispatched",
        "active_count",
        "samples",
        "commissioned_step",
        "ready_step",
        "decommissioned_step",
        "throttle_until",
        "recover_step",
        "recovery_ready_step",
        "warmup_fails",
        "zone",
        "rack",
        "crashes",
        "up_since",
    )

    def __init__(
        self, index: int, orchestrator: Orchestrator, commissioned_step: int
    ) -> None:
        self.index = index
        self.orchestrator = orchestrator
        self.state = _ACTIVE
        self.health = _HEALTHY
        # Before a server's first step its "last power" is its idle draw
        # (allocate([]) is side-effect free).
        self.idle_power_w = orchestrator.server.allocate([]).total_power_w
        self.last_power_w = self.idle_power_w
        self.last_active = 0
        self.dispatched = 0
        self.active_count = 0
        self.samples: list[PowerSample] = []
        self.commissioned_step = commissioned_step
        self.ready_step = commissioned_step
        self.decommissioned_step: Optional[int] = None
        self.throttle_until = 0
        self.recover_step: Optional[int] = None
        self.recovery_ready_step = 0
        self.warmup_fails = False
        # Failure-domain identity and crash history; the orchestrator
        # assigns the domain from its topology right after construction.
        self.zone = 0
        self.rack = 0
        self.crashes = 0
        self.up_since = commissioned_step


class _RetryTicket:
    """A request salvaged from a crashed server, waiting to be re-dispatched.

    Carries everything recovery needs: the original workload event (class
    and playlist provenance), the remaining playlist (finished videos are
    not redone), the crash-attempt count, the step at which the exponential
    backoff makes the ticket eligible again, and the session snapshot
    captured from the dying session (Q-tables plus checkpointed progress)
    so learning migrates to the replacement server.  ``resume_frame`` is
    the frame of the interrupted video the replacement session starts at —
    the last checkpoint, or 0 (replay from the video start) when
    checkpointing is off; ``recomputed`` is the frames between that
    checkpoint and the crash point, charged to the ``recomputed_frames``
    ledger when the retry is actually dispatched.  ``from_zone`` is the
    failure domain the session was lost in, published to the dispatcher so
    failure-aware policies spread retries across domains.
    """

    __slots__ = (
        "event",
        "user_id",
        "attempt",
        "ready_step",
        "playlist",
        "session_state",
        "resume_frame",
        "from_zone",
        "recomputed",
    )

    def __init__(
        self,
        event,
        user_id,
        attempt,
        ready_step,
        playlist,
        session_state,
        resume_frame=0,
        from_zone=None,
        recomputed=0,
    ) -> None:
        self.event = event
        self.user_id = user_id
        self.attempt = attempt
        self.ready_step = ready_step
        self.playlist = playlist
        self.session_state = session_state
        self.resume_frame = resume_frame
        self.from_zone = from_zone
        self.recomputed = recomputed


class _SessionMeta:
    """Per-session recovery bookkeeping (kept only when faults are enabled)."""

    __slots__ = ("event", "user_id", "attempt")

    def __init__(self, event, user_id, attempt) -> None:
        self.event = event
        self.user_id = user_id
        self.attempt = attempt


@dataclasses.dataclass(frozen=True)
class ClusterResult:
    """Raw output of one cluster run.

    Attributes
    ----------
    records_by_server:
        One ``{session_id: [FrameRecord, ...]}`` mapping per server, in
        commissioning order (decommissioned servers keep their entry).
    samples_by_server:
        One power trace per server; a server contributes one sample per
        cluster step it was powered on (idle and warm-up steps included), so
        traces of servers commissioned or decommissioned mid-run are shorter
        than the run.
    arrivals, admitted, rejected, abandoned:
        The admission ledger; ``abandoned`` counts requests still queued
        when the run ended.
    dropped:
        Queued requests that aged past their patience deadline and were
        dropped before ever reaching a server — distinct from ``rejected``
        (turned away on decision) and ``abandoned`` (still queued at the
        end).  0 when the workload carries no patience stamps.
    queue_waits:
        Steps each admitted request spent queued (0 = admitted on arrival).
        Dropped requests never appear here — they were never admitted.
    steps:
        Cluster steps executed, drain included.
    scaling_events:
        Fleet resizes executed by the autoscaling policy (empty without one).
    fleet_trace:
        One :class:`~repro.metrics.records.FleetSample` per cluster step —
        the elasticity trace (fleet size, queue, per-step QoS).
    degraded_sessions:
        Sessions admitted while the fleet was browned out (served at
        degraded quality instead of being shed).
    brownout_steps:
        Cluster steps spent at a brownout level above 0.
    failed:
        Admitted requests lost to server crashes whose retry budget ran out
        (or whose retry was still pending when the run ended).  A session
        salvaged and re-dispatched appears in ``records_by_server`` under a
        ``<user>#r<attempt>`` key on its replacement server; the crashed
        server keeps the partial records under the original key.
    retried:
        Successful crash-recovery re-dispatches (session migrations).
    fault_events:
        Every injected fault and recovery, in order (empty without a fault
        injector).
    recomputed_frames:
        Frames crash retries had to re-transcode — the gap between the
        last checkpoint (or video start) and the crash point, summed over
        every dispatched retry.
    checkpoint_writes:
        Frame-level session checkpoints written (0 when checkpointing is
        off).
    checkpoint_energy_j:
        Modeled bandwidth/IO energy of those writes, already included in
        the per-server power traces.
    """

    records_by_server: tuple[Mapping[str, Sequence[FrameRecord]], ...]
    samples_by_server: tuple[tuple[PowerSample, ...], ...]
    arrivals: int
    admitted: int
    rejected: int
    abandoned: int
    queue_waits: tuple[int, ...]
    steps: int
    scaling_events: tuple[ScalingEvent, ...] = ()
    fleet_trace: tuple[FleetSample, ...] = ()
    dropped: int = 0
    degraded_sessions: int = 0
    brownout_steps: int = 0
    failed: int = 0
    retried: int = 0
    fault_events: tuple[FaultEvent, ...] = ()
    recomputed_frames: int = 0
    checkpoint_writes: int = 0
    checkpoint_energy_j: float = 0.0

    def summary(self) -> ClusterSummary:
        """Aggregate the run into fleet-level metrics."""
        return summarize_cluster(
            self.records_by_server,
            self.samples_by_server,
            arrivals=self.arrivals,
            admitted=self.admitted,
            rejected=self.rejected,
            abandoned=self.abandoned,
            queue_waits=self.queue_waits,
            steps=self.steps,
            scaling_events=self.scaling_events,
            fleet_trace=self.fleet_trace,
            dropped=self.dropped,
            degraded_sessions=self.degraded_sessions,
            brownout_steps=self.brownout_steps,
            failed=self.failed,
            retried=self.retried,
            fault_events=self.fault_events,
            recomputed_frames=self.recomputed_frames,
            checkpoint_writes=self.checkpoint_writes,
            checkpoint_energy_j=self.checkpoint_energy_j,
        )


class ClusterOrchestrator:
    """Runs a fleet of transcoding servers under arriving traffic.

    Parameters
    ----------
    num_servers:
        Servers in the initial fleet; each gets its own fresh
        :class:`~repro.platform.server.MulticoreServer`.
    workload:
        The arrival stream (see :class:`~repro.cluster.workload.WorkloadGenerator`).
    admission:
        Admission policy; defaults to :class:`~repro.cluster.admission.CapacityThreshold`.
    dispatcher:
        Load-balancing policy; defaults to :class:`~repro.cluster.dispatch.LeastLoaded`.
    controller_factory:
        Per-session controller builder ``(request, seed) -> Controller``;
        defaults to fresh MAMUT controllers under ``power_cap_w``.
    server_factory:
        Callable creating one server; also used for servers commissioned by
        the autoscaler mid-run.
    power_cap_w:
        Per-server power cap handed to the default controller factory; the
        fleet budget visible to admission policies is
        ``fleet_power_cap_w or dispatchable_servers * power_cap_w`` (the
        latter tracks the fleet as it is resized).
    seed:
        Seeds the per-session controller randomness (the workload carries
        its own seed).
    engine:
        ``"batch"`` (default) advances the fleet through the vectorized
        :class:`~repro.cluster.batch.BatchStepper`; ``"scalar"`` steps each
        server's sessions one by one.  Both engines produce identical
        results for the same seed; use ``"scalar"`` when sessions carry
        models whose *methods* (not just parameters) were overridden.
    autoscaler:
        Optional :class:`~repro.cluster.autoscale.AutoscalePolicy` consulted
        once per step (after admission, before stepping).  ``None`` keeps
        the fleet fixed at ``num_servers``.
    min_servers, max_servers:
        Band the autoscaler's target is clamped to; default ``1`` and
        ``4 * num_servers``.
    provision_warmup_steps:
        Steps a commissioned server idles (drawing idle power) before it
        joins the dispatchable fleet; 0 makes new servers dispatchable on
        the next step.
    brownout:
        Optional :class:`~repro.cluster.brownout.BrownoutController`
        consulted once per step (before admission).  While it reports a
        level above 0, the level is published on the scheduling snapshot
        and newly admitted sessions are served degraded (relaxed FPS
        target and/or the controller's ``degraded_factory``) instead of
        the fleet shedding load.
    faults:
        Optional :class:`~repro.cluster.faults.FaultInjector` (or a
        :class:`~repro.cluster.faults.FaultConfig` to build one) injecting
        seeded crashes, stragglers and warm-up failures during the arrival
        window (the drain tail runs fault-free, so admitted sessions always
        finish).  On a crash, in-flight sessions are salvaged: their
        controllers' Q-tables are snapshotted, the remaining playlist is
        re-enqueued with a bounded retry budget and exponential backoff,
        and a successful re-dispatch restores the snapshot on the
        replacement server — learning survives the migration.  Requests
        whose budget runs out land in the ``failed`` ledger.  Fault-driven
        membership changes flow through the same roster-refresh path as
        autoscaling resizes, so the scalar and batch engines stay
        seed-for-seed identical under any fault schedule.  A config with no
        fault mode enabled draws nothing and is bitwise identical to
        ``None``.

        The config's :class:`~repro.cluster.faults.FailureTopology` assigns
        every roster slot a ``(zone, rack)`` failure domain; correlated
        zone outages (drawn per-zone from ``zone_mtbf_steps`` or declared
        by a :class:`~repro.cluster.faults.KillSchedule`) crash every
        server of a zone at once.  With ``checkpoint_interval_frames`` set,
        sessions checkpoint periodically (a modeled bandwidth cost metered
        into fleet power) and crash retries resume the interrupted video
        from the last checkpoint instead of its start, bounding
        recomputation to the interval.
    """

    def __init__(
        self,
        num_servers: int,
        workload: WorkloadGenerator,
        admission: Optional[AdmissionPolicy] = None,
        dispatcher: Optional[DispatchPolicy] = None,
        controller_factory: Optional[ControllerFactory] = None,
        server_factory=MulticoreServer,
        power_cap_w: float = DEFAULT_POWER_CAP_W,
        fleet_power_cap_w: Optional[float] = None,
        seed: int = 0,
        engine: str = "batch",
        autoscaler: Optional[AutoscalePolicy] = None,
        min_servers: Optional[int] = None,
        max_servers: Optional[int] = None,
        provision_warmup_steps: int = 3,
        brownout: Optional[BrownoutController] = None,
        faults: Optional[FaultInjector | FaultConfig] = None,
    ) -> None:
        if num_servers < 1:
            raise ClusterError(f"num_servers must be >= 1, got {num_servers}")
        if engine not in ("batch", "scalar"):
            raise ClusterError(
                f"engine must be 'batch' or 'scalar', got {engine!r}"
            )
        if provision_warmup_steps < 0:
            raise ClusterError(
                f"provision_warmup_steps must be >= 0, got {provision_warmup_steps}"
            )
        self.workload = workload
        self.admission = admission if admission is not None else CapacityThreshold()
        self.dispatcher = dispatcher if dispatcher is not None else LeastLoaded()
        self.controller_factory = (
            controller_factory
            if controller_factory is not None
            else mamut_factory(power_cap_w=power_cap_w)
        )
        self.server_factory = server_factory
        self.power_cap_w = float(power_cap_w)
        # An explicit fleet budget stays fixed; the derived default tracks
        # the dispatchable fleet as the autoscaler resizes it.
        self._fixed_fleet_cap = fleet_power_cap_w is not None
        self.fleet_power_cap_w = (
            float(fleet_power_cap_w)
            if fleet_power_cap_w is not None
            else num_servers * self.power_cap_w
        )
        self.seed = int(seed)
        self.engine = engine
        self.autoscaler = autoscaler
        self.min_servers = int(min_servers) if min_servers is not None else 1
        self.max_servers = (
            int(max_servers) if max_servers is not None else 4 * num_servers
        )
        if self.min_servers < 1:
            raise ClusterError(f"min_servers must be >= 1, got {self.min_servers}")
        if self.max_servers < self.min_servers:
            raise ClusterError(
                f"max_servers ({self.max_servers}) must be >= min_servers "
                f"({self.min_servers})"
            )
        self.provision_warmup_steps = int(provision_warmup_steps)
        self._stepper: Optional[BatchStepper] = None
        self._slots = [
            _ServerSlot(index, Orchestrator(server=server_factory()), 0)
            for index in range(num_servers)
        ]
        self._dispatchable: list[_ServerSlot] = list(self._slots)
        self._live: list[_ServerSlot] = list(self._slots)
        self._scaling_events: list[ScalingEvent] = []
        self._fleet_trace: list[FleetSample] = []
        self._admitted = 0
        self._ran = False
        self._queue_class_counts: dict[str, int] = {}
        self.brownout = brownout
        self._brownout_level = 0
        self._brownout_steps = 0
        self._degraded = 0
        if isinstance(faults, FaultConfig):
            faults = FaultInjector(faults)
        # A no-op injector (no fault mode enabled) makes no draws, but going
        # through None here also skips the per-session recovery bookkeeping,
        # making the disabled path literally the pre-fault code.
        self.faults = faults if faults is not None and faults.enabled else None
        self._topology = (
            self.faults.topology if self.faults is not None else FailureTopology()
        )
        for slot in self._slots:
            slot.zone, slot.rack = self._topology.domain_of(slot.index)
        fault_cfg = self.faults.config if self.faults is not None else None
        self._ckpt_interval = (
            fault_cfg.checkpoint_interval_frames if fault_cfg is not None else None
        )
        self._ckpt_power = (
            fault_cfg.checkpoint_power_w if fault_cfg is not None else 0.0
        )
        self._recomputed_frames = 0
        self._checkpoint_writes = 0
        self._checkpoint_energy = 0.0
        self._fault_events: list[FaultEvent] = []
        self._failed_slots: list[_ServerSlot] = []
        self._retry_queue: list[_RetryTicket] = []
        self._session_meta: dict[int, _SessionMeta] = {}
        self._failed = 0
        self._retried = 0
        # Telemetry defaults to the shared all-null hub; run(telemetry=...)
        # rebinds before the first step.  Sessions being traced from dispatch
        # to their terminal span live in _trace_inflight.
        self._trace_inflight: list[list] = []
        self._bind_telemetry(Telemetry.disabled())

    @property
    def orchestrators(self) -> list[Orchestrator]:
        """Per-server orchestrators, every server ever commissioned."""
        return [slot.orchestrator for slot in self._slots]

    @property
    def num_servers(self) -> int:
        """Servers currently powered on (warming and draining included)."""
        return len(self._live)

    # -- telemetry ---------------------------------------------------------------------

    def _bind_telemetry(self, telemetry: Telemetry) -> None:
        """Attach a telemetry hub: tracer, instruments and the profiler.

        Everything bound here is observe-only; with the disabled hub every
        attribute is a shared null object and each hook below degenerates to
        a no-op method call.
        """
        self.telemetry = telemetry
        self._tracer = telemetry.tracer
        self._profiler = telemetry.profiler
        self._metrics = telemetry.metrics
        for slot in self._slots:
            slot.orchestrator.profiler = telemetry.profiler
        m = telemetry.metrics
        self._m_queue = m.gauge(
            "repro_queue_length", "Admission queue length at end of step"
        )
        self._m_live = m.gauge(
            "repro_live_servers", "Powered-on servers (warming/draining included)"
        )
        self._m_dispatchable = m.gauge(
            "repro_dispatchable_servers", "Servers accepting new sessions"
        )
        self._m_warming = m.gauge(
            "repro_warming_servers", "Commissioned servers still provisioning"
        )
        self._m_draining = m.gauge(
            "repro_draining_servers", "Servers finishing sessions before retire"
        )
        self._m_active = m.gauge(
            "repro_active_sessions", "Running sessions fleet-wide"
        )
        self._m_brownout = m.gauge(
            "repro_brownout_level", "Fleet-wide degradation level (0 = normal)"
        )
        self._m_power = m.gauge(
            "repro_fleet_power_w", "Summed package power of powered-on servers"
        )
        self._m_arrivals = m.counter(
            "repro_arrivals_total", "Requests generated by the workload"
        )
        self._m_admitted = m.counter(
            "repro_admitted_total", "Requests dispatched to a server"
        )
        self._m_rejected = m.counter(
            "repro_rejected_total", "Requests turned away by admission"
        )
        self._m_dropped = m.counter(
            "repro_dropped_total", "Queued requests dropped past patience"
        )
        self._m_degraded = m.counter(
            "repro_degraded_total", "Sessions admitted at degraded quality"
        )
        self._m_frames = m.counter(
            "repro_frames_total", "Frames transcoded fleet-wide"
        )
        self._m_violations = m.counter(
            "repro_qos_violations_total", "Frames below their session FPS target"
        )
        self._m_wait = m.histogram(
            "repro_queue_wait_steps",
            QUEUE_WAIT_EDGES,
            "Queue wait of admitted requests, in steps",
        )
        self._m_healthy = m.gauge(
            "repro_fleet_healthy_servers",
            "Dispatchable servers in full health",
        )
        self._m_crashes = m.counter(
            "repro_server_crashes_total", "Injected abrupt server failures"
        )
        self._m_stragglers = m.counter(
            "repro_stragglers_total", "Injected transient server throttles"
        )
        self._m_retried = m.counter(
            "repro_retried_total",
            "Sessions salvaged from a crash and re-dispatched",
        )
        self._m_failed = m.counter(
            "repro_failed_total",
            "Admitted requests lost to crashes past their retry budget",
        )
        self._m_domains = m.gauge(
            "repro_fleet_available_domains",
            "Failure zones with at least one dispatchable server",
        )
        self._m_zone_outages = m.counter(
            "repro_zone_outages_total",
            "Injected correlated zone outages (drawn or scheduled)",
        )
        self._m_recomputed = m.counter(
            "repro_recomputed_frames_total",
            "Frames re-transcoded by crash retries",
        )

    def _count_verdict(self, verdict: AdmissionVerdict) -> None:
        if self._metrics.enabled:
            self._metrics.counter(
                "repro_admission_verdicts_total",
                "Admission decisions by policy and verdict",
                labels={
                    "policy": self.admission.name,
                    "verdict": verdict.name.lower(),
                },
            ).inc()

    def _count_scaling(self, direction: str) -> None:
        if self._metrics.enabled:
            self._metrics.counter(
                "repro_scaling_events_total",
                "Fleet resizes by direction and policy",
                labels={"direction": direction, "policy": self.autoscaler.name},
            ).inc()

    def _trace_progress(self, step: int) -> None:
        """Emit video-completion and session-end spans after a step.

        Walks the in-flight sessions in dispatch order — identical on both
        engines, so scalar and batch runs produce the same span stream.
        """
        tracer = self._tracer
        keep = []
        for entry in self._trace_inflight:
            request_id, session, last_video, videos = entry
            current = session.video_index
            while last_video < current:
                last_video += 1
                tracer.emit(
                    "video_complete",
                    step,
                    request_id,
                    video=last_video,
                    videos=videos,
                )
            if session.active:
                entry[2] = last_video
                keep.append(entry)
            else:
                tracer.emit(
                    "served",
                    step,
                    request_id,
                    frames=len(session.records),
                    completed=True,
                )
        self._trace_inflight = keep

    # -- state -------------------------------------------------------------------------

    def _refresh_fleet_views(self) -> None:
        """Rebuild the dispatchable/live rosters after a membership change.

        Only fully healthy ACTIVE slots are dispatchable — degraded
        (throttled) and recovering servers take no new sessions, which is
        how "dispatch and admission skip unhealthy slots" falls out of the
        existing snapshot machinery for free.  A FAILED slot is off power
        entirely: it leaves the live roster (and therefore the batch
        stepper's fleet) exactly like a decommission, and rejoins like a
        commission once recovered — fault-driven membership changes reuse
        the resize path, which is what keeps both engines bitwise equal
        under any fault schedule.
        """
        self._dispatchable = [
            s for s in self._slots if s.state == _ACTIVE and s.health == _HEALTHY
        ]
        live = [
            s for s in self._slots if s.state != _RETIRED and s.health != _FAILED
        ]
        # The batch stepper's per-server constants are bound to the stepped
        # (live) fleet; state flips that keep the same servers powered on
        # (warming -> active, active -> draining) don't invalidate it.
        if live != self._live:
            if self._stepper is not None:
                # MAMUT observation windows live in the stepper's arrays;
                # park them on the controllers so the successor resumes from
                # identical state.
                self._stepper.flush_window_state()
            self._stepper = None
        self._live = live
        if not self._fixed_fleet_cap:
            self.fleet_power_cap_w = len(self._dispatchable) * self.power_cap_w

    def snapshot(self, step: int, queue_length: int) -> ClusterSnapshot:
        """Immutable fleet state as seen by admission/dispatch policies.

        Covers the *dispatchable* servers (warming and draining servers take
        no new sessions); ``server_index`` is the position within this
        snapshot, which is what dispatch policies return.  Warming and
        draining servers are summarised instead: their current draw feeds
        ``offline_power_w`` (so cap-enforcing policies see the whole
        fleet's power, not just the dispatchable slots) and the warming
        pipeline feeds ``warming_servers``/``warming_ready_in`` (so
        admission can queue toward capacity that is about to exist).  Built
        from the incrementally maintained per-server counters — O(servers),
        no session-list walks.
        """
        servers = tuple(
            ServerSnapshot(
                server_index=index,
                active_sessions=slot.active_count,
                last_power_w=slot.last_power_w,
                sessions_dispatched=slot.dispatched,
                idle_power_w=slot.idle_power_w,
                last_active_sessions=slot.last_active,
                zone=slot.zone,
                rack=slot.rack,
                crash_count=slot.crashes,
                uptime_steps=max(0, step - slot.up_since),
            )
            for index, slot in enumerate(self._dispatchable)
        )
        offline_power_w = 0.0
        warming = 0
        degraded = 0
        recovering = 0
        next_ready: Optional[int] = None
        for slot in self._live:
            if slot.state == _ACTIVE and slot.health == _HEALTHY:
                continue
            # Powered on but not dispatchable: warming, draining, throttled
            # or rebooting servers all draw real power against the budget.
            offline_power_w += slot.last_power_w
            if slot.health == _DEGRADED:
                degraded += 1
            elif slot.health == _RECOVERING:
                recovering += 1
            if slot.state == _WARMING:
                warming += 1
                ready_in = max(0, slot.ready_step - step)
                if next_ready is None or ready_in < next_ready:
                    next_ready = ready_in
        return ClusterSnapshot(
            step=step,
            servers=servers,
            queue_length=queue_length,
            power_cap_w=self.fleet_power_cap_w,
            offline_power_w=offline_power_w,
            warming_servers=warming,
            warming_ready_in=next_ready,
            brownout_level=self._brownout_level,
            queue_by_class=self._queue_class_view(queue_length),
            degraded_servers=degraded,
            failed_servers=len(self._failed_slots),
            recovering_servers=recovering,
        )

    def _queue_class_view(self, queue_length: int) -> dict[str, int]:
        """The per-class queue breakdown published on snapshots.

        Keyed off the *effective* queue length so a drain-tail snapshot
        (which reports an unservable leftover queue as 0) stays internally
        consistent.
        """
        if queue_length == 0:
            return {}
        return {cls: n for cls, n in self._queue_class_counts.items() if n > 0}

    def _derive_snapshot(
        self,
        step: int,
        queue_length: int,
        base: Optional[ClusterSnapshot],
    ) -> ClusterSnapshot:
        """The snapshot for the next decision, derived from the previous one.

        Between two decisions of the same step only the queue (its length
        and per-class breakdown) changes — dispatches update the base
        through :meth:`_bump_server` — so the previous snapshot is reused
        instead of being rebuilt from the fleet.
        """
        if base is None:
            return self.snapshot(step, queue_length)
        view = self._queue_class_view(queue_length)
        if base.queue_length != queue_length or base.queue_by_class != view:
            return dataclasses.replace(
                base, queue_length=queue_length, queue_by_class=view
            )
        return base

    @staticmethod
    def _bump_server(snapshot: ClusterSnapshot, index: int) -> ClusterSnapshot:
        """The snapshot after one dispatch to ``index`` (one more session)."""
        server = snapshot.servers[index]
        bumped = dataclasses.replace(
            server,
            active_sessions=server.active_sessions + 1,
            sessions_dispatched=server.sessions_dispatched + 1,
        )
        servers = (
            snapshot.servers[:index] + (bumped,) + snapshot.servers[index + 1 :]
        )
        return dataclasses.replace(snapshot, servers=servers)

    # -- execution ---------------------------------------------------------------------

    def run(
        self,
        duration: int,
        drain: bool = True,
        max_drain_steps: Optional[int] = None,
        telemetry=None,
    ) -> ClusterResult:
        """Serve ``duration`` steps of arriving traffic.

        With ``drain=True`` (the default) the fleet keeps stepping after the
        arrival window until every admitted playlist finishes, so sessions
        admitted late are never cut off mid-video.  Draining closes
        admission: requests still queued when the window ends are *not*
        served by capacity freed during the tail — they are reported as
        ``abandoned``.  ``max_drain_steps`` bounds the tail for overload
        experiments.  The autoscaler keeps running during the tail but may
        only shrink the fleet (there is nothing left to admit).

        ``telemetry`` accepts a :class:`~repro.telemetry.TelemetryConfig` or
        a built :class:`~repro.telemetry.Telemetry` hub.  Observation is
        strictly read-only — no RNG draws, no model inputs — so any
        combination of tracing, metrics and profiling leaves the seeded
        results bit-for-bit unchanged (enforced by the telemetry tests).
        The hub stays accessible as ``self.telemetry`` after the run, with
        exports flushed.

        A cluster orchestrator is single-use: the per-server orchestrators
        keep their sessions, so a second ``run()`` would silently mix the
        runs' records.  Build a fresh instance per run instead.
        """
        if duration < 0:
            raise ClusterError(f"duration must be >= 0, got {duration}")
        if self._ran:
            raise ClusterError(
                "this ClusterOrchestrator has already run; create a fresh "
                "instance per run"
            )
        if self.workload.consumed:
            raise ClusterError(
                "the workload generator has already produced arrivals, so its "
                "trace would not start from the seed; create a fresh "
                "WorkloadGenerator (the same seed reproduces the trace)"
            )
        self._ran = True
        self._bind_telemetry(resolve_telemetry(telemetry))
        tracer = self._tracer

        queue: deque[WorkloadEvent] = deque()
        arrivals = admitted = rejected = dropped = 0
        queue_waits: list[int] = []

        for step in range(duration):
            self._update_fleet(step)
            if self.faults is not None:
                self._inject_faults(step)
            # Age the queue before anything gets a claim on capacity:
            # requests past their patience deadline are dropped, never
            # admitted, and never counted in the queue waits.
            step_dropped = self._age_queue(queue, step)
            dropped += step_dropped
            snapshot: Optional[ClusterSnapshot] = None
            step_arrivals = 0

            if self.brownout is not None:
                snapshot = self.snapshot(step, len(queue))
                level = self.brownout.observe(snapshot)
                if level != self._brownout_level:
                    _LOG.debug(
                        "step %d: brownout level %d -> %d",
                        step,
                        self._brownout_level,
                        level,
                    )
                    self._brownout_level = level
                    snapshot = dataclasses.replace(snapshot, brownout_level=level)
                if level > 0:
                    self._brownout_steps += 1

            if self.faults is not None:
                # Crash survivors whose backoff has elapsed get first claim
                # on capacity — they were admitted before anyone queued.
                snapshot = self._process_retries(step, len(queue), snapshot)

            # Queued requests get first claim on freed capacity (FIFO: stop
            # at the first request the policy keeps queued).  The head is
            # excluded from the backlog its own decision sees (both the
            # aggregate length and its class's count); a QUEUE verdict puts
            # it back.
            while queue:
                head = queue[0]
                self._queue_class_counts[head.service_class] -= 1
                snapshot = self._derive_snapshot(step, len(queue) - 1, snapshot)
                verdict = self._resolve_verdict(
                    self.admission.decide(head, snapshot), snapshot
                )
                self._count_verdict(verdict)
                if verdict is AdmissionVerdict.QUEUE:
                    self._queue_class_counts[head.service_class] += 1
                    break
                event = queue.popleft()
                if verdict is AdmissionVerdict.ADMIT:
                    wait = step - event.arrival_step
                    index = self._dispatch(event, snapshot, wait_steps=wait)
                    snapshot = self._bump_server(snapshot, index)
                    admitted += 1
                    queue_waits.append(wait)
                    self._m_admitted.inc()
                    self._m_wait.observe(wait)
                else:
                    rejected += 1
                    self._m_rejected.inc()
                    tracer.emit(
                        "rejected",
                        step,
                        event.request.user_id,
                        policy=self.admission.name,
                        waited=step - event.arrival_step,
                    )

            for event in self.workload.arrivals(step):
                if self.faults is not None and "#r" in event.request.user_id:
                    # Retry re-dispatches are recorded under synthesized
                    # "<user>#r<attempt>" keys; a raw user id containing
                    # "#r" could collide with them (user "a#r2" vs retry 2
                    # of user "a"), silently merging two requests' ledgers.
                    # Reject at admission instead of risking the collision.
                    raise ClusterError(
                        f"user id {event.request.user_id!r} contains the "
                        "reserved retry-key marker '#r'; rename the user — "
                        "crash retries are recorded under '<user>#r<n>' keys"
                    )
                arrivals += 1
                step_arrivals += 1
                tracer.emit(
                    "arrival",
                    step,
                    event.request.user_id,
                    service_class=event.service_class,
                    frames=event.total_frames,
                    patience=event.patience_steps,
                )
                snapshot = self._derive_snapshot(step, len(queue), snapshot)
                verdict = self._resolve_verdict(
                    self.admission.decide(event, snapshot), snapshot
                )
                self._count_verdict(verdict)
                if verdict is AdmissionVerdict.ADMIT:
                    index = self._dispatch(event, snapshot, wait_steps=0)
                    snapshot = self._bump_server(snapshot, index)
                    admitted += 1
                    queue_waits.append(0)
                    self._m_admitted.inc()
                    self._m_wait.observe(0)
                elif verdict is AdmissionVerdict.QUEUE:
                    queue.append(event)
                    self._queue_class_counts[event.service_class] = (
                        self._queue_class_counts.get(event.service_class, 0) + 1
                    )
                    tracer.emit(
                        "queued",
                        step,
                        event.request.user_id,
                        queue_length=len(queue),
                    )
                else:
                    rejected += 1
                    self._m_rejected.inc()
                    tracer.emit(
                        "rejected",
                        step,
                        event.request.user_id,
                        policy=self.admission.name,
                        waited=0,
                    )

            if self.autoscaler is not None:
                self._autoscale(step, step_arrivals, len(queue), allow_grow=True)
            frames, violations = self._advance(step)
            self._record_fleet_sample(
                step,
                step_arrivals,
                len(queue),
                frames,
                violations,
                step_dropped,
                rejected_total=rejected,
                queue_waits=queue_waits,
            )
            if tracer.enabled:
                self._trace_progress(step)

        steps = duration
        # Admission closes with the arrival window, so brownout — which
        # only shapes the admission of *new* sessions — ends with it: the
        # drain-tail fleet trace records level 0, consistent with the
        # ``brownout_steps`` counter that stopped with the window.
        self._brownout_level = 0
        if drain:
            while any(slot.active_count > 0 for slot in self._live):
                if max_drain_steps is not None and steps - duration >= max_drain_steps:
                    break
                self._update_fleet(steps)
                if self.autoscaler is not None:
                    # Admission is closed: the leftover queue can never be
                    # served, so the autoscaler sees an effective queue of 0
                    # — a backlog nobody will admit must not block "scale
                    # down only when the queue is empty" rules and keep
                    # idle servers powered through the whole tail.
                    self._autoscale(
                        steps, 0, 0, allow_grow=False, draining_tail=True
                    )
                frames, violations = self._advance(steps)
                self._record_fleet_sample(
                    steps,
                    0,
                    len(queue),
                    frames,
                    violations,
                    0,
                    rejected_total=rejected,
                    queue_waits=queue_waits,
                )
                if tracer.enabled:
                    self._trace_progress(steps)
                steps += 1

        # Retry tickets still pending when the run ends can never be served
        # (admission closed with the arrival window): their requests join
        # the ``failed`` ledger, each closing its lifecycle with a terminal
        # ``failed`` span.
        for ticket in self._retry_queue:
            self._failed += 1
            self._m_failed.inc()
            tracer.emit(
                "failed",
                steps,
                ticket.user_id,
                attempts=ticket.attempt,
                pending=True,
            )
        self._retry_queue = []
        if tracer.enabled:
            # Close every open lifecycle: sessions cut off by the end of the
            # run (drain disabled or bounded) end in a ``served`` span with
            # ``completed: false``; requests still queued end ``abandoned``.
            # Exactly one terminal span per arrival either way.
            for request_id, session, _, _ in self._trace_inflight:
                tracer.emit(
                    "served",
                    steps,
                    request_id,
                    frames=len(session.records),
                    completed=False,
                )
            self._trace_inflight = []
            for event in queue:
                tracer.emit(
                    "abandoned",
                    steps,
                    event.request.user_id,
                    waited=steps - event.arrival_step,
                )
        self.telemetry.finalize()

        return ClusterResult(
            records_by_server=tuple(
                {
                    session.session_id: tuple(session.records)
                    for session in slot.orchestrator.sessions
                }
                for slot in self._slots
            ),
            samples_by_server=tuple(tuple(slot.samples) for slot in self._slots),
            arrivals=arrivals,
            admitted=admitted,
            rejected=rejected,
            abandoned=len(queue),
            queue_waits=tuple(queue_waits),
            steps=steps,
            scaling_events=tuple(self._scaling_events),
            fleet_trace=tuple(self._fleet_trace),
            dropped=dropped,
            degraded_sessions=self._degraded,
            brownout_steps=self._brownout_steps,
            failed=self._failed,
            retried=self._retried,
            fault_events=tuple(self._fault_events),
            recomputed_frames=self._recomputed_frames,
            checkpoint_writes=self._checkpoint_writes,
            checkpoint_energy_j=self._checkpoint_energy,
        )

    # -- internals ---------------------------------------------------------------------

    @staticmethod
    def _resolve_verdict(
        verdict: AdmissionVerdict, snapshot: ClusterSnapshot
    ) -> AdmissionVerdict:
        """The verdict the orchestrator executes.

        An ``ADMIT`` with zero dispatchable servers (the whole fleet warming
        or draining through a scaling transient) has nowhere to go: hold the
        request instead of crashing dispatch.  The shipped policies already
        answer ``QUEUE``/``REJECT`` in that state; this backstop covers
        :class:`~repro.cluster.admission.AlwaysAdmit` and custom policies.
        """
        if verdict is AdmissionVerdict.ADMIT and not snapshot.servers:
            return AdmissionVerdict.QUEUE
        return verdict

    def _age_queue(self, queue: deque[WorkloadEvent], step: int) -> int:
        """Drop queued requests past their patience deadline; returns the count."""
        if not queue:
            return 0
        kept = []
        expired = 0
        for event in queue:
            if event.expired(step):
                expired += 1
                self._queue_class_counts[event.service_class] -= 1
                self._tracer.emit(
                    "dropped",
                    step,
                    event.request.user_id,
                    waited=step - event.arrival_step,
                )
            else:
                kept.append(event)
        if expired:
            queue.clear()
            queue.extend(kept)
        return expired

    def _dispatch(
        self,
        event: WorkloadEvent,
        snapshot: ClusterSnapshot,
        wait_steps: int = 0,
        ticket: Optional[_RetryTicket] = None,
    ) -> int:
        """Route an admitted event using the snapshot its admission saw
        (cluster state cannot change between the two decisions); returns the
        chosen snapshot index.

        With a ``ticket`` this is a crash-recovery re-dispatch: the session
        is rebuilt from the ticket's remaining playlist under a
        ``<user>#r<attempt>`` record key (the crashed server keeps the
        partial records under the original key), resumes the interrupted
        video at the ticket's checkpointed frame, and the Q-table snapshot
        salvaged from the dying controller is restored into the replacement
        — the migrated session resumes with its learning intact.  The
        dispatcher's view of the snapshot is annotated with the zone the
        session was lost in (``retry_of_zone``) so failure-aware policies
        can spread retries across domains.  Trace spans keep the ORIGINAL
        user id throughout, so a request's lifecycle stays one stream no
        matter how often it migrates.
        """
        policy_view = snapshot
        if ticket is not None and ticket.from_zone is not None:
            policy_view = dataclasses.replace(
                snapshot, retry_of_zone=ticket.from_zone
            )
        index = self.dispatcher.select(event, policy_view)
        if not 0 <= index < len(snapshot.servers):
            raise ClusterError(
                f"{self.dispatcher.name} chose server {index} "
                f"of a {len(snapshot.servers)}-server dispatchable fleet"
            )
        request = event.request
        playlist = event.playlist
        trace_id = request.user_id
        attempt = 0
        if ticket is not None:
            trace_id = ticket.user_id
            attempt = ticket.attempt
            playlist = ticket.playlist
            request = dataclasses.replace(
                request,
                user_id=f"{ticket.user_id}#r{ticket.attempt}",
                sequence=ticket.playlist[0],
            )
        factory = self.controller_factory
        degraded = False
        if self._brownout_level > 0 and self.brownout is not None:
            # The brownout bargain: served, but degraded.  The relaxed
            # request is used for the session too, so QoS accounting holds
            # the fleet to the target the user actually got.
            request = self.brownout.degrade_request(request)
            if self.brownout.degraded_factory is not None:
                factory = self.brownout.degraded_factory
            self._degraded += 1
            self._m_degraded.inc()
            degraded = True
        controller = factory(request, self.seed + self._admitted)
        self._admitted += 1
        start_frame = 0
        if ticket is not None:
            restore_session_state(controller, ticket.session_state)
            start_frame = ticket.resume_frame
            # Recomputation is charged when the retry actually runs: the
            # frames between the resume point and the crash point are work
            # the fleet does twice.
            self._recomputed_frames += ticket.recomputed
            self._m_recomputed.inc(ticket.recomputed)
        session = TranscodingSession(
            request=request,
            controller=controller,
            playlist=playlist,
            start_frame_index=start_frame,
        )
        slot = self._dispatchable[index]
        slot.orchestrator.add_session(session)
        slot.dispatched += 1
        slot.active_count += 1
        if self.faults is not None:
            self._session_meta[id(session)] = _SessionMeta(
                event, trace_id, attempt
            )
        tracer = self._tracer
        if tracer.enabled:
            if ticket is not None:
                tracer.emit(
                    "dispatched",
                    snapshot.step,
                    trace_id,
                    server=slot.index,
                    wait_steps=wait_steps,
                    degraded=degraded,
                    brownout_level=self._brownout_level,
                    retry=attempt,
                    resume_frame=start_frame,
                )
            else:
                tracer.emit(
                    "dispatched",
                    snapshot.step,
                    trace_id,
                    server=slot.index,
                    wait_steps=wait_steps,
                    degraded=degraded,
                    brownout_level=self._brownout_level,
                )
            self._trace_inflight.append(
                [trace_id, session, 0, len(session.playlist)]
            )
        return index

    def _update_fleet(self, step: int) -> None:
        """Activate warmed-up servers; retire drained ones; heal the sick.

        Walks the live roster, not the append-only slot history, so the
        per-step cost tracks the current fleet rather than every server
        ever commissioned.  Failure recovery is folded in here: crashed
        servers whose seeded downtime has elapsed come back on power and
        reboot through the provisioning warm-up before rejoining the
        dispatchable roster, and straggler throttles expire.  All of it is
        pure bookkeeping off pre-drawn schedules — no RNG draws — so the
        scalar and batch engines see identical fleets.
        """
        changed = False
        for slot in list(self._failed_slots):
            if slot.recover_step is not None and step >= slot.recover_step:
                # Back on power: reboot through the warm-up like a freshly
                # commissioned server (idle draw, no new sessions) before
                # returning to full health below.
                slot.health = _RECOVERING
                slot.recover_step = None
                slot.recovery_ready_step = step + self.provision_warmup_steps
                self._failed_slots.remove(slot)
                changed = True
        for slot in self._live:
            if slot.health == _RECOVERING and step >= slot.recovery_ready_step:
                slot.health = _HEALTHY
                # A reboot resets the observed uptime; a throttle expiring
                # below does not (the machine never went down).
                slot.up_since = step
                self._fault_events.append(
                    FaultEvent(
                        step=step,
                        kind="recovered",
                        server=slot.index,
                        zone=slot.zone,
                        rack=slot.rack,
                    )
                )
                changed = True
            elif slot.health == _DEGRADED and step >= slot.throttle_until:
                slot.health = _HEALTHY
                self._fault_events.append(
                    FaultEvent(
                        step=step,
                        kind="recovered",
                        server=slot.index,
                        detail="throttle expired",
                    )
                )
                changed = True
            if slot.state == _WARMING and step >= slot.ready_step:
                if slot.warmup_fails:
                    # The provision never comes ready: the slot is written
                    # off as both retired and failed.  It held no sessions,
                    # so nothing is lost; the autoscaler simply sees the
                    # capacity it ordered fail to appear and re-orders.
                    slot.state = _RETIRED
                    slot.health = _FAILED
                    slot.decommissioned_step = step
                    self._fault_events.append(
                        FaultEvent(
                            step=step,
                            kind="warmup_failure",
                            server=slot.index,
                            detail="provision never became ready",
                        )
                    )
                    if self._tracer.enabled:
                        self._tracer.emit(
                            "fault",
                            step,
                            f"server-{slot.index}",
                            fault="warmup_failure",
                            server=slot.index,
                        )
                else:
                    slot.state = _ACTIVE
                    slot.up_since = step
                changed = True
            elif slot.state == _DRAINING and slot.active_count == 0:
                slot.state = _RETIRED
                slot.decommissioned_step = step
                changed = True
        if changed:
            self._refresh_fleet_views()

    def _inject_faults(self, step: int) -> None:
        """Draw this step's faults from the seeded injector and apply them.

        Correlated failures first: scheduled zone kills (no draws), then
        the per-zone MTBF draws on the injector's dedicated domain
        substream — a fixed number of draws per step regardless of fleet
        membership, so the zonal schedule survives autoscale resizes
        bitwise unchanged.  Then the per-server draws: walks the live
        roster in slot order making one Bernoulli draw per vulnerable
        server — the draw order depends only on fleet membership, never on
        which engine steps the fleet, so both engines see the identical
        fault schedule.  Servers a zone kill just took down are skipped by
        the per-server walk (they are no longer vulnerable).  Runs only
        during the arrival window: the drain tail is fault-free, which
        guarantees admitted sessions eventually finish instead of looping
        crash-and-retry forever.
        """
        faults = self.faults
        changed = False
        for entry in faults.scheduled_kills(step):
            changed |= self._kill_zone(
                step, entry.zone, entry.duration, scheduled=True
            )
        for zone, downtime in faults.zone_outages():
            changed |= self._kill_zone(step, zone, downtime, scheduled=False)
        for slot in list(self._live):
            if slot.state not in (_ACTIVE, _DRAINING):
                continue  # warming servers fail via warmup_fails instead
            if slot.health not in (_HEALTHY, _DEGRADED):
                continue
            if faults.crashes():
                self._crash_slot(slot, step)
                changed = True
            elif slot.health == _HEALTHY and faults.straggles():
                slot.health = _DEGRADED
                slot.throttle_until = step + faults.throttle_steps()
                self._fault_events.append(
                    FaultEvent(
                        step=step,
                        kind="straggler",
                        server=slot.index,
                        detail=f"throttled until step {slot.throttle_until}",
                    )
                )
                self._m_stragglers.inc()
                if self._tracer.enabled:
                    self._tracer.emit(
                        "fault",
                        step,
                        f"server-{slot.index}",
                        fault="straggler",
                        server=slot.index,
                        until=slot.throttle_until,
                    )
                changed = True
        if changed:
            self._refresh_fleet_views()

    def _kill_zone(
        self, step: int, zone: int, downtime: int, scheduled: bool
    ) -> bool:
        """Take a whole failure zone down at once; returns True on change.

        Every powered-on server of the zone that a per-server crash could
        hit (ACTIVE/DRAINING, HEALTHY/DEGRADED) crashes simultaneously,
        all sharing the outage's single downtime — zone power loss, not N
        independent failures.  Warming servers ride out the outage on the
        provisioning path (they hold no sessions).  The outage itself is
        recorded as one ``zone_outage`` fault event (``server=-1``)
        alongside the per-server crash events it causes.
        """
        victims = [
            s
            for s in self._live
            if s.zone == zone
            and s.state in (_ACTIVE, _DRAINING)
            and s.health in (_HEALTHY, _DEGRADED)
        ]
        cause = "scheduled kill" if scheduled else "drawn outage"
        self._fault_events.append(
            FaultEvent(
                step=step,
                kind="zone_outage",
                server=-1,
                sessions_lost=sum(s.active_count for s in victims),
                detail=(
                    f"{cause}: {len(victims)} servers down for "
                    f"{downtime} steps"
                ),
                zone=zone,
            )
        )
        self._m_zone_outages.inc()
        if self._tracer.enabled:
            self._tracer.emit(
                "fault",
                step,
                f"zone-{zone}",
                fault="zone_outage",
                zone=zone,
                servers=len(victims),
                scheduled=scheduled,
                downtime=downtime,
            )
        for slot in victims:
            self._crash_slot(slot, step, downtime=downtime)
        return bool(victims)

    def _crash_slot(
        self, slot: _ServerSlot, step: int, downtime: Optional[int] = None
    ) -> None:
        """Abruptly kill one server; salvage its in-flight sessions.

        Every session running on the slot is terminated in place (its
        partial records stay in the ledger under the original user id), its
        state is snapshotted (Q-tables plus checkpointed progress), and the
        unfinished rest of its playlist is enqueued as a retry ticket with
        exponential backoff — unless the session has exhausted its retry
        budget, in which case it lands in the ``failed`` ledger.  The slot
        itself goes off power until its seeded recovery step.  ``downtime``
        overrides the per-crash MTTR draw — zone outages pass the single
        downtime every victim of the outage shares.
        """
        faults = self.faults
        sessions = slot.orchestrator.active_sessions()
        slot.health = _FAILED
        if downtime is None:
            downtime = faults.downtime_steps()
        slot.recover_step = step + downtime
        slot.active_count = 0
        slot.crashes += 1
        self._failed_slots.append(slot)
        self._fault_events.append(
            FaultEvent(
                step=step,
                kind="crash",
                server=slot.index,
                sessions_lost=len(sessions),
                detail=f"down until step {slot.recover_step}",
                zone=slot.zone,
                rack=slot.rack,
            )
        )
        self._m_crashes.inc()
        tracer = self._tracer
        if tracer.enabled:
            tracer.emit(
                "fault",
                step,
                f"server-{slot.index}",
                fault="crash",
                server=slot.index,
                sessions_lost=len(sessions),
                zone=slot.zone,
            )
            if sessions:
                crashed = {id(s) for s in sessions}
                self._trace_inflight = [
                    entry
                    for entry in self._trace_inflight
                    if id(entry[1]) not in crashed
                ]
        for session in sessions:
            meta = self._session_meta.pop(id(session), None)
            if meta is None:  # session predates fault bookkeeping; treat as fresh
                meta = _SessionMeta(None, session.request.user_id, 0)
            state = snapshot_session(
                session, checkpoint_interval=self._ckpt_interval
            )
            remaining = tuple(session.playlist[session.video_index :])
            frames_done = len(session.records)
            session.terminate()
            attempt = meta.attempt + 1
            if tracer.enabled:
                tracer.emit(
                    "interrupted",
                    step,
                    meta.user_id,
                    server=slot.index,
                    frames=frames_done,
                    attempt=attempt,
                    zone=slot.zone,
                )
            if meta.event is None or attempt > faults.config.max_retries:
                self._failed += 1
                self._m_failed.inc()
                tracer.emit(
                    "failed",
                    step,
                    meta.user_id,
                    attempts=attempt,
                    frames=frames_done,
                )
            else:
                self._retry_queue.append(
                    _RetryTicket(
                        event=meta.event,
                        user_id=meta.user_id,
                        attempt=attempt,
                        ready_step=faults.retry_ready_step(step, attempt),
                        playlist=remaining,
                        session_state=state,
                        resume_frame=state["resume_frame"],
                        from_zone=slot.zone,
                        recomputed=state["recomputed_frames"],
                    )
                )

    def _process_retries(
        self,
        step: int,
        queue_length: int,
        snapshot: Optional[ClusterSnapshot],
    ):
        """Offer due retry tickets back to admission; returns the snapshot.

        Retries bypass the patience queue (the user already paid their
        wait); a QUEUE or REJECT verdict leaves the ticket pending for the
        next step rather than consuming a retry attempt — attempts are
        spent only on crashes.  Successful re-dispatches count in the
        ``retried`` ledger, not in ``admitted`` (the request was admitted
        once already).
        """
        if not self._retry_queue:
            return snapshot
        pending: list[_RetryTicket] = []
        for ticket in self._retry_queue:
            if step < ticket.ready_step:
                pending.append(ticket)
                continue
            snapshot = self._derive_snapshot(step, queue_length, snapshot)
            verdict = self._resolve_verdict(
                self.admission.decide(ticket.event, snapshot), snapshot
            )
            self._count_verdict(verdict)
            if verdict is AdmissionVerdict.ADMIT:
                index = self._dispatch(
                    ticket.event,
                    snapshot,
                    wait_steps=step - ticket.event.arrival_step,
                    ticket=ticket,
                )
                snapshot = self._bump_server(snapshot, index)
                self._retried += 1
                self._m_retried.inc()
            else:
                pending.append(ticket)
        self._retry_queue = pending
        return snapshot

    def _autoscale(
        self,
        step: int,
        arrivals: int,
        queue_length: int,
        allow_grow: bool,
        draining_tail: bool = False,
    ) -> None:
        """Consult the policy and execute its (clamped) fleet-size target."""
        warming = sum(1 for s in self._live if s.state == _WARMING)
        draining = sum(1 for s in self._live if s.state == _DRAINING)
        provisioned = len(self._dispatchable) + warming
        signals = AutoscaleSignals(
            step=step,
            snapshot=self.snapshot(step, queue_length),
            arrivals=arrivals,
            provisioned_servers=provisioned,
            warming_servers=warming,
            draining_servers=draining,
            min_servers=self.min_servers,
            max_servers=self.max_servers,
            draining_tail=draining_tail,
            brownout_level=self._brownout_level,
        )
        decision = self.autoscaler.decide(signals)
        target = min(max(decision.target_servers, self.min_servers), self.max_servers)
        if not allow_grow:
            target = min(target, provisioned)
        if target > provisioned:
            self._commission(target - provisioned, step, provisioned, decision.reason)
        elif target < provisioned:
            self._decommission(
                provisioned - target, step, provisioned, decision.reason
            )

    def _commission(
        self, count: int, step: int, provisioned: int, reason: str
    ) -> None:
        """Grow by ``count``: rescue draining servers, then power on fresh ones.

        A draining server is already warm, so cancelling its decommission
        restores capacity instantly and for free; only the remainder pays
        the provisioning warm-up.  The busiest draining servers are rescued
        first (ties to the oldest) — they hold the most capacity.
        """
        remaining = count
        draining = [s for s in self._live if s.state == _DRAINING]
        for slot in sorted(draining, key=lambda s: (-s.active_count, s.index)):
            if remaining == 0:
                break
            slot.state = _ACTIVE
            remaining -= 1
        for _ in range(remaining):
            slot = _ServerSlot(
                len(self._slots), Orchestrator(server=self.server_factory()), step
            )
            # The domain is a pure function of the slot index, so a server
            # commissioned mid-run lands in the same zone it would have had
            # in a bigger initial fleet — resizes never reshuffle domains.
            slot.zone, slot.rack = self._topology.domain_of(slot.index)
            slot.orchestrator.profiler = self._profiler
            slot.ready_step = step + self.provision_warmup_steps
            if self.provision_warmup_steps > 0:
                slot.state = _WARMING
                if self.faults is not None:
                    # Whether this provision ever comes ready is drawn at
                    # commission time (one draw per fresh server, in slot
                    # order) and manifests at ready_step — engine-agnostic
                    # by construction, like every other fault draw.
                    slot.warmup_fails = self.faults.provision_fails()
            self._slots.append(slot)
        self._refresh_fleet_views()
        _LOG.debug(
            "step %d: scale up +%d (%d -> %d): %s",
            step,
            count,
            provisioned,
            provisioned + count,
            reason,
        )
        self._count_scaling("up")
        self._scaling_events.append(
            ScalingEvent(
                step=step,
                direction="up",
                servers=count,
                fleet_before=provisioned,
                fleet_after=provisioned + count,
                policy=self.autoscaler.name,
                reason=reason,
            )
        )

    def _decommission(
        self, count: int, step: int, provisioned: int, reason: str
    ) -> None:
        """Shrink by ``count``: cancel warming servers first, then drain.

        Draining servers take no new sessions and retire once their last
        session finishes — active sessions are never killed.  Among the
        dispatchable servers the emptiest drain first (ties to the newest),
        so capacity is released as quickly as possible.
        """
        remaining = count
        for slot in reversed(self._live):
            if remaining == 0:
                break
            if slot.state == _WARMING:
                slot.state = _RETIRED
                slot.decommissioned_step = step
                remaining -= 1
        if remaining > 0:
            candidates = sorted(
                self._dispatchable, key=lambda s: (s.active_count, -s.index)
            )
            for slot in candidates[:remaining]:
                if slot.active_count == 0:
                    slot.state = _RETIRED
                    slot.decommissioned_step = step
                else:
                    slot.state = _DRAINING
        self._refresh_fleet_views()
        _LOG.debug(
            "step %d: scale down -%d (%d -> %d): %s",
            step,
            count,
            provisioned,
            provisioned - count,
            reason,
        )
        self._count_scaling("down")
        self._scaling_events.append(
            ScalingEvent(
                step=step,
                direction="down",
                servers=count,
                fleet_before=provisioned,
                fleet_after=provisioned - count,
                policy=self.autoscaler.name,
                reason=reason,
            )
        )

    def _advance(self, step: int) -> tuple[int, int]:
        """Step every powered-on server once; returns (frames, violations).

        Idle and warming servers sample their idle power.  The per-slot
        active counts are refreshed here — the once-per-step walk that keeps
        every scheduling decision O(servers).
        """
        live = self._live
        if not live:
            # Every server down at once (a fault schedule can do what
            # autoscaling never would); nothing to step or sample.
            return 0, 0
        stepped = [slot.orchestrator.active_sessions() for slot in live]
        if self.engine == "batch":
            if self._stepper is None:
                self._stepper = BatchStepper(
                    [slot.orchestrator for slot in live],
                    profiler=self._profiler,
                )
            step_samples = self._stepper.step(step)
        else:
            step_samples = []
            for slot in live:
                sample = slot.orchestrator.run_step(step)
                if sample is None:
                    sample = slot.orchestrator.idle_step(step)
                step_samples.append(sample)

        frames = violations = 0
        ckpt_interval = self._ckpt_interval
        for slot, sample, sessions in zip(live, step_samples, stepped):
            if ckpt_interval is not None:
                # Checkpoint metering runs here — shared verbatim by both
                # engines, after they produced the step's sample — so the
                # modeled bandwidth cost lands identically on either.  A
                # session checkpoints when the step completed a multiple of
                # the interval within its current video; video boundaries
                # are natural durable points and cost nothing (frame_index
                # resets to 0 there).
                writes = 0
                for session in sessions:
                    if (
                        session.active
                        and session.frame_index > 0
                        and session.frame_index % ckpt_interval == 0
                    ):
                        writes += 1
                if writes:
                    extra_w = writes * self._ckpt_power
                    sample = dataclasses.replace(
                        sample, power_w=sample.power_w + extra_w
                    )
                    self._checkpoint_writes += writes
                    self._checkpoint_energy += extra_w * sample.duration_s
            slot.samples.append(sample)
            slot.last_power_w = sample.power_w
            slot.last_active = sample.active_sessions
            still_active = 0
            for session in sessions:
                frames += 1
                if session.records[-1].is_violation:
                    violations += 1
                if session.active:
                    still_active += 1
            slot.active_count = still_active
        return frames, violations

    def _record_fleet_sample(
        self,
        step: int,
        arrivals: int,
        queue_length: int,
        frames: int,
        violations: int,
        dropped: int,
        rejected_total: int = 0,
        queue_waits: Sequence[int] = (),
    ) -> None:
        sample = FleetSample(
            step=step,
            live_servers=len(self._live),
            dispatchable_servers=len(self._dispatchable),
            warming_servers=sum(
                1 for s in self._live if s.state == _WARMING
            ),
            draining_servers=sum(
                1 for s in self._live if s.state == _DRAINING
            ),
            queue_length=queue_length,
            arrivals=arrivals,
            active_sessions=sum(slot.active_count for slot in self._live),
            frames=frames,
            qos_violations=violations,
            dropped=dropped,
            brownout_level=self._brownout_level,
            healthy_servers=len(self._dispatchable),
            degraded_servers=sum(
                1 for s in self._live if s.health == _DEGRADED
            ),
            failed_servers=len(self._failed_slots),
            recovering_servers=sum(
                1 for s in self._live if s.health == _RECOVERING
            ),
            available_domains=len({s.zone for s in self._dispatchable}),
        )
        self._fleet_trace.append(sample)
        self._profiler.count_step()
        if self._metrics.enabled:
            self._m_healthy.set(sample.healthy_servers)
            self._m_domains.set(sample.available_domains)
            self._m_queue.set(sample.queue_length)
            self._m_live.set(sample.live_servers)
            self._m_dispatchable.set(sample.dispatchable_servers)
            self._m_warming.set(sample.warming_servers)
            self._m_draining.set(sample.draining_servers)
            self._m_active.set(sample.active_sessions)
            self._m_brownout.set(sample.brownout_level)
            self._m_power.set(sum(slot.last_power_w for slot in self._live))
            self._m_arrivals.inc(arrivals)
            self._m_dropped.inc(dropped)
            self._m_frames.inc(frames)
            self._m_violations.inc(violations)
        # SLO evaluation precedes the recorder snapshot so each step's row
        # already reflects this step's repro_slo_* gauge values.
        self.telemetry.observe_slo(
            step,
            queue_waits=queue_waits,
            arrivals=arrivals,
            rejected_total=rejected_total,
            dropped=dropped,
            failed_total=self._failed,
            frames=frames,
            violations=violations,
        )
        self.telemetry.record_step(step)
