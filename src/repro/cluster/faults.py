"""Seeded fault injection: crashes, stragglers, and failed provisions.

Every server in the original cluster layer was immortal; a production fleet
is not.  This module supplies the *chaos* half of the failure-recovery
subsystem: a :class:`FaultInjector` owns its own random stream (independent
of the workload's and the per-session controllers') and answers, step by
step, which servers crash, which ones transiently straggle, and which fresh
provisions never come ready.  The *recovery* half — health states on the
server roster, session salvage and Q-table migration, retries with
exponential backoff, the ``failed``/``retried`` ledger — lives in
:class:`~repro.cluster.cluster.ClusterOrchestrator`.

Fault models
------------

* **Crash** — an abrupt whole-server failure.  Each healthy or degraded
  server fails independently with probability ``1 / crash_mtbf_steps`` per
  step.  A crashed server is down (drawing no power, serving nothing) for an
  exponentially distributed downtime around ``crash_mttr_steps``, then
  reboots through the provisioning warm-up before serving again.
* **Straggler** — a transient frequency/thermal throttle.  A throttled
  server keeps serving its in-flight sessions but is *removed from the
  dispatchable roster* for the throttle's duration, so the scheduler routes
  around it.  Modelling the throttle at the scheduling layer (like brownout
  degrades only at dispatch) keeps both stepping engines trivially
  bitwise-equivalent: no in-engine math changes.
* **Warm-up failure** — a provision that never comes ready.  Each fresh
  server commissioned by the autoscaler fails with probability
  ``warmup_failure_rate``; at the step it would have become dispatchable it
  is retired instead, and the autoscaler sees the lost capacity.

Determinism
-----------

All draws come from one ``numpy`` generator seeded by ``FaultConfig.seed``
and are made in cluster-orchestrator code shared verbatim by the scalar and
batch engines (per-slot in roster order, outside both engines' stepping
math), so the same config produces the identical fault schedule — and the
identical run — on either engine.  A config with no fault mode enabled
(:attr:`FaultConfig.enabled` false) makes no draws at all, so a no-op
config is bitwise identical to running without one.

Like the scheduling policies, an injector carries state (its RNG stream):
build a fresh instance per run for reproducible schedules.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.errors import ClusterError

__all__ = ["FaultConfig", "FaultInjector"]


@dataclasses.dataclass(frozen=True)
class FaultConfig:
    """Declarative description of one run's fault schedule.

    Attributes
    ----------
    crash_mtbf_steps:
        Per-server mean time between crashes, in cluster steps; each
        healthy server fails with probability ``1 / crash_mtbf_steps`` per
        step.  ``None`` disables crashes.
    crash_mttr_steps:
        Mean downtime of a crashed server before it starts rebooting
        (exponentially distributed, at least one step).  The reboot then
        pays the cluster's provisioning warm-up on top.
    straggler_mtbf_steps:
        Per-server mean time between transient throttles; ``None``
        disables stragglers.
    straggler_duration_steps:
        Mean length of a throttle episode (exponential, at least one step).
    warmup_failure_rate:
        Probability in ``[0, 1]`` that a freshly commissioned server never
        comes ready and is retired at the end of its warm-up.
    max_retries:
        Crash-retry budget per request: how many times a session lost to a
        crash is re-dispatched before the request lands in the ``failed``
        ledger.  0 turns recovery off (the naive load-shedding baseline).
    retry_backoff_steps:
        Base of the exponential backoff: the ``n``-th retry becomes
        eligible ``retry_backoff_steps * 2**(n-1)`` steps after the crash.
    seed:
        Seeds the injector's private random stream — independent of the
        workload and controller seeds, so the same fault schedule can be
        replayed against different traffic and vice versa.
    """

    crash_mtbf_steps: Optional[float] = None
    crash_mttr_steps: float = 10.0
    straggler_mtbf_steps: Optional[float] = None
    straggler_duration_steps: float = 5.0
    warmup_failure_rate: float = 0.0
    max_retries: int = 3
    retry_backoff_steps: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.crash_mtbf_steps is not None and self.crash_mtbf_steps <= 0:
            raise ClusterError(
                f"crash_mtbf_steps must be > 0, got {self.crash_mtbf_steps}"
            )
        if self.crash_mttr_steps <= 0:
            raise ClusterError(
                f"crash_mttr_steps must be > 0, got {self.crash_mttr_steps}"
            )
        if self.straggler_mtbf_steps is not None and self.straggler_mtbf_steps <= 0:
            raise ClusterError(
                f"straggler_mtbf_steps must be > 0, got {self.straggler_mtbf_steps}"
            )
        if self.straggler_duration_steps <= 0:
            raise ClusterError(
                "straggler_duration_steps must be > 0, "
                f"got {self.straggler_duration_steps}"
            )
        if not 0.0 <= self.warmup_failure_rate <= 1.0:
            raise ClusterError(
                f"warmup_failure_rate must be in [0, 1], got {self.warmup_failure_rate}"
            )
        if self.max_retries < 0:
            raise ClusterError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff_steps < 0:
            raise ClusterError(
                f"retry_backoff_steps must be >= 0, got {self.retry_backoff_steps}"
            )

    @property
    def enabled(self) -> bool:
        """True when any fault mode can actually fire."""
        return (
            self.crash_mtbf_steps is not None
            or self.straggler_mtbf_steps is not None
            or self.warmup_failure_rate > 0.0
        )


class FaultInjector:
    """Draws the fault schedule from its own seeded random stream.

    The orchestrator consults the injector per live server per step (crash,
    then straggler) and once per freshly commissioned server (warm-up
    failure).  Disabled modes make no draws, so enabling one mode never
    perturbs another mode's schedule, and a fully disabled config draws
    nothing at all.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        self._crash_p = (
            min(1.0, 1.0 / config.crash_mtbf_steps)
            if config.crash_mtbf_steps is not None
            else 0.0
        )
        self._straggle_p = (
            min(1.0, 1.0 / config.straggler_mtbf_steps)
            if config.straggler_mtbf_steps is not None
            else 0.0
        )

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def crashes(self) -> bool:
        """One per-server-per-step crash draw."""
        if self._crash_p == 0.0:
            return False
        return bool(self._rng.random() < self._crash_p)

    def straggles(self) -> bool:
        """One per-server-per-step throttle draw."""
        if self._straggle_p == 0.0:
            return False
        return bool(self._rng.random() < self._straggle_p)

    def downtime_steps(self) -> int:
        """Seeded downtime of one crash (>= 1 steps, mean ~MTTR)."""
        return 1 + int(self._rng.exponential(self.config.crash_mttr_steps))

    def throttle_steps(self) -> int:
        """Seeded duration of one straggler episode (>= 1 steps)."""
        return 1 + int(self._rng.exponential(self.config.straggler_duration_steps))

    def provision_fails(self) -> bool:
        """One draw per freshly commissioned server."""
        if self.config.warmup_failure_rate == 0.0:
            return False
        return bool(self._rng.random() < self.config.warmup_failure_rate)

    def retry_ready_step(self, step: int, attempt: int) -> int:
        """Step at which retry ``attempt`` (1-based) becomes eligible."""
        return step + self.config.retry_backoff_steps * (2 ** (attempt - 1))

    def describe(self) -> dict:
        """Compact config description for run output and benchmarks."""
        cfg = self.config
        out: dict = {"seed": cfg.seed}
        if cfg.crash_mtbf_steps is not None:
            out["crash_mtbf_steps"] = cfg.crash_mtbf_steps
            out["crash_mttr_steps"] = cfg.crash_mttr_steps
        if cfg.straggler_mtbf_steps is not None:
            out["straggler_mtbf_steps"] = cfg.straggler_mtbf_steps
            out["straggler_duration_steps"] = cfg.straggler_duration_steps
        if cfg.warmup_failure_rate > 0:
            out["warmup_failure_rate"] = cfg.warmup_failure_rate
        out["max_retries"] = cfg.max_retries
        out["retry_backoff_steps"] = cfg.retry_backoff_steps
        return out
