"""Seeded fault injection: crashes, stragglers, and failed provisions.

Every server in the original cluster layer was immortal; a production fleet
is not.  This module supplies the *chaos* half of the failure-recovery
subsystem: a :class:`FaultInjector` owns its own random stream (independent
of the workload's and the per-session controllers') and answers, step by
step, which servers crash, which ones transiently straggle, and which fresh
provisions never come ready.  The *recovery* half — health states on the
server roster, session salvage and Q-table migration, retries with
exponential backoff, the ``failed``/``retried`` ledger — lives in
:class:`~repro.cluster.cluster.ClusterOrchestrator`.

Fault models
------------

* **Crash** — an abrupt whole-server failure.  Each healthy or degraded
  server fails independently with probability ``1 / crash_mtbf_steps`` per
  step.  A crashed server is down (drawing no power, serving nothing) for an
  exponentially distributed downtime around ``crash_mttr_steps``, then
  reboots through the provisioning warm-up before serving again.
* **Straggler** — a transient frequency/thermal throttle.  A throttled
  server keeps serving its in-flight sessions but is *removed from the
  dispatchable roster* for the throttle's duration, so the scheduler routes
  around it.  Modelling the throttle at the scheduling layer (like brownout
  degrades only at dispatch) keeps both stepping engines trivially
  bitwise-equivalent: no in-engine math changes.
* **Warm-up failure** — a provision that never comes ready.  Each fresh
  server commissioned by the autoscaler fails with probability
  ``warmup_failure_rate``; at the step it would have become dispatchable it
  is retired instead, and the autoscaler sees the lost capacity.
* **Zone outage** — a *correlated* whole-domain failure.  Every roster slot
  belongs to a seeded ``(zone, rack)`` failure domain
  (:class:`FailureTopology`); a zone outage — drawn per zone per step with
  probability ``1 / zone_mtbf_steps``, or declared outright by a
  :class:`KillSchedule` — crashes every powered-on server in the zone at
  once, all sharing a single downtime draw.  This is the rack/zone power
  loss real fleets see and i.i.d. per-server draws cannot model.

Checkpointing
-------------

``checkpoint_interval_frames`` enables periodic frame-level session
checkpoints: every time a session's frame index crosses the interval, the
cluster meters a modeled checkpoint-bandwidth cost
(``checkpoint_power_w``) into that server's power draw, and a session later
lost to a crash resumes its interrupted video from the last checkpoint
rather than from the video start — bounding recomputation to at most
``interval - 1`` frames per retry.

Determinism
-----------

All draws come from generators seeded by ``FaultConfig.seed`` and are made
in cluster-orchestrator code shared verbatim by the scalar and batch
engines (per-slot in roster order, outside both engines' stepping math), so
the same config produces the identical fault schedule — and the identical
run — on either engine.  A config with no fault mode enabled
(:attr:`FaultConfig.enabled` false) makes no draws at all, so a no-op
config is bitwise identical to running without one.

Zone-outage draws live on their *own* substream
(``default_rng((seed, _DOMAIN_STREAM_KEY))``), one batch of draws per zone
per step regardless of fleet membership — so the zonal outage schedule is a
pure function of ``(seed, step)`` and survives mid-run autoscale resizes
bitwise unchanged, which per-server i.i.d. draws on the shared stream could
not guarantee.

Like the scheduling policies, an injector carries state (its RNG streams):
build a fresh instance per run for reproducible schedules.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional

import numpy as np

from repro.errors import ClusterError

__all__ = [
    "FailureTopology",
    "KillEntry",
    "KillSchedule",
    "FaultConfig",
    "FaultInjector",
]

# Key mixed into the fault seed for the zone-outage substream.  Any fixed
# constant works; keeping it distinct from plausible user seeds avoids
# accidental stream collisions with the per-server stream.
_DOMAIN_STREAM_KEY = 0x5A4F4E45  # "ZONE"


@dataclasses.dataclass(frozen=True)
class FailureTopology:
    """Seeded assignment of roster slots to ``(zone, rack)`` failure domains.

    The assignment is a pure function of the slot index: each consecutive
    block of ``zones`` slots covers every zone exactly once, in an order
    shuffled per block by ``seed``.  That keeps zones balanced at any fleet
    size *and* keeps every slot's domain stable under mid-run autoscale
    growth — slot 7's zone is the same whether the fleet started at 3
    servers or 12.

    Attributes
    ----------
    zones:
        Number of failure zones (power domains).  1 means the whole fleet
        shares one domain.
    racks_per_zone:
        Racks inside each zone; rack identity currently only labels fault
        events and snapshots (outages are drawn at zone granularity).
    seed:
        Seeds the per-block zone shuffle.  Defaults to 0 — pass the fault
        seed to correlate the layout with the rest of the fault schedule.
    """

    zones: int = 1
    racks_per_zone: int = 1
    seed: int = 0
    _block_cache: dict = dataclasses.field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.zones < 1:
            raise ClusterError(f"zones must be >= 1, got {self.zones}")
        if self.racks_per_zone < 1:
            raise ClusterError(
                f"racks_per_zone must be >= 1, got {self.racks_per_zone}"
            )

    def domain_of(self, slot_index: int) -> tuple[int, int]:
        """The ``(zone, rack)`` domain of roster slot ``slot_index``."""
        if slot_index < 0:
            raise ClusterError(f"slot_index must be >= 0, got {slot_index}")
        block, pos = divmod(slot_index, self.zones)
        perm = self._block_cache.get(block)
        if perm is None:
            perm = np.random.default_rng((self.seed, block)).permutation(self.zones)
            self._block_cache[block] = perm
        zone = int(perm[pos])
        rack = block % self.racks_per_zone
        return zone, rack

    def describe(self) -> dict:
        return {"zones": self.zones, "racks_per_zone": self.racks_per_zone}


@dataclasses.dataclass(frozen=True)
class KillEntry:
    """One declarative zone kill: take zone ``zone`` down at ``step``."""

    zone: int
    step: int
    duration: int

    def __post_init__(self) -> None:
        if self.zone < 0:
            raise ClusterError(f"kill zone must be >= 0, got {self.zone}")
        if self.step < 0:
            raise ClusterError(f"kill step must be >= 0, got {self.step}")
        if self.duration < 1:
            raise ClusterError(f"kill duration must be >= 1, got {self.duration}")


@dataclasses.dataclass(frozen=True)
class KillSchedule:
    """A declarative chaos experiment: kill zone Z at step T for D steps.

    Unlike MTBF-drawn outages, scheduled kills consume *no* random draws —
    the same schedule replays bit-for-bit against any fault seed, which is
    what makes pinned chaos scenarios (CI smoke, benchmark sweeps)
    comparable across configurations.
    """

    entries: tuple[KillEntry, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.entries)

    def at_step(self, step: int) -> tuple[KillEntry, ...]:
        """The kills declared for ``step``, in declaration order."""
        return tuple(entry for entry in self.entries if entry.step == step)

    @classmethod
    def parse(cls, specs: Iterable[str]) -> "KillSchedule":
        """Build a schedule from ``"ZONE:STEP:DURATION"`` spec strings."""
        entries = []
        for spec in specs:
            parts = spec.split(":")
            if len(parts) != 3:
                raise ClusterError(
                    f"kill spec must be ZONE:STEP:DURATION, got {spec!r}"
                )
            try:
                zone, step, duration = (int(part) for part in parts)
            except ValueError as exc:
                raise ClusterError(
                    f"kill spec must be three integers, got {spec!r}"
                ) from exc
            entries.append(KillEntry(zone=zone, step=step, duration=duration))
        return cls(entries=tuple(entries))

    def describe(self) -> list:
        return [[e.zone, e.step, e.duration] for e in self.entries]


@dataclasses.dataclass(frozen=True)
class FaultConfig:
    """Declarative description of one run's fault schedule.

    Attributes
    ----------
    crash_mtbf_steps:
        Per-server mean time between crashes, in cluster steps; each
        healthy server fails with probability ``1 / crash_mtbf_steps`` per
        step.  ``None`` disables crashes.
    crash_mttr_steps:
        Mean downtime of a crashed server before it starts rebooting
        (exponentially distributed, at least one step).  The reboot then
        pays the cluster's provisioning warm-up on top.
    straggler_mtbf_steps:
        Per-server mean time between transient throttles; ``None``
        disables stragglers.
    straggler_duration_steps:
        Mean length of a throttle episode (exponential, at least one step).
    warmup_failure_rate:
        Probability in ``[0, 1]`` that a freshly commissioned server never
        comes ready and is retired at the end of its warm-up.
    max_retries:
        Crash-retry budget per request: how many times a session lost to a
        crash is re-dispatched before the request lands in the ``failed``
        ledger.  0 turns recovery off (the naive load-shedding baseline).
    retry_backoff_steps:
        Base of the exponential backoff: the ``n``-th retry becomes
        eligible ``retry_backoff_steps * 2**(n-1)`` steps after the crash.
    seed:
        Seeds the injector's private random streams — independent of the
        workload and controller seeds, so the same fault schedule can be
        replayed against different traffic and vice versa.
    topology:
        The fleet's :class:`FailureTopology`.  ``None`` means one zone /
        one rack (every server in the same domain).
    zone_mtbf_steps:
        Mean time between *correlated* zone outages, per zone; each zone
        fails with probability ``1 / zone_mtbf_steps`` per step, taking
        down every powered-on server in it.  ``None`` disables drawn zone
        outages (a :class:`KillSchedule` can still declare them).
    zone_mttr_steps:
        Mean downtime of a drawn zone outage (exponential, at least one
        step, one draw shared by all victims of the outage).
    kill_schedule:
        Declarative zone kills for deterministic chaos experiments; adds
        no random draws.
    checkpoint_interval_frames:
        Frame-level checkpoint period.  Every ``interval`` frames a
        session's state is checkpointed (bandwidth cost metered into fleet
        power); a crashed session resumes from the last checkpoint instead
        of the video start.  ``None`` disables checkpointing — crashed
        sessions replay the interrupted video from frame 0.
    checkpoint_power_w:
        Modeled bandwidth/IO cost of writing one checkpoint, added to the
        owning server's package power for the step of the write.
    """

    crash_mtbf_steps: Optional[float] = None
    crash_mttr_steps: float = 10.0
    straggler_mtbf_steps: Optional[float] = None
    straggler_duration_steps: float = 5.0
    warmup_failure_rate: float = 0.0
    max_retries: int = 3
    retry_backoff_steps: int = 2
    seed: int = 0
    topology: Optional[FailureTopology] = None
    zone_mtbf_steps: Optional[float] = None
    zone_mttr_steps: float = 15.0
    kill_schedule: Optional[KillSchedule] = None
    checkpoint_interval_frames: Optional[int] = None
    checkpoint_power_w: float = 3.0

    def __post_init__(self) -> None:
        if self.crash_mtbf_steps is not None and self.crash_mtbf_steps <= 0:
            raise ClusterError(
                f"crash_mtbf_steps must be > 0, got {self.crash_mtbf_steps}"
            )
        if self.crash_mttr_steps <= 0:
            raise ClusterError(
                f"crash_mttr_steps must be > 0, got {self.crash_mttr_steps}"
            )
        if self.straggler_mtbf_steps is not None and self.straggler_mtbf_steps <= 0:
            raise ClusterError(
                f"straggler_mtbf_steps must be > 0, got {self.straggler_mtbf_steps}"
            )
        if self.straggler_duration_steps <= 0:
            raise ClusterError(
                "straggler_duration_steps must be > 0, "
                f"got {self.straggler_duration_steps}"
            )
        if not 0.0 <= self.warmup_failure_rate <= 1.0:
            raise ClusterError(
                f"warmup_failure_rate must be in [0, 1], got {self.warmup_failure_rate}"
            )
        if self.max_retries < 0:
            raise ClusterError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff_steps < 0:
            raise ClusterError(
                f"retry_backoff_steps must be >= 0, got {self.retry_backoff_steps}"
            )
        if self.zone_mtbf_steps is not None and self.zone_mtbf_steps <= 0:
            raise ClusterError(
                f"zone_mtbf_steps must be > 0, got {self.zone_mtbf_steps}"
            )
        if self.zone_mttr_steps <= 0:
            raise ClusterError(
                f"zone_mttr_steps must be > 0, got {self.zone_mttr_steps}"
            )
        if self.kill_schedule is not None and self.topology is not None:
            for entry in self.kill_schedule.entries:
                if entry.zone >= self.topology.zones:
                    raise ClusterError(
                        f"kill schedule names zone {entry.zone} but the "
                        f"topology has only {self.topology.zones} zones"
                    )
        if (
            self.checkpoint_interval_frames is not None
            and self.checkpoint_interval_frames < 1
        ):
            raise ClusterError(
                "checkpoint_interval_frames must be >= 1, "
                f"got {self.checkpoint_interval_frames}"
            )
        if self.checkpoint_power_w < 0:
            raise ClusterError(
                f"checkpoint_power_w must be >= 0, got {self.checkpoint_power_w}"
            )

    @property
    def enabled(self) -> bool:
        """True when any fault mode (or checkpointing) can actually fire."""
        return (
            self.crash_mtbf_steps is not None
            or self.straggler_mtbf_steps is not None
            or self.warmup_failure_rate > 0.0
            or self.zone_mtbf_steps is not None
            or (self.kill_schedule is not None and bool(self.kill_schedule))
            or self.checkpoint_interval_frames is not None
        )


class FaultInjector:
    """Draws the fault schedule from its own seeded random streams.

    The orchestrator consults the injector once per step for zone outages
    (scheduled kills first — no draws — then one MTBF draw per zone on the
    dedicated domain substream), then per live server per step (crash, then
    straggler) and once per freshly commissioned server (warm-up failure) on
    the per-server stream.  Disabled modes make no draws, so enabling one
    mode never perturbs another mode's schedule, and a fully disabled
    config draws nothing at all.
    """

    def __init__(self, config: FaultConfig) -> None:
        self.config = config
        self.topology = (
            config.topology
            if config.topology is not None
            else FailureTopology(seed=config.seed)
        )
        self._rng = np.random.default_rng(config.seed)
        self._domain_rng = np.random.default_rng((config.seed, _DOMAIN_STREAM_KEY))
        self._crash_p = (
            min(1.0, 1.0 / config.crash_mtbf_steps)
            if config.crash_mtbf_steps is not None
            else 0.0
        )
        self._straggle_p = (
            min(1.0, 1.0 / config.straggler_mtbf_steps)
            if config.straggler_mtbf_steps is not None
            else 0.0
        )
        self._zone_p = (
            min(1.0, 1.0 / config.zone_mtbf_steps)
            if config.zone_mtbf_steps is not None
            else 0.0
        )

    @property
    def enabled(self) -> bool:
        return self.config.enabled

    def crashes(self) -> bool:
        """One per-server-per-step crash draw."""
        if self._crash_p == 0.0:
            return False
        return bool(self._rng.random() < self._crash_p)

    def straggles(self) -> bool:
        """One per-server-per-step throttle draw."""
        if self._straggle_p == 0.0:
            return False
        return bool(self._rng.random() < self._straggle_p)

    def downtime_steps(self) -> int:
        """Seeded downtime of one crash (>= 1 steps, mean ~MTTR)."""
        return 1 + int(self._rng.exponential(self.config.crash_mttr_steps))

    def throttle_steps(self) -> int:
        """Seeded duration of one straggler episode (>= 1 steps)."""
        return 1 + int(self._rng.exponential(self.config.straggler_duration_steps))

    def provision_fails(self) -> bool:
        """One draw per freshly commissioned server."""
        if self.config.warmup_failure_rate == 0.0:
            return False
        return bool(self._rng.random() < self.config.warmup_failure_rate)

    def scheduled_kills(self, step: int) -> tuple[KillEntry, ...]:
        """Declarative zone kills firing at ``step`` (no random draws)."""
        if self.config.kill_schedule is None:
            return ()
        return self.config.kill_schedule.at_step(step)

    def zone_outages(self) -> list[tuple[int, int]]:
        """Per-step correlated-outage draws: ``[(zone, downtime), ...]``.

        One Bernoulli draw per zone per step on the dedicated domain
        substream (plus one downtime draw per hit), *independent of fleet
        membership* — the zonal schedule is a pure function of the fault
        seed and the step, so autoscale resizes cannot perturb it.
        """
        if self._zone_p == 0.0:
            return []
        outages = []
        for zone in range(self.topology.zones):
            if self._domain_rng.random() < self._zone_p:
                downtime = 1 + int(
                    self._domain_rng.exponential(self.config.zone_mttr_steps)
                )
                outages.append((zone, downtime))
        return outages

    def retry_ready_step(self, step: int, attempt: int) -> int:
        """Step at which retry ``attempt`` (1-based) becomes eligible."""
        return step + self.config.retry_backoff_steps * (2 ** (attempt - 1))

    def describe(self) -> dict:
        """Compact config description for run output and benchmarks."""
        cfg = self.config
        out: dict = {"seed": cfg.seed}
        if cfg.crash_mtbf_steps is not None:
            out["crash_mtbf_steps"] = cfg.crash_mtbf_steps
            out["crash_mttr_steps"] = cfg.crash_mttr_steps
        if cfg.straggler_mtbf_steps is not None:
            out["straggler_mtbf_steps"] = cfg.straggler_mtbf_steps
            out["straggler_duration_steps"] = cfg.straggler_duration_steps
        if cfg.warmup_failure_rate > 0:
            out["warmup_failure_rate"] = cfg.warmup_failure_rate
        if self.topology.zones > 1 or cfg.zone_mtbf_steps is not None:
            out.update(self.topology.describe())
        if cfg.zone_mtbf_steps is not None:
            out["zone_mtbf_steps"] = cfg.zone_mtbf_steps
            out["zone_mttr_steps"] = cfg.zone_mttr_steps
        if cfg.kill_schedule is not None and cfg.kill_schedule:
            out["kill_schedule"] = cfg.kill_schedule.describe()
        if cfg.checkpoint_interval_frames is not None:
            out["checkpoint_interval_frames"] = cfg.checkpoint_interval_frames
            out["checkpoint_power_w"] = cfg.checkpoint_power_w
        out["max_retries"] = cfg.max_retries
        out["retry_backoff_steps"] = cfg.retry_backoff_steps
        return out
