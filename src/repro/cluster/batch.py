"""Vectorized batch stepping engine for fleets of transcoding servers.

The scalar engine advances a fleet one session at a time: per frame it walks
``Orchestrator.run_step`` → ``TranscodingSession.prepare``/``execute`` →
scalar calls into the WPP, complexity, rate-distortion and power models.
That per-session Python work caps cluster experiments at tens of servers.

The :class:`BatchStepper` replaces the per-session math with one fused NumPy
evaluation per cluster step:

1. **Gather** — every active session's next (QP, threads, frequency)
   decision plus per-frame content descriptors are packed into contiguous
   struct-of-arrays buffers ordered server-major.  Sessions running a stock
   :class:`~repro.core.mamut.MamutController` are advanced by the vectorized
   MAMUT driver (:class:`_MamutDriver` below): their observation windows
   live in fleet-wide struct-of-arrays running sums, and on activation steps
   the window averaging, :meth:`~repro.core.states.StateSpace.discretize_batch`
   and :meth:`~repro.core.rewards.RewardFunction.total_batch` (exact mode)
   run across every activating session in one shot before the grouped
   per-agent Q updates and action selections are applied session by session
   (each session's exploration RNG draws stay in its own scalar order).
   Every other controller is asked per session via
   :meth:`~repro.manager.session.TranscodingSession.peek_decision`.
2. **Evaluate** — WPP speedup/efficiency, server thread allocation and
   contention, package power, decode/encode cycles and times, PSNR and
   bitrate are computed for the whole fleet in a handful of array
   expressions that mirror the scalar formulas operation for operation.
3. **Scatter** — per-session results are written back through
   :meth:`~repro.manager.session.TranscodingSession.commit_step_result`
   (or :meth:`~repro.manager.session.TranscodingSession.commit_driven_step`
   for driver-managed sessions; both produce the same
   ``FrameRecord``/``Observation`` objects the scalar path creates) and one
   ``PowerSample`` per server is emitted.

**Equivalence guarantee.**  For the same ``(workload seed, policies, cluster
seed)`` the batch engine produces *bitwise identical* results to the scalar
engine — same frame records, same power samples, same admission ledger, same
``ClusterSummary``.  This holds because the shared models evaluate the same
IEEE-754 operations in the same order (transcendental factors go through
per-QP lookup tables shared between the scalar and batch paths), and float
reductions (per-server power and duration sums) are applied in the scalar
engine's accumulation order.  Fault injection preserves the guarantee:
fault draws, session salvage and retries all happen in orchestrator code
outside the stepper, and a crash or recovery changes the live roster
exactly like an autoscaling resize — the stepper is flushed
(``flush_window_state``) and rebuilt over the surviving fleet.  Checkpointed
resumes need no special handling either: a replacement session constructed
mid-video (``TranscodingSession(start_frame_index=...)``) joins a rebuilt
stepper like any other, because lanes read ``session.frame_index`` fresh at
every gather and ``step_counter`` initialises from ``session.step``.  The
equivalence is enforced by ``tests/test_cluster_batch.py``,
``tests/test_cluster_faults.py`` and ``tests/test_cluster_domains.py``.

Two deliberate deviations from the scalar path, neither observable in the
results: the in-memory DVFS driver mirror (``MulticoreServer``'s
``_apply_to_driver`` bookkeeping) is not maintained, and intermediate
``SessionDemand``/``ServerAllocation``/``TranscodeResult`` objects are never
materialised.  The batch engine also assumes the stock analytic models:
custom *parameters* are honoured (they are gathered per session), but
subclasses that override model *methods* need the scalar engine.  The same
rule applies to controllers: exactly ``MamutController`` (not subclasses) is
driven through the vectorized activation path, everything else falls back to
the per-session ``peek_decision`` protocol.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.constants import TARGET_FPS
from repro.core.mamut import MamutController
from repro.core.observation import Observation
from repro.core.states import SystemState
from repro.errors import EncodingError
from repro.hevc.params import QP_MAX, QP_MIN
from repro.manager.orchestrator import Orchestrator
from repro.manager.session import TranscodingSession
from repro.metrics.records import FrameRecord, PowerSample
from repro.platform.dvfs import DvfsPolicy
from repro.telemetry.profiler import NULL_PROFILER

__all__ = ["BatchStepper"]


class _ServerStatic:
    """Per-server constants gathered once at stepper construction."""

    __slots__ = (
        "cores",
        "hw_threads",
        "smt_efficiency",
        "base_power_w",
        "core_leakage_w",
        "core_dynamic_w",
        "core_dynamic_smt2_w",
        "power_model",
        "min_frequency_ghz",
        "idle_core_power_min_w",
        "idle_core_power_cache",
        "idle_total_power_w",
        "vt_group",
    )

    def __init__(self, orchestrator: Orchestrator, vt_group: int) -> None:
        server = orchestrator.server
        topo = server.topology
        params = server.power_model.params
        self.cores = topo.physical_cores
        self.hw_threads = topo.hardware_threads
        self.smt_efficiency = topo.smt_efficiency
        self.base_power_w = params.base_power_w
        self.core_leakage_w = params.core_leakage_w
        self.core_dynamic_w = params.core_dynamic_w
        # Matches the scalar ``core_dynamic_w * (1.0 + bonus * (2 - 1))``.
        self.core_dynamic_smt2_w = params.core_dynamic_w * (
            1.0 + params.smt_activity_bonus
        )
        self.power_model = server.power_model
        self.min_frequency_ghz = server.dvfs.min_frequency_ghz
        self.idle_core_power_min_w = server.power_model.idle_core_power(
            self.min_frequency_ghz
        )
        # Chip-wide idle power per requested frequency; the DVFS action sets
        # are tiny, so this saturates after a handful of entries.
        self.idle_core_power_cache: dict[float, float] = {}
        # allocate([]) is side-effect free and deterministic, so this equals
        # what Orchestrator.idle_step would compute on every idle step.
        self.idle_total_power_w = server.allocate([]).total_power_w
        self.vt_group = vt_group


class _SessionLane:
    """Per-session constants plus the current video's content columns."""

    __slots__ = (
        "session",
        "video_index",
        "session_id",
        "target_fps",
        "step_counter",
        "video_name",
        "resolution_class",
        # session-static model constants
        "comp_key",
        "rd_key",
        "base_cycles_per_pixel",
        "complexity_weight",
        "one_minus_complexity_weight",
        "motion_weight",
        "intra_cost_factor",
        "decode_base",
        "psnr_at_ref_qp",
        "psnr_slope",
        "psnr_ref_qp",
        "psnr_complexity_penalty",
        "psnr_motion_penalty",
        "psnr_floor",
        "psnr_ceiling",
        "bpp_at_ref_qp",
        "intra_rate_factor",
        "sync_overhead",
        "delivery_fps",
        # video-static values (refreshed at playlist transitions)
        "pixels",
        "rows",
        "cols",
        "serial_units",
        "effort_factor",
        "quality_gain_db",
        "compression_gain",
        "complexity_col",
        "motion_col",
        "scene_col",
    )

    def __init__(self, session: TranscodingSession) -> None:
        self.session = session
        self.session_id = session.session_id
        self.target_fps = session.request.target_fps
        self.step_counter = session.step

        encoder = session.transcoder.encoder
        comp = encoder.complexity_model.params
        rd = encoder.rd_model.params
        wpp = encoder.wpp_model.params
        decode = session.transcoder.decoder.complexity_model.params

        self.comp_key = comp
        self.rd_key = rd
        self.base_cycles_per_pixel = comp.base_cycles_per_pixel
        self.complexity_weight = comp.complexity_weight
        self.one_minus_complexity_weight = 1.0 - comp.complexity_weight
        self.motion_weight = comp.motion_weight
        self.intra_cost_factor = comp.intra_cost_factor
        # First product of the scalar decode-cycles chain.
        self.decode_base = decode.decode_fraction * decode.base_cycles_per_pixel
        self.psnr_at_ref_qp = rd.psnr_at_ref_qp
        self.psnr_slope = rd.psnr_slope_db_per_qp
        self.psnr_ref_qp = rd.ref_qp
        self.psnr_complexity_penalty = rd.psnr_complexity_penalty_db
        self.psnr_motion_penalty = rd.psnr_motion_penalty_db
        self.psnr_floor = rd.psnr_floor_db
        self.psnr_ceiling = rd.psnr_ceiling_db
        self.bpp_at_ref_qp = rd.bpp_at_ref_qp
        self.intra_rate_factor = rd.intra_rate_factor
        self.sync_overhead = wpp.sync_overhead_per_thread
        self.delivery_fps = encoder.delivery_fps

        self.refresh_video()

    def refresh_video(self) -> None:
        """Re-gather the values that depend on the current playlist video."""
        session = self.session
        video = session.current_video
        encoder = session.transcoder.encoder
        self.video_index = session.video_index
        self.video_name = video.name
        self.resolution_class = video.resolution_class
        self.pixels = video.pixels_per_frame
        self.rows = encoder.wpp_model.ctu_rows(video.height)
        self.cols = encoder.wpp_model.ctu_cols(video.width)
        self.serial_units = self.rows * self.cols
        preset = session.preset_for(video)
        self.effort_factor = preset.effort_factor
        self.quality_gain_db = preset.quality_gain_db
        self.compression_gain = preset.compression_gain
        frames = video.frames
        self.complexity_col = [f.complexity for f in frames]
        self.motion_col = [f.motion for f in frames]
        self.scene_col = [f.is_scene_change for f in frames]


#: Names of the video-static per-lane float columns, in array order.
_VIDEO_COLUMNS = (
    "pixels",
    "rows",
    "cols",
    "serial_units",
    "effort_factor",
    "quality_gain_db",
    "compression_gain",
)

#: Names of the session-static per-lane float columns, in array order.
_STATIC_COLUMNS = (
    "base_cycles_per_pixel",
    "complexity_weight",
    "one_minus_complexity_weight",
    "motion_weight",
    "intra_cost_factor",
    "decode_base",
    "psnr_at_ref_qp",
    "psnr_slope",
    "psnr_ref_qp",
    "psnr_complexity_penalty",
    "psnr_motion_penalty",
    "psnr_floor",
    "psnr_ceiling",
    "bpp_at_ref_qp",
    "intra_rate_factor",
    "sync_overhead",
    "delivery_fps",
)

#: Memoised per-schedule activation tables keyed by the schedule's slot
#: triples: (hyper_period, agent names, frame % hyper -> local agent id | -1).
_SCHEDULE_PATTERNS: dict[tuple, tuple[int, tuple[str, ...], np.ndarray]] = {}


def _schedule_pattern(schedule) -> tuple[int, tuple[str, ...], np.ndarray]:
    key = tuple((slot.name, slot.period, slot.offset) for slot in schedule.slots)
    cached = _SCHEDULE_PATTERNS.get(key)
    if cached is None:
        names = schedule.agent_names
        local = {name: i for i, name in enumerate(names)}
        pattern = np.array(
            [
                local.get(schedule.agent_at(frame), -1)
                for frame in range(schedule.hyper_period)
            ],
            dtype=np.int64,
        )
        cached = (schedule.hyper_period, names, pattern)
        _SCHEDULE_PATTERNS[key] = cached
    return cached


class _MamutDriver:
    """Fleet-wide vectorized activation engine for stock MAMUT controllers.

    The scalar engine walks every MAMUT session's whole learning path in
    Python each frame (window append, schedule lookup, averaging,
    discretisation, reward, Eq. 3, Q update).  The driver keeps the
    per-session observation windows as struct-of-arrays running sums and, on
    activation steps, performs the averaging,
    :meth:`~repro.core.states.StateSpace.discretize_batch` and
    :meth:`~repro.core.rewards.RewardFunction.total_batch` (exact mode, so
    rewards are bitwise those of the scalar path) across *all* activating
    sessions at once — grouped by identical (state space, reward config)
    parameters so heterogeneous fleets still vectorize.  The remaining
    per-session work — the grouped-per-agent Q updates and the action
    selection, whose exploration randomness must consume each session's RNG
    in its own scalar order — goes through
    :meth:`~repro.core.mamut.MamutController.apply_external_activation`.

    The controllers' canonical window state (running sums + count) is
    mirrored into the arrays here; :meth:`flush` writes it back so the state
    survives roster rebuilds and stepper teardowns (fleet resizes rebuild
    the whole stepper).
    """

    __slots__ = (
        "positions",
        "controllers",
        "steps",
        "win_fps",
        "win_psnr",
        "win_bitrate",
        "win_power",
        "win_count",
        "pend_fps",
        "pend_psnr",
        "pend_bitrate",
        "pend_power",
        "pend_valid",
        "qp",
        "threads",
        "freq",
        "agent_names",
        "schedule_groups",
        "vgid",
        "vector_members",
        "state_interns",
    )

    def __init__(self, lanes: list[_SessionLane], positions: list[int]) -> None:
        self.positions = np.array(positions, dtype=np.int64)
        self.controllers: list[MamutController] = [
            lanes[i].session.controller for i in positions
        ]
        count = len(positions)
        self.steps = np.array(
            [lanes[i].step_counter for i in positions], dtype=np.int64
        )

        windows = [ctl.observation_window() for ctl in self.controllers]
        self.win_fps = np.array([w[0] for w in windows])
        self.win_psnr = np.array([w[1] for w in windows])
        self.win_bitrate = np.array([w[2] for w in windows])
        self.win_power = np.array([w[3] for w in windows])
        self.win_count = np.array([w[4] for w in windows], dtype=np.int64)

        # The scalar engine folds a step's observation into the window at the
        # *next* step's decide(); the driver mirrors that timing by stashing
        # each step's results here and folding them at the next advance().
        # Between steps a session's not-yet-folded observation is exactly
        # session.last_observation (never yet in the controller's window), so
        # a fresh driver — after a roster rebuild, a stepper teardown, or a
        # stretch on the scalar engine — re-derives the stash from it.
        last = [
            lanes[i].session.last_observation for i in positions
        ]
        self.pend_valid = np.array(
            [obs is not None for obs in last], dtype=bool
        )
        self.pend_fps = np.array(
            [obs.fps if obs is not None else 0.0 for obs in last]
        )
        self.pend_psnr = np.array(
            [obs.psnr_db if obs is not None else 0.0 for obs in last]
        )
        self.pend_bitrate = np.array(
            [obs.bitrate_mbps if obs is not None else 0.0 for obs in last]
        )
        self.pend_power = np.array(
            [obs.power_w if obs is not None else 0.0 for obs in last]
        )

        self.qp = np.empty(count, dtype=np.int64)
        self.threads = np.empty(count, dtype=np.int64)
        self.freq = np.empty(count)
        for k, ctl in enumerate(self.controllers):
            decision = ctl.current_decision()
            self.qp[k] = decision.qp
            self.threads[k] = decision.threads
            self.freq[k] = decision.frequency_ghz

        # Activation tables: lanes sharing a schedule are looked up together,
        # with local agent ids remapped onto one fleet-wide name registry.
        self.agent_names: list[str] = []
        name_gid: dict[str, int] = {}
        by_schedule: dict[tuple, list] = {}
        for k, ctl in enumerate(self.controllers):
            key = tuple(
                (slot.name, slot.period, slot.offset)
                for slot in ctl.schedule.slots
            )
            entry = by_schedule.get(key)
            if entry is None:
                hyper, names, pattern = _schedule_pattern(ctl.schedule)
                gids = []
                for name in names:
                    gid = name_gid.get(name)
                    if gid is None:
                        gid = len(self.agent_names)
                        name_gid[name] = gid
                        self.agent_names.append(name)
                    gids.append(gid)
                global_pattern = np.full_like(pattern, -1)
                scheduled = pattern >= 0
                global_pattern[scheduled] = np.array(gids, dtype=np.int64)[
                    pattern[scheduled]
                ]
                entry = [hyper, global_pattern, []]
                by_schedule[key] = entry
            entry[2].append(k)
        self.schedule_groups = [
            (np.array(members, dtype=np.int64), hyper, global_pattern)
            for hyper, global_pattern, members in by_schedule.values()
        ]

        # Vector groups: lanes whose state space and reward parameters match
        # share one discretize_batch / total_batch call per activation step.
        self.vgid = np.empty(count, dtype=np.int64)
        members_by_key: dict[tuple, int] = {}
        self.vector_members: list[tuple] = []
        for k, ctl in enumerate(self.controllers):
            space = ctl.state_space
            key = (
                (
                    space.fps_target,
                    space.fps_edges,
                    space.psnr_edges,
                    space.bitrate_edges_mbps,
                    space.power_cap_w,
                ),
                ctl.reward_function.config,
            )
            gid = members_by_key.get(key)
            if gid is None:
                gid = len(self.vector_members)
                members_by_key[key] = gid
                self.vector_members.append((space, ctl.reward_function))
            self.vgid[k] = gid
        # Interned SystemState per dense index, one pool per vector group:
        # activations hitting a previously seen state reuse the object
        # instead of re-constructing the frozen dataclass.
        self.state_interns = [
            [None] * space.size for space, _ in self.vector_members
        ]

    # -- per-step operation ------------------------------------------------------------

    def advance(self) -> None:
        """Run this step's activations (fleet-vectorized) before the gather."""
        # Fold the previous step's observations into the windows — the
        # array mirror of the scalar decide()'s append-then-activate order.
        valid = self.pend_valid
        if valid.all():
            self.win_fps += self.pend_fps
            self.win_psnr += self.pend_psnr
            self.win_bitrate += self.pend_bitrate
            self.win_power += self.pend_power
            self.win_count += 1
            self.pend_valid = np.zeros_like(valid)
        elif valid.any():
            self.win_fps[valid] += self.pend_fps[valid]
            self.win_psnr[valid] += self.pend_psnr[valid]
            self.win_bitrate[valid] += self.pend_bitrate[valid]
            self.win_power[valid] += self.pend_power[valid]
            self.win_count[valid] += 1
            self.pend_valid = np.zeros_like(valid)

        agent_id = np.full(len(self.controllers), -1, dtype=np.int64)
        for members, hyper, pattern in self.schedule_groups:
            agent_id[members] = pattern[self.steps[members] % hyper]
        act = (agent_id >= 0) & (self.win_count > 0)
        if not act.any():
            return
        pos = np.nonzero(act)[0]

        # Window averaging: one division per component, on the running sums
        # accumulated in arrival order — bitwise the scalar averages.
        counts = self.win_count[pos]
        avg_fps = self.win_fps[pos] / counts
        avg_psnr = self.win_psnr[pos] / counts
        avg_bitrate = self.win_bitrate[pos] / counts
        avg_power = self.win_power[pos] / counts

        rewards = np.empty(len(pos))
        states: list = [None] * len(pos)
        vgid = self.vgid[pos]
        for gid, (space, reward_function) in enumerate(self.vector_members):
            mask = vgid == gid
            if not mask.any():
                continue
            bins = space.discretize_batch(
                avg_fps[mask], avg_psnr[mask], avg_bitrate[mask], avg_power[mask]
            )
            rewards[mask] = reward_function.total_batch(
                avg_fps[mask],
                avg_psnr[mask],
                avg_bitrate[mask],
                avg_power[mask],
                exact=True,
            )
            indices = space.state_index_batch(bins).tolist()
            interns = self.state_interns[gid]
            for offset, k in enumerate(np.nonzero(mask)[0]):
                state_index = indices[offset]
                state = interns[state_index]
                if state is None:
                    row = bins[offset]
                    state = SystemState(
                        int(row[0]), int(row[1]), int(row[2]), int(row[3])
                    )
                    interns[state_index] = state
                states[k] = state

        # Grouped per-agent Q updates + action selections.  Sessions only
        # ever touch their own agents and RNGs, so the cross-session order
        # is free; within each group lanes are visited in roster order.
        act_ids = agent_id[pos]
        for gid, name in enumerate(self.agent_names):
            for k in np.nonzero(act_ids == gid)[0]:
                j = int(pos[k])
                controller = self.controllers[j]
                controller.apply_external_activation(
                    name, int(self.steps[j]), states[k], float(rewards[k])
                )
                decision = controller.current_decision()
                self.qp[j] = decision.qp
                self.threads[j] = decision.threads
                self.freq[j] = decision.frequency_ghz

        self.win_fps[pos] = 0.0
        self.win_psnr[pos] = 0.0
        self.win_bitrate[pos] = 0.0
        self.win_power[pos] = 0.0
        self.win_count[pos] = 0

    def commit_observations(
        self,
        fps: np.ndarray,
        psnr: np.ndarray,
        bitrate: np.ndarray,
        power: np.ndarray,
        window_reset: np.ndarray,
        finished: np.ndarray,
    ) -> None:
        """Stash this step's results for the next advance()'s window fold.

        All arguments are full-lane arrays.  ``window_reset`` marks lanes
        whose session moved to the next playlist video — their controller
        was reset, so the live window clears now and the stashed observation
        starts the fresh window at the next step (the scalar engine's order
        of events).  ``finished`` marks sessions that just completed: their
        controller never sees another observation, so nothing is stashed.
        """
        pos = self.positions
        reset = window_reset[pos]
        if reset.any():
            self.win_fps[reset] = 0.0
            self.win_psnr[reset] = 0.0
            self.win_bitrate[reset] = 0.0
            self.win_power[reset] = 0.0
            self.win_count[reset] = 0
        self.pend_fps = fps[pos]
        self.pend_psnr = psnr[pos]
        self.pend_bitrate = bitrate[pos]
        self.pend_power = power[pos]
        self.pend_valid = ~finished[pos]
        self.steps += 1

    def flush(self) -> None:
        """Write the live windows back to their controllers.

        Called before the driver's arrays are discarded (roster rebuilds and
        stepper teardowns) so a successor — or the scalar engine — resumes
        from the exact same window state.  The not-yet-folded stash is
        deliberately excluded: it equals each session's ``last_observation``,
        which the next engine folds itself (the scalar decide() appends it, a
        fresh driver re-derives it in its constructor), so writing it here
        would double-count the observation.
        """
        for k, controller in enumerate(self.controllers):
            controller.set_observation_window(
                float(self.win_fps[k]),
                float(self.win_psnr[k]),
                float(self.win_bitrate[k]),
                float(self.win_power[k]),
                int(self.win_count[k]),
            )


class BatchStepper:
    """Advances a fleet of orchestrators one step per call, batched.

    Parameters
    ----------
    orchestrators:
        The per-server orchestrators, in fleet order.  Sessions may join and
        leave between steps (the roster is re-gathered automatically); the
        stepper reads each orchestrator's live ``active_sessions()`` exactly
        like the scalar engine does.
    profiler:
        Optional :class:`~repro.telemetry.profiler.StepProfiler`; when given,
        each step charges its wall time to the engine's four phases
        (``mamut`` activations, ``gather``, ``evaluate``, ``scatter``).
        Timing is observe-only — results are bitwise identical either way.
    """

    def __init__(
        self, orchestrators: Sequence[Orchestrator], profiler=None
    ) -> None:
        self.orchestrators = list(orchestrators)
        self.profiler = profiler if profiler is not None else NULL_PROFILER

        # Group identical voltage tables so heterogeneous fleets still
        # evaluate each distinct table in one vectorized call.
        self._voltage_tables: list = []
        vt_keys: dict[tuple, int] = {}
        self._servers: list[_ServerStatic] = []
        for orch in self.orchestrators:
            table = orch.server.power_model.voltage_table
            key = (tuple(table._freqs), tuple(table._volts))
            group = vt_keys.setdefault(key, len(self._voltage_tables))
            if group == len(self._voltage_tables):
                self._voltage_tables.append(table)
            self._servers.append(_ServerStatic(orch, group))

        self._srv_cores = np.array([s.cores for s in self._servers], dtype=np.int64)
        self._srv_hw = np.array(
            [s.hw_threads for s in self._servers], dtype=np.int64
        )
        self._srv_smt_eff = np.array([s.smt_efficiency for s in self._servers])
        self._srv_leak = np.array([s.core_leakage_w for s in self._servers])
        self._srv_dyn = np.array([s.core_dynamic_w for s in self._servers])
        self._srv_dyn_smt2 = np.array(
            [s.core_dynamic_smt2_w for s in self._servers]
        )
        self._srv_vt_group = np.array(
            [s.vt_group for s in self._servers], dtype=np.int64
        )

        # Roster state (rebuilt whenever fleet membership changes).
        self._roster: list[TranscodingSession] = []
        self._lanes: list[_SessionLane] = []
        self._lane_by_session: dict[TranscodingSession, _SessionLane] = {}
        self._driver: Optional[_MamutDriver] = None
        self._driven_flags: list[bool] = []
        self._legacy_pos: list[int] = []
        self._counts: list[int] = []
        self._starts: list[int] = []
        self._static = {}
        self._video_static = {}
        self._comp_rows: dict = {}
        self._rd_rows: dict = {}
        self._comp_tables: Optional[np.ndarray] = None
        self._rd_tables: Optional[np.ndarray] = None
        self._comp_row_idx = np.empty(0, dtype=np.int64)
        self._rd_row_idx = np.empty(0, dtype=np.int64)
        self._leak_s = np.empty(0)
        self._dyn_s = np.empty(0)
        self._dyn_smt2_s = np.empty(0)
        self._vt_group_s = np.empty(0, dtype=np.int64)

    # -- roster maintenance --------------------------------------------------------

    def _qp_table_row(
        self, tables: dict, model, build
    ) -> int:
        key = model.params
        row = tables.get(key)
        if row is None:
            row = len(tables)
            tables[key] = (row, np.array(build(model)))
            return row
        return row[0]

    def _rebuild_roster(self, actives: list[list[TranscodingSession]]) -> None:
        """Re-gather per-session static columns after a membership change."""
        if self._driver is not None:
            self._driver.flush()
        lanes: list[_SessionLane] = []
        lane_map: dict[TranscodingSession, _SessionLane] = {}
        counts: list[int] = []
        roster: list[TranscodingSession] = []
        for sessions in actives:
            counts.append(len(sessions))
            for session in sessions:
                lane = self._lane_by_session.get(session)
                if lane is None:
                    lane = _SessionLane(session)
                lanes.append(lane)
                lane_map[session] = lane
                roster.append(session)

        self._lanes = lanes
        self._lane_by_session = lane_map
        self._roster = roster
        self._counts = counts
        starts = [0]
        for count in counts:
            starts.append(starts[-1] + count)
        self._starts = starts

        self._static = {
            name: np.array([getattr(lane, name) for lane in lanes])
            for name in _STATIC_COLUMNS
        }
        self._video_static = {
            name: np.array([float(getattr(lane, name)) for lane in lanes])
            for name in _VIDEO_COLUMNS
        }

        # Stacked per-QP lookup tables, one row per distinct parameter set.
        for lane in lanes:
            encoder = lane.session.transcoder.encoder
            self._qp_table_row(
                self._comp_rows,
                encoder.complexity_model,
                lambda model: model._qp_factor_table(),
            )
            self._qp_table_row(
                self._rd_rows,
                encoder.rd_model,
                lambda model: model._qp_rate_table(),
            )
        # Row order is dict insertion order, matching the indices handed out.
        self._comp_tables = (
            np.vstack([entry[1] for entry in self._comp_rows.values()])
            if self._comp_rows
            else None
        )
        self._rd_tables = (
            np.vstack([entry[1] for entry in self._rd_rows.values()])
            if self._rd_rows
            else None
        )
        self._comp_row_idx = np.array(
            [
                self._comp_rows[
                    lane.session.transcoder.encoder.complexity_model.params
                ][0]
                for lane in lanes
            ],
            dtype=np.int64,
        )
        self._rd_row_idx = np.array(
            [
                self._rd_rows[lane.session.transcoder.encoder.rd_model.params][0]
                for lane in lanes
            ],
            dtype=np.int64,
        )

        counts_arr = np.array(counts, dtype=np.int64)
        self._leak_s = np.repeat(self._srv_leak, counts_arr)
        self._dyn_s = np.repeat(self._srv_dyn, counts_arr)
        self._dyn_smt2_s = np.repeat(self._srv_dyn_smt2, counts_arr)
        self._vt_group_s = np.repeat(self._srv_vt_group, counts_arr)

        # Partition lanes into driver-managed MAMUT controllers and everything
        # else (exactly MamutController; subclasses keep the scalar protocol).
        self._driven_flags = [
            type(lane.session.controller) is MamutController for lane in lanes
        ]
        self._legacy_pos = [
            i for i, driven in enumerate(self._driven_flags) if not driven
        ]
        driven_pos = [i for i, driven in enumerate(self._driven_flags) if driven]
        self._driver = _MamutDriver(lanes, driven_pos) if driven_pos else None

    def flush_window_state(self) -> None:
        """Write driver-managed observation windows back to their controllers.

        Must be called when the stepper is discarded mid-run (fleet resizes
        rebuild it); a successor stepper — or the scalar engine — then
        resumes from identical controller state.  A no-op without driven
        sessions.
        """
        if self._driver is not None:
            self._driver.flush()

    def _refresh_video_columns(self) -> tuple[np.ndarray, np.ndarray]:
        """Apply in-place updates for sessions that moved to the next video.

        Returns two full-lane boolean masks for the MAMUT driver: lanes whose
        session advanced to the next playlist video (controller reset → the
        observation window restarts) and lanes whose session just finished.
        """
        advanced = np.zeros(len(self._lanes), dtype=bool)
        finished = np.zeros(len(self._lanes), dtype=bool)
        for index, lane in enumerate(self._lanes):
            session = lane.session
            if not session.active:
                finished[index] = True
            elif session.video_index != lane.video_index:
                advanced[index] = True
                lane.refresh_video()
                for name in _VIDEO_COLUMNS:
                    self._video_static[name][index] = float(getattr(lane, name))
        return advanced, finished

    # -- stepping -------------------------------------------------------------------

    def _voltage_arrays(self, freq: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        if len(self._voltage_tables) == 1:
            table = self._voltage_tables[0]
            return (
                table.relative_voltage_batch(freq),
                table.relative_dynamic_batch(freq),
            )
        v_rel = np.empty_like(freq)
        dyn_rel = np.empty_like(freq)
        for group, table in enumerate(self._voltage_tables):
            mask = self._vt_group_s == group
            if mask.any():
                sub = freq[mask]
                v_rel[mask] = table.relative_voltage_batch(sub)
                dyn_rel[mask] = table.relative_dynamic_batch(sub)
        return v_rel, dyn_rel

    def _idle_sample(self, server_index: int, step: int) -> PowerSample:
        static = self._servers[server_index]
        sample = PowerSample(
            step=step,
            power_w=static.idle_total_power_w,
            duration_s=1.0 / TARGET_FPS,
            active_sessions=0,
        )
        self.orchestrators[server_index].meter.record(
            sample.power_w, sample.duration_s
        )
        return sample

    def step(self, step: int) -> list[PowerSample]:
        """Advance every server by one step; returns one sample per server.

        Idle servers contribute their idle power exactly like
        :meth:`~repro.manager.orchestrator.Orchestrator.idle_step`.
        """
        actives = [orch.active_sessions() for orch in self.orchestrators]
        flat = [session for sessions in actives for session in sessions]

        if not flat:
            return [
                self._idle_sample(index, step)
                for index in range(len(self.orchestrators))
            ]

        if flat != self._roster:
            self._rebuild_roster(actives)

        lanes = self._lanes
        n = len(lanes)
        profiler = self.profiler

        # -- gather: controller decisions + per-frame content -------------------
        # Driver-managed MAMUT fleets run their activations (fleet-vectorized
        # averaging / discretisation / rewards, per-session RNG + Q updates)
        # before their cached decisions are read; every other controller is
        # stepped through the per-session peek protocol.
        if self._driver is not None:
            with profiler.phase("mamut"):
                self._driver.advance()

        with profiler.phase("gather"):
            qp = np.empty(n, dtype=np.int64)
            threads = np.empty(n, dtype=np.int64)
            freq = np.empty(n)
            if self._driver is not None:
                driver = self._driver
                qp[driver.positions] = driver.qp
                threads[driver.positions] = driver.threads
                freq[driver.positions] = driver.freq
            for i in self._legacy_pos:
                decision = lanes[i].session.peek_decision()
                qp[i] = decision.qp
                threads[i] = decision.threads
                freq[i] = decision.frequency_ghz

            fidx_l: list[int] = []
            cx_l: list[float] = []
            mo_l: list[float] = []
            sc_l: list[bool] = []
            for lane in lanes:
                frame_index = lane.session.frame_index
                fidx_l.append(frame_index)
                cx_l.append(lane.complexity_col[frame_index])
                mo_l.append(lane.motion_col[frame_index])
                sc_l.append(lane.scene_col[frame_index])

            # Decision.__post_init__ already enforces threads >= 1 and a
            # positive frequency; QP is only range-checked by EncoderConfig,
            # which the batch path never builds — enforce it here so a
            # misbehaving custom controller fails exactly like it would on
            # the scalar engine.
            if qp.min() < QP_MIN or qp.max() > QP_MAX:
                raise EncodingError(f"QP must be in [{QP_MIN}, {QP_MAX}]")
            complexity = np.array(cx_l)
            motion = np.array(mo_l)
            scene = np.array(sc_l, dtype=bool)

        with profiler.phase("evaluate"):
            static = self._static
            video = self._video_static
            rows = video["rows"]
            cols = video["cols"]
            serial_units = video["serial_units"]
            pixels = video["pixels"]

            # -- WPP speedup and thread efficiency (mirrors WppModel.speedup) ---
            usable = np.minimum(threads, rows)
            parallel_units = (rows / usable) * cols + 2 * (usable - 1)
            raw_speedup = serial_units / parallel_units
            overhead = 1.0 + static["sync_overhead"] * (threads - 1)
            speedup = np.maximum(1.0, raw_speedup / overhead)
            speedup = np.where(threads > 1, speedup, 1.0)
            activity = speedup / threads

            # -- per-server allocation (mirrors MulticoreServer.allocate) -------
            counts = self._counts
            starts = self._starts
            busy_idx = [i for i, count in enumerate(counts) if count > 0]
            busy_starts = np.array([starts[i] for i in busy_idx], dtype=np.int64)
            busy_counts = np.array([counts[i] for i in busy_idx], dtype=np.int64)
            busy = np.array(busy_idx, dtype=np.int64)

            total_threads = np.add.reduceat(threads, busy_starts)
            cores_b = self._srv_cores[busy]
            hw_b = self._srv_hw[busy]
            smt_eff_b = self._srv_smt_eff[busy]

            shared = np.minimum(total_threads, hw_b) - cores_b
            capacity = np.where(
                total_threads <= cores_b,
                total_threads.astype(float),
                (cores_b - shared) + 2 * shared * smt_eff_b,
            )
            scale_b = np.minimum(1.0, capacity / total_threads)

            busy_physical = np.minimum(total_threads, cores_b).astype(float)
            smt_cores = np.maximum(
                0, np.minimum(total_threads, hw_b) - cores_b
            ).astype(float)
            single_cores = busy_physical - smt_cores
            idle_cores = cores_b - busy_physical

            scale_rep = np.repeat(scale_b, busy_counts)
            total_rep = np.repeat(total_threads, busy_counts)
            single_rep = np.repeat(single_cores, busy_counts)
            smt_rep = np.repeat(smt_cores, busy_counts)

            effective_activity = np.minimum(1.0, activity / scale_rep)
            v_rel, dyn_rel = self._voltage_arrays(freq)
            leakage = self._leak_s * v_rel
            per_single = leakage + (self._dyn_s * dyn_rel) * effective_activity
            per_smt = leakage + (self._dyn_smt2_s * dyn_rel) * effective_activity

            share = threads / total_rep
            own_single = share * single_rep
            own_smt = share * smt_rep
            session_power = own_single * per_single + own_smt * per_smt

            # -- transcode math (mirrors HevcDecoder/HevcEncoder) ---------------
            decode_cycles = (static["decode_base"] * pixels) * (
                0.7 + 0.3 * complexity
            )
            decode_time = decode_cycles / (freq * 1e9)

            qp_factor = self._comp_tables[self._comp_row_idx, qp - QP_MIN]
            content_factor = (
                static["one_minus_complexity_weight"]
                + static["complexity_weight"] * complexity
            )
            motion_factor = 1.0 + static["motion_weight"] * motion
            intra_factor = np.where(scene, static["intra_cost_factor"], 1.0)
            encode_cycles = (
                static["base_cycles_per_pixel"]
                * pixels
                * video["effort_factor"]
                * qp_factor
                * content_factor
                * motion_factor
                * intra_factor
            )
            effective = np.maximum(1.0, speedup * scale_rep)
            encode_time = encode_cycles / (freq * 1e9 * effective)

            psnr = (
                static["psnr_at_ref_qp"]
                - static["psnr_slope"] * (qp - static["psnr_ref_qp"])
                - static["psnr_complexity_penalty"] * (complexity - 1.0)
                - static["psnr_motion_penalty"] * motion
                + video["quality_gain_db"]
            )
            psnr = np.minimum(
                np.maximum(psnr, static["psnr_floor"]), static["psnr_ceiling"]
            )

            qp_scale = self._rd_tables[self._rd_row_idx, qp - QP_MIN]
            content_scale = complexity * (0.8 + 0.4 * motion)
            intra_scale = np.where(scene, static["intra_rate_factor"], 1.0)
            bpp = (
                static["bpp_at_ref_qp"]
                * qp_scale
                * content_scale
                * intra_scale
                * video["compression_gain"]
            )
            bits = bpp * pixels
            bitrate = bits * static["delivery_fps"] / 1e6

            total_time = decode_time + encode_time
            fps = 1.0 / total_time

        # -- scatter -------------------------------------------------------------
        with profiler.phase("scatter"):
            fps_l = fps.tolist()
            psnr_l = psnr.tolist()
            bitrate_l = bitrate.tolist()
            time_l = total_time.tolist()
            power_l = session_power.tolist()
            qp_l = qp.tolist()
            threads_l = threads.tolist()
            freq_list = freq.tolist()
            idle_cores_l = idle_cores.tolist()
            driven_flags = self._driven_flags
            # Per-lane server power (each session observes its server's total
            # draw), fed back into the driver's observation windows.
            power_lane = np.empty(n)

            samples: list[Optional[PowerSample]] = [None] * len(
                self.orchestrators
            )
            make_observation = Observation
            make_record = FrameRecord
            for k, server_index in enumerate(busy_idx):
                start = starts[server_index]
                end = start + counts[server_index]
                orch = self.orchestrators[server_index]
                server_static = self._servers[server_index]

                # Idle/base power share (mirrors allocate's shared_power).
                if orch.server.dvfs_policy is DvfsPolicy.CHIP_WIDE:
                    idle_freq = max(freq_list[start:end])
                    cache = server_static.idle_core_power_cache
                    idle_core_power = cache.get(idle_freq)
                    if idle_core_power is None:
                        idle_core_power = (
                            server_static.power_model.idle_core_power(idle_freq)
                        )
                        cache[idle_freq] = idle_core_power
                else:
                    idle_core_power = server_static.idle_core_power_min_w
                idle_power = idle_cores_l[k] * idle_core_power
                shared_power = server_static.base_power_w + idle_power
                busy_power_total = sum(power_l[start:end])
                total_power = shared_power + busy_power_total
                power_lane[start:end] = total_power

                for i in range(start, end):
                    lane = lanes[i]
                    fps_i = fps_l[i]
                    psnr_i = psnr_l[i]
                    bitrate_i = bitrate_l[i]
                    # Positional construction, field order of the dataclasses.
                    observation = make_observation(
                        fps_i, psnr_i, bitrate_i, total_power
                    )
                    record = make_record(
                        lane.session_id,
                        lane.step_counter,
                        lane.video_name,
                        fidx_l[i],
                        lane.resolution_class,
                        qp_l[i],
                        threads_l[i],
                        freq_list[i],
                        fps_i,
                        psnr_i,
                        bitrate_i,
                        time_l[i],
                        total_power,
                        lane.target_fps,
                    )
                    lane.step_counter += 1
                    if driven_flags[i]:
                        lane.session.commit_driven_step(record, observation)
                    else:
                        lane.session.commit_step_result(record, observation)

                duration = sum(time_l[start:end]) / counts[server_index]
                sample = PowerSample(
                    step=step,
                    power_w=total_power,
                    duration_s=duration,
                    active_sessions=counts[server_index],
                )
                orch.meter.record(sample.power_w, sample.duration_s)
                samples[server_index] = sample

            for server_index in range(len(self.orchestrators)):
                if samples[server_index] is None:
                    samples[server_index] = self._idle_sample(server_index, step)

            advanced, finished = self._refresh_video_columns()
            if self._driver is not None:
                self._driver.commit_observations(
                    fps, psnr, bitrate, power_lane, advanced, finished
                )
        return samples  # type: ignore[return-value]
