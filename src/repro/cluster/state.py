"""Read-only cluster state snapshots shared by admission and dispatch.

Policies never touch live orchestrators: each scheduling decision sees an
immutable :class:`ClusterSnapshot` built by the
:class:`~repro.cluster.cluster.ClusterOrchestrator` at the moment of the
decision.  This keeps policies pure functions of observable state — easy to
test in isolation and impossible to corrupt the fleet from.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator

__all__ = ["ServerSnapshot", "ClusterSnapshot"]


@dataclasses.dataclass(frozen=True)
class ServerSnapshot:
    """Observable state of one server at a scheduling decision.

    Attributes
    ----------
    server_index:
        Position of the server in the fleet (0-based).
    active_sessions:
        Sessions currently transcoding on the server.
    last_power_w:
        Package power of the server's most recent step (its idle power
        before the first step).
    sessions_dispatched:
        Total sessions ever routed to this server.
    idle_power_w:
        Package power the server draws with no sessions at all (base plus
        parked cores); lets policies reason about *incremental* power.
    last_active_sessions:
        Sessions that were running when ``last_power_w`` was measured.
        ``active_sessions`` can exceed this within a step (sessions admitted
        since the last sample have not drawn power yet), which is what lets
        policies project the power already committed this step.
    """

    server_index: int
    active_sessions: int
    last_power_w: float
    sessions_dispatched: int
    idle_power_w: float = 0.0
    last_active_sessions: int = 0


@dataclasses.dataclass(frozen=True)
class ClusterSnapshot:
    """Observable state of the whole fleet at a scheduling decision.

    Attributes
    ----------
    step:
        Cluster step at which the snapshot was taken.
    servers:
        Per-server snapshots, indexed by server position.
    queue_length:
        Requests currently waiting in the admission queue.
    power_cap_w:
        Fleet-wide power budget admission policies may enforce.
    """

    step: int
    servers: tuple[ServerSnapshot, ...]
    queue_length: int
    power_cap_w: float

    def __iter__(self) -> Iterator[ServerSnapshot]:
        return iter(self.servers)

    @property
    def num_servers(self) -> int:
        """Number of servers in the fleet."""
        return len(self.servers)

    @property
    def total_active_sessions(self) -> int:
        """Sessions currently running anywhere in the fleet."""
        return sum(server.active_sessions for server in self.servers)

    @property
    def fleet_power_w(self) -> float:
        """Sum of the servers' most recent package powers."""
        return sum(server.last_power_w for server in self.servers)

    @property
    def fleet_idle_power_w(self) -> float:
        """Power the fleet would draw with every server idle."""
        return sum(server.idle_power_w for server in self.servers)

    @property
    def total_last_active_sessions(self) -> int:
        """Fleet-wide session count at the last power measurement."""
        return sum(server.last_active_sessions for server in self.servers)

    def least_loaded(self) -> ServerSnapshot:
        """The server with the fewest active sessions (lowest index on ties)."""
        return min(self.servers, key=lambda s: (s.active_sessions, s.server_index))
