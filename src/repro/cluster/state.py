"""Read-only cluster state snapshots shared by admission and dispatch.

Policies never touch live orchestrators: each scheduling decision sees an
immutable :class:`ClusterSnapshot` built by the
:class:`~repro.cluster.cluster.ClusterOrchestrator` at the moment of the
decision.  This keeps policies pure functions of observable state — easy to
test in isolation and impossible to corrupt the fleet from.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Mapping, Optional

__all__ = ["ServerSnapshot", "ClusterSnapshot"]


@dataclasses.dataclass(frozen=True)
class ServerSnapshot:
    """Observable state of one server at a scheduling decision.

    Attributes
    ----------
    server_index:
        Position of the server in the fleet (0-based).
    active_sessions:
        Sessions currently transcoding on the server.
    last_power_w:
        Package power of the server's most recent step (its idle power
        before the first step).
    sessions_dispatched:
        Total sessions ever routed to this server.
    idle_power_w:
        Package power the server draws with no sessions at all (base plus
        parked cores); lets policies reason about *incremental* power.
    last_active_sessions:
        Sessions that were running when ``last_power_w`` was measured.
        ``active_sessions`` can exceed this within a step (sessions admitted
        since the last sample have not drawn power yet), which is what lets
        policies project the power already committed this step.
    zone / rack:
        The server's ``(zone, rack)`` failure domain
        (:class:`~repro.cluster.faults.FailureTopology`); both 0 when no
        topology was configured.
    crash_count:
        Injected crashes this server has suffered so far — the fault
        ledger's view of its reliability, for crash-history-weighted
        dispatch.
    uptime_steps:
        Steps since the server last (re)entered healthy service; longer
        observed uptimes are weak evidence of a more reliable machine.
    """

    server_index: int
    active_sessions: int
    last_power_w: float
    sessions_dispatched: int
    idle_power_w: float = 0.0
    last_active_sessions: int = 0
    zone: int = 0
    rack: int = 0
    crash_count: int = 0
    uptime_steps: int = 0

    def marginal_session_power_w(self, fallback_w: float) -> float:
        """Estimated package power one more session would add.

        Derived from the server's draw *above idle* at the last measurement
        (base and parked-core power would grossly overstate the marginal
        cost), falling back to ``fallback_w`` when nothing was measured
        running.
        """
        busy_w = self.last_power_w - self.idle_power_w
        if self.last_active_sessions > 0 and busy_w > 0:
            return busy_w / self.last_active_sessions
        return fallback_w

    def projected_power_w(self, fallback_marginal_w: float) -> float:
        """Power projected to the sessions admitted since the last sample.

        Power is only sampled once per step, so scheduling decisions made
        within a step would otherwise act on a stale reading; the projection
        adds one marginal-session estimate for every session admitted since
        the sample was taken.
        """
        marginal_w = self.marginal_session_power_w(fallback_marginal_w)
        pending = max(0, self.active_sessions - self.last_active_sessions)
        return self.last_power_w + marginal_w * pending


@dataclasses.dataclass(frozen=True)
class ClusterSnapshot:
    """Observable state of the whole fleet at a scheduling decision.

    Attributes
    ----------
    step:
        Cluster step at which the snapshot was taken.
    servers:
        Per-server snapshots of the *dispatchable* fleet, indexed by server
        position.
    queue_length:
        Requests currently waiting in the admission queue.
    queue_by_class:
        Queued requests broken down by service class (empty when nothing is
        queued or the breakdown was not taken) — what lets per-class SLAs
        bound each class's backlog independently instead of interfering
        through the shared aggregate.
    power_cap_w:
        Fleet-wide power budget admission policies may enforce.
    offline_power_w:
        Package power currently drawn by servers that are powered on but not
        dispatchable (warming through their provisioning delay or draining
        toward decommission).  Those machines share the fleet's power budget
        even though they take no new sessions, so the cap projections below
        include this draw.
    warming_servers:
        Commissioned servers still inside their provisioning warm-up —
        capacity that is *about to* exist.
    warming_ready_in:
        Steps until the soonest warming server becomes dispatchable
        (``None`` when nothing is warming).
    brownout_level:
        Fleet-wide degradation level set by the
        :class:`~repro.cluster.brownout.BrownoutController` (0 = normal
        operation).  Admission policies may trade quality for capacity when
        it is raised.
    degraded_servers:
        Powered-on servers inside a straggler throttle.  They keep serving
        their in-flight sessions but are excluded from ``servers`` (the
        dispatchable roster), so policies can tell throttled capacity from
        capacity that simply does not exist.
    failed_servers:
        Servers currently down after an injected crash — capacity the fleet
        has *lost* until their seeded recovery (autoscalers see the smaller
        dispatchable roster and can replace it).
    recovering_servers:
        Crashed servers back on power, rebooting through the provisioning
        warm-up before they rejoin the dispatchable roster.
    retry_of_zone:
        When the decision routes a *crash retry*, the zone the session was
        lost in; ``None`` for ordinary dispatches.  Failure-aware policies
        use it to spread retries across failure domains instead of
        re-landing them where the outage struck.
    """

    step: int
    servers: tuple[ServerSnapshot, ...]
    queue_length: int
    power_cap_w: float
    offline_power_w: float = 0.0
    warming_servers: int = 0
    warming_ready_in: Optional[int] = None
    brownout_level: int = 0
    queue_by_class: Mapping[str, int] = dataclasses.field(default_factory=dict)
    degraded_servers: int = 0
    failed_servers: int = 0
    recovering_servers: int = 0
    retry_of_zone: Optional[int] = None

    def __iter__(self) -> Iterator[ServerSnapshot]:
        return iter(self.servers)

    def class_queue_length(self, service_class: str) -> int:
        """Queued requests of one service class.

        Falls back to the aggregate ``queue_length`` when no per-class
        breakdown was recorded (hand-built snapshots) — a non-empty queue
        recorded by the orchestrator always carries one.
        """
        if not self.queue_by_class:
            return self.queue_length
        return self.queue_by_class.get(service_class, 0)

    @property
    def num_servers(self) -> int:
        """Number of servers in the fleet."""
        return len(self.servers)

    @property
    def available_zones(self) -> int:
        """Distinct failure zones with at least one dispatchable server."""
        return len({server.zone for server in self.servers})

    @property
    def total_active_sessions(self) -> int:
        """Sessions currently running anywhere in the fleet."""
        return sum(server.active_sessions for server in self.servers)

    @property
    def dispatchable_power_w(self) -> float:
        """Sum of the dispatchable servers' most recent package powers."""
        return sum(server.last_power_w for server in self.servers)

    @property
    def fleet_power_w(self) -> float:
        """Most recent package power of *every* powered-on server.

        Includes ``offline_power_w`` — warming and draining servers draw
        real power against the same budget even though they take no new
        sessions, so a cap-enforcing policy that ignored them would
        overshoot the fleet budget during every scaling transient.
        """
        return self.dispatchable_power_w + self.offline_power_w

    @property
    def fleet_idle_power_w(self) -> float:
        """Power the fleet would draw with every server idle."""
        return sum(server.idle_power_w for server in self.servers)

    @property
    def total_last_active_sessions(self) -> int:
        """Fleet-wide session count at the last power measurement."""
        return sum(server.last_active_sessions for server in self.servers)

    def least_loaded(self) -> ServerSnapshot:
        """The server with the fewest active sessions (lowest index on ties)."""
        return min(self.servers, key=lambda s: (s.active_sessions, s.server_index))

    def marginal_session_power_w(self, fallback_w: float) -> float:
        """Fleet-level analogue of :meth:`ServerSnapshot.marginal_session_power_w`.

        Estimated from the fleet's draw above idle at the last measurement,
        falling back to ``fallback_w`` when nothing was measured running.
        """
        measured = self.total_last_active_sessions
        busy_w = self.dispatchable_power_w - self.fleet_idle_power_w
        if measured > 0 and busy_w > 0:
            return busy_w / measured
        return fallback_w

    def projected_power_w(self, fallback_marginal_w: float) -> float:
        """Fleet power projected to sessions admitted since the last sample.

        Fleet-level analogue of :meth:`ServerSnapshot.projected_power_w`:
        without it, a burst arriving within one step would be evaluated
        wholesale against a stale fleet-power reading.  Starts from
        :attr:`fleet_power_w`, so warming/draining servers' draw counts
        against the cap.
        """
        marginal_w = self.marginal_session_power_w(fallback_marginal_w)
        unmeasured = max(0, self.total_active_sessions - self.total_last_active_sessions)
        return self.fleet_power_w + marginal_w * unmeasured
