"""Admission control: decide whether an arriving request may enter the fleet.

Every arriving :class:`~repro.cluster.workload.WorkloadEvent` is shown to an
:class:`AdmissionPolicy` together with a :class:`~repro.cluster.state.ClusterSnapshot`.
The policy answers one of three verdicts:

* ``ADMIT`` — hand the request to the dispatcher now;
* ``QUEUE`` — hold the request in a FIFO queue and retry on later steps;
* ``REJECT`` — turn the request away (counted in the rejection rate).

Queued requests are re-evaluated ahead of new arrivals each step, so a
policy only needs to express its instantaneous condition — the retry loop
lives in the :class:`~repro.cluster.cluster.ClusterOrchestrator`.
"""

from __future__ import annotations

import abc
import enum

from repro.errors import ClusterError
from repro.cluster.state import ClusterSnapshot
from repro.cluster.workload import WorkloadEvent

__all__ = [
    "AdmissionVerdict",
    "AdmissionPolicy",
    "AlwaysAdmit",
    "CapacityThreshold",
    "PowerHeadroom",
]


class AdmissionVerdict(enum.Enum):
    """Outcome of one admission decision."""

    ADMIT = "admit"
    QUEUE = "queue"
    REJECT = "reject"


class AdmissionPolicy(abc.ABC):
    """Pluggable admission rule consulted once per request per step."""

    @abc.abstractmethod
    def decide(self, event: WorkloadEvent, snapshot: ClusterSnapshot) -> AdmissionVerdict:
        """Verdict for ``event`` given the current fleet state."""

    @property
    def name(self) -> str:
        """Human-readable policy name (defaults to the class name)."""
        return type(self).__name__


class AlwaysAdmit(AdmissionPolicy):
    """Admit everything — the open-loop baseline (and overload generator)."""

    def decide(self, event: WorkloadEvent, snapshot: ClusterSnapshot) -> AdmissionVerdict:
        return AdmissionVerdict.ADMIT


class CapacityThreshold(AdmissionPolicy):
    """Bound concurrent sessions per server; queue a bounded backlog.

    A request is admitted while some server runs fewer than
    ``max_sessions_per_server`` sessions, queued while the backlog is below
    ``max_queue``, and rejected otherwise.

    Note that admission and dispatch are decided independently: the bound is
    enforced per server only when paired with a least-loaded-style
    dispatcher.  Under :class:`~repro.cluster.dispatch.RoundRobin` or
    :class:`~repro.cluster.dispatch.PowerAware` it still caps *fleet-wide*
    admission, but an individual server may momentarily exceed the bound.

    Parameters
    ----------
    max_sessions_per_server:
        Concurrency bound per server (the paper's Scenario I mixes peak at
        three videos per class on one server; four is a sane default for a
        16-core machine).
    max_queue:
        Longest backlog the service will hold before turning users away.
    """

    def __init__(self, max_sessions_per_server: int = 4, max_queue: int = 16) -> None:
        if max_sessions_per_server < 1:
            raise ClusterError(
                f"max_sessions_per_server must be >= 1, got {max_sessions_per_server}"
            )
        if max_queue < 0:
            raise ClusterError(f"max_queue must be >= 0, got {max_queue}")
        self.max_sessions_per_server = int(max_sessions_per_server)
        self.max_queue = int(max_queue)

    def decide(self, event: WorkloadEvent, snapshot: ClusterSnapshot) -> AdmissionVerdict:
        if snapshot.least_loaded().active_sessions < self.max_sessions_per_server:
            return AdmissionVerdict.ADMIT
        if snapshot.queue_length < self.max_queue:
            return AdmissionVerdict.QUEUE
        return AdmissionVerdict.REJECT


class PowerHeadroom(AdmissionPolicy):
    """Admit only while the fleet's power budget has headroom.

    Marginal-power estimation and the within-step projection live on the
    snapshot (:meth:`~repro.cluster.state.ClusterSnapshot.marginal_session_power_w`
    and :meth:`~repro.cluster.state.ClusterSnapshot.projected_power_w`,
    shared with :class:`~repro.cluster.dispatch.PowerAware`), with
    ``watts_per_session_estimate`` as the idle-fleet fallback.  A request is
    admitted while the projection plus one more marginal session fits under
    ``snapshot.power_cap_w``, queued while the backlog is below
    ``max_queue``, and rejected otherwise.
    """

    def __init__(
        self, watts_per_session_estimate: float = 25.0, max_queue: int = 16
    ) -> None:
        if watts_per_session_estimate <= 0:
            raise ClusterError(
                "watts_per_session_estimate must be positive, "
                f"got {watts_per_session_estimate}"
            )
        if max_queue < 0:
            raise ClusterError(f"max_queue must be >= 0, got {max_queue}")
        self.watts_per_session_estimate = float(watts_per_session_estimate)
        self.max_queue = int(max_queue)

    def decide(self, event: WorkloadEvent, snapshot: ClusterSnapshot) -> AdmissionVerdict:
        marginal_w = snapshot.marginal_session_power_w(self.watts_per_session_estimate)
        projected_w = snapshot.projected_power_w(self.watts_per_session_estimate)
        if projected_w + marginal_w <= snapshot.power_cap_w:
            return AdmissionVerdict.ADMIT
        if snapshot.queue_length < self.max_queue:
            return AdmissionVerdict.QUEUE
        return AdmissionVerdict.REJECT
