"""Admission control: decide whether an arriving request may enter the fleet.

Every arriving :class:`~repro.cluster.workload.WorkloadEvent` is shown to an
:class:`AdmissionPolicy` together with a :class:`~repro.cluster.state.ClusterSnapshot`.
The policy answers one of three verdicts:

* ``ADMIT`` — hand the request to the dispatcher now;
* ``QUEUE`` — hold the request in a FIFO queue and retry on later steps;
* ``REJECT`` — turn the request away (counted in the rejection rate).

Queued requests are re-evaluated ahead of new arrivals each step, so a
policy only needs to express its instantaneous condition — the retry loop
lives in the :class:`~repro.cluster.cluster.ClusterOrchestrator`.  The
snapshot's ``servers`` tuple covers only *healthy, dispatchable* capacity
(crashed and straggler-throttled servers are excluded, their counts
published as ``failed_servers``/``degraded_servers``), and crash-recovery
re-dispatches flow through the same ``decide`` call as fresh arrivals —
policies stay oblivious to the fault machinery.
"""

from __future__ import annotations

import abc
import dataclasses
import enum
from typing import Mapping, Optional

from repro.errors import ClusterError
from repro.cluster.state import ClusterSnapshot
from repro.cluster.workload import WorkloadEvent
from repro.video.sequence import ResolutionClass

__all__ = [
    "AdmissionVerdict",
    "AdmissionPolicy",
    "AlwaysAdmit",
    "CapacityThreshold",
    "PowerHeadroom",
    "ClassAwareAdmission",
    "QueueWhileWarming",
]


class AdmissionVerdict(enum.Enum):
    """Outcome of one admission decision."""

    ADMIT = "admit"
    QUEUE = "queue"
    REJECT = "reject"


class AdmissionPolicy(abc.ABC):
    """Pluggable admission rule consulted once per request per step."""

    @abc.abstractmethod
    def decide(self, event: WorkloadEvent, snapshot: ClusterSnapshot) -> AdmissionVerdict:
        """Verdict for ``event`` given the current fleet state."""

    @property
    def name(self) -> str:
        """Human-readable policy name (defaults to the class name)."""
        return type(self).__name__


class AlwaysAdmit(AdmissionPolicy):
    """Admit everything — the open-loop baseline (and overload generator)."""

    def decide(self, event: WorkloadEvent, snapshot: ClusterSnapshot) -> AdmissionVerdict:
        return AdmissionVerdict.ADMIT


class CapacityThreshold(AdmissionPolicy):
    """Bound concurrent sessions per server; queue a bounded backlog.

    A request is admitted while some server runs fewer than
    ``max_sessions_per_server`` sessions, queued while the backlog is below
    ``max_queue``, and rejected otherwise.

    Note that admission and dispatch are decided independently: the bound is
    enforced per server only when paired with a least-loaded-style
    dispatcher.  Under :class:`~repro.cluster.dispatch.RoundRobin` or
    :class:`~repro.cluster.dispatch.PowerAware` it still caps *fleet-wide*
    admission, but an individual server may momentarily exceed the bound.

    Parameters
    ----------
    max_sessions_per_server:
        Concurrency bound per server (the paper's Scenario I mixes peak at
        three videos per class on one server; four is a sane default for a
        16-core machine).
    max_queue:
        Longest backlog the service will hold before turning users away.
    brownout_extra_sessions:
        Additional per-server session slots unlocked per brownout level
        (``snapshot.brownout_level``).  This is the capacity half of the
        brownout bargain: while the
        :class:`~repro.cluster.brownout.BrownoutController` degrades
        quality fleet-wide, admission packs more (cheaper) sessions per
        server instead of shedding users.  0 (the default) ignores brownout.
    """

    def __init__(
        self,
        max_sessions_per_server: int = 4,
        max_queue: int = 16,
        brownout_extra_sessions: int = 0,
    ) -> None:
        if max_sessions_per_server < 1:
            raise ClusterError(
                f"max_sessions_per_server must be >= 1, got {max_sessions_per_server}"
            )
        if max_queue < 0:
            raise ClusterError(f"max_queue must be >= 0, got {max_queue}")
        if brownout_extra_sessions < 0:
            raise ClusterError(
                f"brownout_extra_sessions must be >= 0, got {brownout_extra_sessions}"
            )
        self.max_sessions_per_server = int(max_sessions_per_server)
        self.max_queue = int(max_queue)
        self.brownout_extra_sessions = int(brownout_extra_sessions)

    def decide(self, event: WorkloadEvent, snapshot: ClusterSnapshot) -> AdmissionVerdict:
        if snapshot.num_servers == 0:
            # Zero dispatchable servers (e.g. the whole fleet warming or
            # draining during a scaling transient): nothing to admit onto,
            # but the backlog rule still applies.
            if snapshot.queue_length < self.max_queue:
                return AdmissionVerdict.QUEUE
            return AdmissionVerdict.REJECT
        bound = (
            self.max_sessions_per_server
            + self.brownout_extra_sessions * snapshot.brownout_level
        )
        if snapshot.least_loaded().active_sessions < bound:
            return AdmissionVerdict.ADMIT
        if snapshot.queue_length < self.max_queue:
            return AdmissionVerdict.QUEUE
        return AdmissionVerdict.REJECT


class PowerHeadroom(AdmissionPolicy):
    """Admit only while the fleet's power budget has headroom.

    Marginal-power estimation and the within-step projection live on the
    snapshot (:meth:`~repro.cluster.state.ClusterSnapshot.marginal_session_power_w`
    and :meth:`~repro.cluster.state.ClusterSnapshot.projected_power_w`,
    shared with :class:`~repro.cluster.dispatch.PowerAware`), with
    ``watts_per_session_estimate`` as the idle-fleet fallback.  A request is
    admitted while the projection plus one more marginal session fits under
    ``snapshot.power_cap_w``, queued while the backlog is below
    ``max_queue``, and rejected otherwise.
    """

    def __init__(
        self, watts_per_session_estimate: float = 25.0, max_queue: int = 16
    ) -> None:
        if watts_per_session_estimate <= 0:
            raise ClusterError(
                "watts_per_session_estimate must be positive, "
                f"got {watts_per_session_estimate}"
            )
        if max_queue < 0:
            raise ClusterError(f"max_queue must be >= 0, got {max_queue}")
        self.watts_per_session_estimate = float(watts_per_session_estimate)
        self.max_queue = int(max_queue)

    def decide(self, event: WorkloadEvent, snapshot: ClusterSnapshot) -> AdmissionVerdict:
        if snapshot.num_servers == 0:
            # An empty dispatchable fleet always has "headroom", but there
            # is no server to dispatch onto — queue instead of admitting
            # into a crash.
            if snapshot.queue_length < self.max_queue:
                return AdmissionVerdict.QUEUE
            return AdmissionVerdict.REJECT
        marginal_w = snapshot.marginal_session_power_w(self.watts_per_session_estimate)
        projected_w = snapshot.projected_power_w(self.watts_per_session_estimate)
        if projected_w + marginal_w <= snapshot.power_cap_w:
            return AdmissionVerdict.ADMIT
        if snapshot.queue_length < self.max_queue:
            return AdmissionVerdict.QUEUE
        return AdmissionVerdict.REJECT


class ClassAwareAdmission(AdmissionPolicy):
    """Per-service-class SLAs: one sub-policy per service class.

    The paper's traffic is two-class (HR premieres vs. LR catalogue); under
    overload a single fleet-wide rule either protects both or sheds both.
    This wrapper routes each arriving event to the sub-policy of its
    ``service_class``, so e.g. HR traffic can ride a deep queue
    (:class:`CapacityThreshold` with a large ``max_queue``) while LR traffic
    sheds early (a shallow one).

    Each sub-policy sees the queue *of its own class*: the wrapper rewrites
    ``snapshot.queue_length`` to
    :meth:`~repro.cluster.state.ClusterSnapshot.class_queue_length` before
    delegating, so one class's backlog cannot eat another class's queue
    budget (HR requests piling up must not push LR into rejection, nor
    vice versa).

    Parameters
    ----------
    policies:
        Sub-policy per service class, keyed by the class label or a
        :class:`~repro.video.sequence.ResolutionClass` (its ``value`` is
        the label the workload generator stamps by default).
    default:
        Policy for classes without an entry; defaults to
        :class:`CapacityThreshold`.
    """

    def __init__(
        self,
        policies: Mapping[ResolutionClass | str, AdmissionPolicy],
        default: Optional[AdmissionPolicy] = None,
    ) -> None:
        if not policies and default is None:
            raise ClusterError(
                "ClassAwareAdmission needs at least one sub-policy"
            )
        self.policies = {
            (key.value if isinstance(key, ResolutionClass) else str(key)): policy
            for key, policy in policies.items()
        }
        self.default = default if default is not None else CapacityThreshold()

    def policy_for(self, event: WorkloadEvent) -> AdmissionPolicy:
        """The sub-policy serving ``event``'s service class."""
        return self.policies.get(event.service_class, self.default)

    def decide(self, event: WorkloadEvent, snapshot: ClusterSnapshot) -> AdmissionVerdict:
        scoped = dataclasses.replace(
            snapshot,
            queue_length=snapshot.class_queue_length(event.service_class),
        )
        return self.policy_for(event).decide(event, scoped)

    @property
    def name(self) -> str:
        parts = ", ".join(
            f"{label}={policy.name}" for label, policy in self.policies.items()
        )
        return f"ClassAwareAdmission({parts})"


class QueueWhileWarming(AdmissionPolicy):
    """Autoscaling-aware admission: queue instead of rejecting when capacity
    is about to exist.

    Wraps any admission policy; a ``REJECT`` verdict is softened to
    ``QUEUE`` while commissioned servers are still warming
    (``snapshot.warming_servers``) and due dispatchable within
    ``horizon_steps`` — the request's wait is bounded by the provisioning
    delay, which is a better deal than a rejection.  ``ADMIT``/``QUEUE``
    verdicts pass through untouched.

    Parameters
    ----------
    inner:
        The policy whose rejections are reconsidered.
    max_queue:
        Backlog bound for the softened verdicts (rejects stay rejects once
        the queue is this long); match it to the wrapped policy's own queue
        bound unless waiting-for-capacity should be allowed a deeper
        backlog.
    horizon_steps:
        Only soften when the soonest warming server is dispatchable within
        this many steps; ``None`` accepts any warming server.
    """

    def __init__(
        self,
        inner: AdmissionPolicy,
        max_queue: int = 64,
        horizon_steps: Optional[int] = None,
    ) -> None:
        if max_queue < 0:
            raise ClusterError(f"max_queue must be >= 0, got {max_queue}")
        if horizon_steps is not None and horizon_steps < 0:
            raise ClusterError(
                f"horizon_steps must be >= 0, got {horizon_steps}"
            )
        self.inner = inner
        self.max_queue = int(max_queue)
        self.horizon_steps = horizon_steps

    def decide(self, event: WorkloadEvent, snapshot: ClusterSnapshot) -> AdmissionVerdict:
        verdict = self.inner.decide(event, snapshot)
        if verdict is not AdmissionVerdict.REJECT:
            return verdict
        if snapshot.warming_servers == 0:
            return verdict
        if snapshot.queue_length >= self.max_queue:
            return verdict
        if (
            self.horizon_steps is not None
            and (
                snapshot.warming_ready_in is None
                or snapshot.warming_ready_in > self.horizon_steps
            )
        ):
            return verdict
        return AdmissionVerdict.QUEUE

    @property
    def name(self) -> str:
        return f"QueueWhileWarming({self.inner.name})"
