"""Cluster layer: dynamic traffic, admission control, multi-server dispatch.

The paper evaluates one multicore server with a fixed cohort of sessions;
this package scales the reproduction toward a service: a
:class:`~repro.cluster.workload.WorkloadGenerator` produces timestamped
request arrivals from composable traffic models, an
:class:`~repro.cluster.admission.AdmissionPolicy` decides whether each
request is admitted, queued or rejected, a
:class:`~repro.cluster.dispatch.DispatchPolicy` load-balances admitted
requests across servers, and the
:class:`~repro.cluster.cluster.ClusterOrchestrator` drives the per-server
orchestrators step-wise with sessions joining and leaving mid-run.  An
optional :class:`~repro.cluster.autoscale.AutoscalePolicy` makes the fleet
itself elastic: servers are commissioned (with a provisioning warm-up) and
decommissioned (drain-before-retire) at run time from the same snapshot
signals admission and dispatch see.  Overload control rides on top:
arriving events carry patience deadlines (queued requests are dropped once
they expire), :class:`~repro.cluster.admission.ClassAwareAdmission` gives
each resolution class its own SLA,
:class:`~repro.cluster.admission.QueueWhileWarming` queues toward capacity
that is about to exist, and the
:class:`~repro.cluster.brownout.BrownoutController` degrades quality
fleet-wide under sustained pressure instead of turning users away.
Robustness is exercised by the seeded
:class:`~repro.cluster.faults.FaultInjector`: server crashes with session
salvage and Q-table migration, transient stragglers, warm-up failures,
bounded retries with exponential backoff — plus correlated failure
domains: a seeded :class:`~repro.cluster.faults.FailureTopology` assigns
every slot a ``(zone, rack)`` domain, zone outages (MTBF-drawn or declared
by a :class:`~repro.cluster.faults.KillSchedule`) take a whole domain down
at once, periodic frame-level checkpoints bound a retry's recomputation to
the checkpoint interval, and the crash-history-weighted
:class:`~repro.cluster.dispatch.FailureAware` policy routes work toward
reliable machines and retries away from the zone that lost them —
identical fault schedules and identical results on both stepping engines.
"""

from repro.cluster.admission import (
    AdmissionPolicy,
    AdmissionVerdict,
    AlwaysAdmit,
    CapacityThreshold,
    ClassAwareAdmission,
    PowerHeadroom,
    QueueWhileWarming,
)
from repro.cluster.brownout import BrownoutController
from repro.cluster.autoscale import (
    AutoscaleDecision,
    AutoscalePolicy,
    AutoscaleSignals,
    FixedFleet,
    PredictiveScaling,
    ReactiveThreshold,
    TargetTracking,
)
from repro.cluster.batch import BatchStepper
from repro.cluster.cluster import ClusterOrchestrator, ClusterResult
from repro.cluster.dispatch import (
    DispatchPolicy,
    FailureAware,
    LeastLoaded,
    PowerAware,
    RoundRobin,
)
from repro.cluster.faults import (
    FailureTopology,
    FaultConfig,
    FaultInjector,
    KillEntry,
    KillSchedule,
)
from repro.cluster.state import ClusterSnapshot, ServerSnapshot
from repro.cluster.workload import (
    CompositeTraffic,
    DiurnalTraffic,
    FlashCrowdTraffic,
    PoissonTraffic,
    TrafficModel,
    WorkloadEvent,
    WorkloadGenerator,
)

__all__ = [
    # workload
    "TrafficModel",
    "PoissonTraffic",
    "DiurnalTraffic",
    "FlashCrowdTraffic",
    "CompositeTraffic",
    "WorkloadEvent",
    "WorkloadGenerator",
    # admission
    "AdmissionPolicy",
    "AdmissionVerdict",
    "AlwaysAdmit",
    "CapacityThreshold",
    "ClassAwareAdmission",
    "PowerHeadroom",
    "QueueWhileWarming",
    # brownout
    "BrownoutController",
    # autoscaling
    "AutoscaleDecision",
    "AutoscalePolicy",
    "AutoscaleSignals",
    "FixedFleet",
    "PredictiveScaling",
    "ReactiveThreshold",
    "TargetTracking",
    # dispatch
    "DispatchPolicy",
    "RoundRobin",
    "LeastLoaded",
    "PowerAware",
    "FailureAware",
    # faults
    "FailureTopology",
    "KillEntry",
    "KillSchedule",
    "FaultConfig",
    "FaultInjector",
    # state
    "ClusterSnapshot",
    "ServerSnapshot",
    # orchestration
    "BatchStepper",
    "ClusterOrchestrator",
    "ClusterResult",
]
