"""Brownout: degrade quality fleet-wide instead of turning users away.

Classic overload control sheds load — reject, drop, abandon.  A transcoding
service has a second lever the paper's per-session controllers already
expose: *quality*.  Under sustained pressure every user can be served a
slightly worse stream (higher QP, relaxed FPS target) so that each session
costs less and more of them fit under the same fleet and power budget; when
the pressure passes, full quality returns.  That trade is the brownout
pattern (Klein et al., ICSE'14) applied to the paper's QoS/power knobs.

The :class:`BrownoutController` is consulted once per cluster step by the
:class:`~repro.cluster.cluster.ClusterOrchestrator` with the step's
scheduling :class:`~repro.cluster.state.ClusterSnapshot`.  It watches two
pressure signals — admission-queue length per dispatchable server and
session-slot utilization — and flips the fleet between level 0 (normal) and
level 1 (browned out) with sustained-trigger hysteresis: pressure must hold
for ``enter_steps`` consecutive steps to enter, and calm must hold for
``exit_steps`` consecutive steps to exit, so a single bursty step never
flaps quality fleet-wide.

While active, the level is published on ``ClusterSnapshot.brownout_level``
(admission policies such as :class:`~repro.cluster.admission.CapacityThreshold`
may unlock extra session slots from it) and new sessions are degraded at
dispatch time:

* the request's FPS target is relaxed by ``fps_relax`` (the QoS bargain the
  user accepts instead of a rejection), and
* the session's controller is built by ``degraded_factory`` when one is
  given (e.g. a static factory with a QP offset, or a MAMUT factory whose
  config trades PSNR for throughput).

Only *new* sessions are degraded — already-running sessions keep the deal
they were admitted under, which also keeps the scalar and batch stepping
engines trivially equivalent (degradation happens at dispatch, outside the
engines).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.errors import ClusterError
from repro.cluster.state import ClusterSnapshot
from repro.manager.factories import ControllerFactory
from repro.video.request import TranscodingRequest

__all__ = ["BrownoutController"]


class BrownoutController:
    """Two-state (normal / browned-out) fleet-wide degradation controller.

    Parameters
    ----------
    enter_queue_per_server, exit_queue_per_server:
        Admission-queue length per dispatchable server above which pressure
        counts toward entering brownout, and at-or-below which calm counts
        toward exiting.  The exit threshold must sit below the enter
        threshold (the hysteresis band).
    enter_utilization, exit_utilization:
        Session-slot utilization thresholds (active sessions over
        ``dispatchable_servers * sessions_per_server``), same roles as the
        queue pair.  Pressure is queue *or* utilization; calm is queue *and*
        utilization.
    sessions_per_server:
        Session slots one server offers at level 0 (match the admission
        policy's concurrency bound).
    enter_steps, exit_steps:
        Consecutive steps the pressure (resp. calm) condition must hold
        before the level flips — the temporal half of the hysteresis.
    fps_relax:
        Factor in (0, 1] applied to the FPS target of sessions admitted
        during brownout (1.0 keeps the target strict).
    degraded_factory:
        Optional controller factory used for sessions admitted during
        brownout (e.g. a higher-QP static factory); ``None`` keeps the
        orchestrator's normal factory.

    The controller carries state (the consecutive-step counters); build a
    fresh instance per run for reproducible traces.
    """

    def __init__(
        self,
        enter_queue_per_server: float = 2.0,
        exit_queue_per_server: float = 0.25,
        enter_utilization: float = 0.95,
        exit_utilization: float = 0.6,
        sessions_per_server: int = 4,
        enter_steps: int = 3,
        exit_steps: int = 6,
        fps_relax: float = 0.75,
        degraded_factory: Optional[ControllerFactory] = None,
    ) -> None:
        if enter_queue_per_server <= 0:
            raise ClusterError(
                f"enter_queue_per_server must be positive, got {enter_queue_per_server}"
            )
        if not 0.0 <= exit_queue_per_server < enter_queue_per_server:
            raise ClusterError(
                "exit_queue_per_server must sit below enter_queue_per_server "
                f"(got {exit_queue_per_server} vs {enter_queue_per_server})"
            )
        if not 0.0 < enter_utilization <= 1.0:
            raise ClusterError(
                f"enter_utilization must be in (0, 1], got {enter_utilization}"
            )
        if not 0.0 <= exit_utilization < enter_utilization:
            raise ClusterError(
                "exit_utilization must sit below enter_utilization "
                f"(got {exit_utilization} vs {enter_utilization})"
            )
        if sessions_per_server < 1:
            raise ClusterError(
                f"sessions_per_server must be >= 1, got {sessions_per_server}"
            )
        if enter_steps < 1:
            raise ClusterError(f"enter_steps must be >= 1, got {enter_steps}")
        if exit_steps < 1:
            raise ClusterError(f"exit_steps must be >= 1, got {exit_steps}")
        if not 0.0 < fps_relax <= 1.0:
            raise ClusterError(f"fps_relax must be in (0, 1], got {fps_relax}")
        self.enter_queue_per_server = float(enter_queue_per_server)
        self.exit_queue_per_server = float(exit_queue_per_server)
        self.enter_utilization = float(enter_utilization)
        self.exit_utilization = float(exit_utilization)
        self.sessions_per_server = int(sessions_per_server)
        self.enter_steps = int(enter_steps)
        self.exit_steps = int(exit_steps)
        self.fps_relax = float(fps_relax)
        self.degraded_factory = degraded_factory
        self._level = 0
        self._pressure_streak = 0
        self._calm_streak = 0

    @property
    def level(self) -> int:
        """Current degradation level (0 = normal, 1 = browned out)."""
        return self._level

    @property
    def active(self) -> bool:
        """True while the fleet is browned out."""
        return self._level > 0

    @property
    def name(self) -> str:
        """Human-readable controller name."""
        return type(self).__name__

    # -- per-step update ---------------------------------------------------------------

    def observe(self, snapshot: ClusterSnapshot) -> int:
        """Feed one step's fleet state; returns the level for this step."""
        queue_per_server = snapshot.queue_length / max(1, snapshot.num_servers)
        slots = snapshot.num_servers * self.sessions_per_server
        utilization = (
            snapshot.total_active_sessions / slots if slots > 0 else 1.0
        )
        pressure = (
            queue_per_server >= self.enter_queue_per_server
            or utilization >= self.enter_utilization
        )
        calm = (
            queue_per_server <= self.exit_queue_per_server
            and utilization <= self.exit_utilization
        )

        if self._level == 0:
            self._pressure_streak = self._pressure_streak + 1 if pressure else 0
            if self._pressure_streak >= self.enter_steps:
                self._level = 1
                self._pressure_streak = 0
                self._calm_streak = 0
        else:
            self._calm_streak = self._calm_streak + 1 if calm else 0
            if self._calm_streak >= self.exit_steps:
                self._level = 0
                self._pressure_streak = 0
                self._calm_streak = 0
        return self._level

    # -- degradation -------------------------------------------------------------------

    def degrade_request(self, request: TranscodingRequest) -> TranscodingRequest:
        """The request as served under brownout (relaxed FPS target)."""
        if self.fps_relax >= 1.0:
            return request
        return dataclasses.replace(
            request, target_fps=request.target_fps * self.fps_relax
        )
