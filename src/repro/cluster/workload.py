"""Dynamic workload generation: timestamped request arrivals for the cluster.

The paper's experiments start a fixed cohort of sessions at step 0; a
production transcoding service instead sees requests *arriving over time*.
This module turns composable traffic models into a deterministic stream of
:class:`WorkloadEvent` arrivals:

* :class:`PoissonTraffic` — stationary arrivals at a constant expected rate;
* :class:`DiurnalTraffic` — a day/night sinusoid over a base rate;
* :class:`FlashCrowdTraffic` — a transient burst multiplying the base rate
  inside a step window (a premiere, a failover, a viral event);
* :class:`CompositeTraffic` — the superposition of any of the above.

Arrival counts per step are Poisson draws with the model's instantaneous
rate, so the same ``(traffic, seed)`` pair always reproduces the identical
trace — a hard requirement for comparable fleet-sizing experiments.
"""

from __future__ import annotations

import abc
import dataclasses
import math
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.constants import DEFAULT_BANDWIDTH_MBPS, TARGET_FPS
from repro.errors import ClusterError
from repro.video.catalog import random_sequence
from repro.video.request import TranscodingRequest
from repro.video.sequence import ResolutionClass, VideoSequence

__all__ = [
    "TrafficModel",
    "PoissonTraffic",
    "DiurnalTraffic",
    "FlashCrowdTraffic",
    "CompositeTraffic",
    "WorkloadEvent",
    "WorkloadGenerator",
]


class TrafficModel(abc.ABC):
    """Expected arrival intensity as a function of the cluster step."""

    @abc.abstractmethod
    def rate(self, step: int) -> float:
        """Expected number of request arrivals during ``step`` (>= 0)."""


class PoissonTraffic(TrafficModel):
    """Stationary traffic: a constant expected arrival rate per step."""

    def __init__(self, rate_per_step: float) -> None:
        if rate_per_step < 0:
            raise ClusterError(f"rate_per_step must be >= 0, got {rate_per_step}")
        self.rate_per_step = float(rate_per_step)

    def rate(self, step: int) -> float:
        return self.rate_per_step


class DiurnalTraffic(TrafficModel):
    """Day/night sinusoid: ``base * (1 + amplitude * sin(2*pi*step/period))``.

    Parameters
    ----------
    base_rate:
        Mean arrival rate per step.
    amplitude:
        Relative swing in ``[0, 1]``; 1.0 drops the trough to zero traffic.
    period:
        Steps per full day/night cycle.
    phase:
        Fraction of a period by which the peak is shifted.
    """

    def __init__(
        self,
        base_rate: float,
        amplitude: float = 0.5,
        period: int = 200,
        phase: float = 0.0,
    ) -> None:
        if base_rate < 0:
            raise ClusterError(f"base_rate must be >= 0, got {base_rate}")
        if not 0.0 <= amplitude <= 1.0:
            raise ClusterError(f"amplitude must be in [0, 1], got {amplitude}")
        if period < 1:
            raise ClusterError(f"period must be >= 1, got {period}")
        self.base_rate = float(base_rate)
        self.amplitude = float(amplitude)
        self.period = int(period)
        self.phase = float(phase)

    def rate(self, step: int) -> float:
        angle = 2.0 * math.pi * (step / self.period + self.phase)
        return self.base_rate * (1.0 + self.amplitude * math.sin(angle))


class FlashCrowdTraffic(TrafficModel):
    """A transient burst: base traffic multiplied inside a step window."""

    def __init__(
        self,
        base_rate: float,
        peak_multiplier: float = 5.0,
        start: int = 0,
        duration: int = 50,
    ) -> None:
        if base_rate < 0:
            raise ClusterError(f"base_rate must be >= 0, got {base_rate}")
        if peak_multiplier < 1.0:
            raise ClusterError(
                f"peak_multiplier must be >= 1, got {peak_multiplier}"
            )
        if duration < 1:
            raise ClusterError(f"duration must be >= 1, got {duration}")
        self.base_rate = float(base_rate)
        self.peak_multiplier = float(peak_multiplier)
        self.start = int(start)
        self.duration = int(duration)

    def rate(self, step: int) -> float:
        if self.start <= step < self.start + self.duration:
            return self.base_rate * self.peak_multiplier
        return self.base_rate


class CompositeTraffic(TrafficModel):
    """Superposition of traffic models (rates add)."""

    def __init__(self, models: Sequence[TrafficModel]) -> None:
        if not models:
            raise ClusterError("CompositeTraffic needs at least one model")
        self.models = tuple(models)

    def rate(self, step: int) -> float:
        return sum(model.rate(step) for model in self.models)


@dataclasses.dataclass(frozen=True)
class WorkloadEvent:
    """One request arriving at the cluster.

    Attributes
    ----------
    arrival_step:
        Cluster step at which the request arrives.
    request:
        The transcoding request (user id, first video, FPS/bandwidth targets).
    playlist:
        Videos the session transcodes back-to-back (first is the request's).
    patience_steps:
        How many steps the user will wait in the admission queue before
        giving up.  ``None`` means infinite patience (the pre-overload
        behavior); queued requests past their patience are *dropped* by the
        cluster orchestrator, a ledger entry distinct from rejections.
    service_class:
        Label admission SLAs key on (stamped by the workload generator;
        defaults to the request's resolution class, e.g. ``"HR"``).
    """

    arrival_step: int
    request: TranscodingRequest
    playlist: tuple[VideoSequence, ...]
    patience_steps: Optional[int] = None
    service_class: str = ""

    def __post_init__(self) -> None:
        if self.patience_steps is not None and self.patience_steps < 0:
            raise ClusterError(
                f"patience_steps must be >= 0, got {self.patience_steps}"
            )
        if not self.service_class:
            object.__setattr__(
                self, "service_class", self.request.resolution_class.value
            )

    @property
    def total_frames(self) -> int:
        """Frames across the whole playlist."""
        return sum(len(video) for video in self.playlist)

    @property
    def deadline_step(self) -> Optional[int]:
        """Last step at which the request may still be admitted."""
        if self.patience_steps is None:
            return None
        return self.arrival_step + self.patience_steps

    def expired(self, step: int) -> bool:
        """True once the request has waited past its patience."""
        return self.patience_steps is not None and step > self.deadline_step


class WorkloadGenerator:
    """Deterministic stream of timestamped transcoding requests.

    Parameters
    ----------
    traffic:
        Arrival-intensity model.
    seed:
        Seeds both the arrival draws and the per-request content selection;
        identical ``(traffic parameters, seed)`` pairs yield identical traces.
    hr_fraction:
        Probability that an arriving request asks for an HR (1080p) video.
    playlist_videos:
        Videos per session playlist (Scenario-II style back-to-back viewing).
    frames_per_video:
        Length of every generated video.
    target_fps, bandwidth_mbps:
        QoS targets stamped on every request.
    patience_steps:
        Queue patience stamped on every event (``None`` = wait forever).
    patience_by_class:
        Per-:class:`~repro.video.sequence.ResolutionClass` patience
        overriding ``patience_steps`` — e.g. give HR premieres a deep
        deadline while LR traffic abandons quickly.
    """

    def __init__(
        self,
        traffic: TrafficModel,
        seed: int = 0,
        hr_fraction: float = 0.5,
        playlist_videos: int = 1,
        frames_per_video: int = 72,
        target_fps: float = TARGET_FPS,
        bandwidth_mbps: float = DEFAULT_BANDWIDTH_MBPS,
        patience_steps: Optional[int] = None,
        patience_by_class: Optional[Mapping[ResolutionClass, Optional[int]]] = None,
    ) -> None:
        if not 0.0 <= hr_fraction <= 1.0:
            raise ClusterError(f"hr_fraction must be in [0, 1], got {hr_fraction}")
        if playlist_videos < 1:
            raise ClusterError(f"playlist_videos must be >= 1, got {playlist_videos}")
        if frames_per_video < 1:
            raise ClusterError(
                f"frames_per_video must be >= 1, got {frames_per_video}"
            )
        if patience_steps is not None and patience_steps < 0:
            raise ClusterError(
                f"patience_steps must be >= 0, got {patience_steps}"
            )
        self.traffic = traffic
        self.seed = int(seed)
        self.hr_fraction = float(hr_fraction)
        self.playlist_videos = int(playlist_videos)
        self.frames_per_video = int(frames_per_video)
        self.target_fps = float(target_fps)
        self.bandwidth_mbps = float(bandwidth_mbps)
        self.patience_steps = patience_steps
        self.patience_by_class = (
            dict(patience_by_class) if patience_by_class is not None else {}
        )
        self._rng = np.random.default_rng(self.seed)
        self._next_user = 0
        self._consumed = False

    @property
    def consumed(self) -> bool:
        """True once the generator has produced any arrivals.

        The random stream advances as events are drawn, so a consumed
        generator no longer reproduces its trace from the start; build a
        fresh generator (same seed) for a comparable run.
        """
        return self._consumed

    def arrivals(self, step: int) -> list[WorkloadEvent]:
        """Requests arriving during ``step``.

        Consumes the generator's random stream: call with consecutive steps
        to reproduce a trace (or use :meth:`generate` for a whole trace).
        """
        rate = self.traffic.rate(step)
        if rate < 0:
            raise ClusterError(f"traffic model returned a negative rate at step {step}")
        self._consumed = True
        count = int(self._rng.poisson(rate))
        return [self._build_event(step) for _ in range(count)]

    def generate(self, duration: int) -> list[WorkloadEvent]:
        """The full arrival trace for ``duration`` steps."""
        if duration < 0:
            raise ClusterError(f"duration must be >= 0, got {duration}")
        events: list[WorkloadEvent] = []
        for step in range(duration):
            events.extend(self.arrivals(step))
        return events

    # -- internals -------------------------------------------------------------------

    def _build_event(self, step: int) -> WorkloadEvent:
        resolution_class = (
            ResolutionClass.HR
            if self._rng.random() < self.hr_fraction
            else ResolutionClass.LR
        )
        playlist = tuple(
            random_sequence(
                resolution_class, rng=self._rng, num_frames=self.frames_per_video
            )
            for _ in range(self.playlist_videos)
        )
        user_id = f"req-{self._next_user:05d}"
        self._next_user += 1
        request = TranscodingRequest(
            user_id=user_id,
            sequence=playlist[0],
            target_fps=self.target_fps,
            bandwidth_mbps=self.bandwidth_mbps,
        )
        patience = self.patience_by_class.get(resolution_class, self.patience_steps)
        return WorkloadEvent(
            arrival_step=step,
            request=request,
            playlist=playlist,
            patience_steps=patience,
            service_class=resolution_class.value,
        )
