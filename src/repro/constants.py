"""Constants shared across the MAMUT reproduction.

The values in this module mirror the experimental setup reported in the paper
(Section III and Section V-A):

* QP values explored by ``AGqp``: 22, 25, 27, 29, 32, 35, 37.
* Frequencies explored by ``AGdvfs``: 1.6, 1.9, 2.3, 2.6, 2.9, 3.2 GHz
  (the platform supports 1.2-3.2 GHz, but below 1.6 GHz real-time transcoding
  is not achievable and those points are discarded).
* Thread saturation: 12 threads for a 1080p (HR) video, 5 threads for an
  832x480 (LR) video.
* Target frame rate: 24 FPS.
* Agent periods: AGqp every 24 frames (offset 0), AGthread every 12 frames
  (offset 1), AGdvfs every 6 frames (offset 2).
"""

from __future__ import annotations

#: Quantization Parameter values available to the QP agent (paper Sec. III-B-a).
QP_VALUES: tuple[int, ...] = (22, 25, 27, 29, 32, 35, 37)

#: Frequencies (GHz) available to the DVFS agent (paper Sec. III-B-c).
DVFS_VALUES_GHZ: tuple[float, ...] = (1.6, 1.9, 2.3, 2.6, 2.9, 3.2)

#: Full platform frequency range (GHz), including points discarded by MAMUT.
PLATFORM_MIN_FREQ_GHZ: float = 1.2
PLATFORM_MAX_FREQ_GHZ: float = 3.2

#: Thread saturation points observed on the target platform (paper Sec. V-A).
HR_MAX_THREADS: int = 12
LR_MAX_THREADS: int = 5

#: Target frame rate used for QoS accounting (paper Sec. III-C).
TARGET_FPS: float = 24.0

#: Agent activation periods and offsets, in frames (paper Sec. III-B-d).
QP_AGENT_PERIOD: int = 24
QP_AGENT_OFFSET: int = 0
THREAD_AGENT_PERIOD: int = 12
THREAD_AGENT_OFFSET: int = 1
DVFS_AGENT_PERIOD: int = 6
DVFS_AGENT_OFFSET: int = 2

#: PSNR range considered acceptable for 8-bit lossy compression (paper Sec. III-C).
PSNR_MIN_DB: float = 30.0
PSNR_MAX_DB: float = 50.0

#: Bitrate state boundaries in Mbit/s (paper Sec. III-C, 3G bandwidth bands).
BITRATE_STATE_BOUNDS_MBPS: tuple[float, float] = (3.0, 6.0)

#: Default reinforcement-learning hyper-parameters (paper Sec. IV-B).
DEFAULT_BETA: float = 0.3
DEFAULT_BETA_PRIME: float = 0.2
DEFAULT_ALPHA_TH1: float = 0.1
DEFAULT_ALPHA_TH2: float = 0.05
DEFAULT_GAMMA: float = 0.6

#: Resolutions used in the evaluation (paper Sec. V-A).
HR_RESOLUTION: tuple[int, int] = (1920, 1080)
LR_RESOLUTION: tuple[int, int] = (832, 480)

#: HEVC Coding Tree Unit size used for Wavefront Parallel Processing rows.
CTU_SIZE: int = 64

#: Default server power cap in Watts used for the power state/constraint.
DEFAULT_POWER_CAP_W: float = 120.0

#: Default per-user bandwidth cap in Mbit/s (upper bitrate state boundary).
DEFAULT_BANDWIDTH_MBPS: float = 6.0
