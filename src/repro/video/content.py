"""Per-frame content models for synthetic video sequences.

Real video sequences exhibit two properties that matter for the MAMUT
controller:

* *spatial complexity* (texture) drives how many bits and encoding cycles a
  frame needs at a given QP, and how much PSNR is achievable;
* *temporal dynamism* (motion, scene changes) makes those quantities vary
  frame by frame, which is exactly the "noise" the multi-agent learner has to
  cope with (paper Sec. IV-A).

The :class:`ContentModel` generates a per-frame stream of
:class:`FrameContent` samples from a first-order autoregressive process with
occasional scene changes.  The process is fully determined by a seed so that
experiments are reproducible.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.errors import VideoError

__all__ = ["ContentProfile", "FrameContent", "ContentModel"]


@dataclasses.dataclass(frozen=True)
class ContentProfile:
    """Statistical description of a sequence's content.

    Attributes
    ----------
    complexity:
        Mean spatial complexity, a dimensionless scalar around 1.0.  Values
        above 1.0 describe highly textured content (more bits, more cycles,
        lower PSNR for a given QP); values below 1.0 describe flat content.
    motion:
        Mean temporal activity in ``[0, 1]``.  High motion increases encoding
        effort and bitrate and amplifies frame-to-frame variation.
    variability:
        Standard deviation of the frame-to-frame complexity fluctuations.
    scene_change_rate:
        Probability per frame of a scene change, which re-draws the local
        complexity level.
    """

    complexity: float = 1.0
    motion: float = 0.4
    variability: float = 0.08
    scene_change_rate: float = 0.004

    def __post_init__(self) -> None:
        if self.complexity <= 0:
            raise VideoError(f"complexity must be positive, got {self.complexity}")
        if not 0.0 <= self.motion <= 1.0:
            raise VideoError(f"motion must be in [0, 1], got {self.motion}")
        if self.variability < 0:
            raise VideoError(f"variability must be >= 0, got {self.variability}")
        if not 0.0 <= self.scene_change_rate <= 1.0:
            raise VideoError(
                f"scene_change_rate must be in [0, 1], got {self.scene_change_rate}"
            )


@dataclasses.dataclass(frozen=True)
class FrameContent:
    """Content descriptors of a single frame.

    Attributes
    ----------
    complexity:
        Instantaneous spatial complexity (dimensionless, ~0.4 .. ~2.0).
    motion:
        Instantaneous temporal activity in ``[0, 1]``.
    scene_change:
        True when this frame starts a new scene (intra-coded in a real
        encoder, therefore noticeably more expensive).
    """

    complexity: float
    motion: float
    scene_change: bool = False


class ContentModel:
    """Seeded generator of per-frame :class:`FrameContent` samples.

    The spatial complexity follows a mean-reverting AR(1) process around the
    profile mean; a scene change re-centres the process at a freshly drawn
    level.  Motion follows a slower AR(1) process bounded to ``[0, 1]``.

    Parameters
    ----------
    profile:
        The statistical profile of the sequence.
    seed:
        Seed of the private random generator; two models built with the same
        profile and seed produce identical streams.
    """

    #: AR(1) coefficient for the complexity process (close to 1 = smooth).
    _RHO_COMPLEXITY = 0.92
    #: AR(1) coefficient for the motion process.
    _RHO_MOTION = 0.97

    def __init__(self, profile: ContentProfile | None = None, seed: int = 0) -> None:
        self.profile = profile if profile is not None else ContentProfile()
        self.seed = int(seed)
        self._rng = np.random.default_rng(self.seed)
        self._level = self.profile.complexity
        self._current = self.profile.complexity
        self._motion = self.profile.motion

    def reset(self) -> None:
        """Rewind the generator to its initial, seed-determined state."""
        self._rng = np.random.default_rng(self.seed)
        self._level = self.profile.complexity
        self._current = self.profile.complexity
        self._motion = self.profile.motion

    def next_frame(self) -> FrameContent:
        """Generate the content descriptors of the next frame."""
        profile = self.profile
        scene_change = bool(self._rng.random() < profile.scene_change_rate)
        if scene_change:
            # A new scene re-draws the local complexity level around the mean.
            self._level = float(
                np.clip(
                    self._rng.normal(profile.complexity, 3.0 * profile.variability),
                    0.4,
                    2.0,
                )
            )
            self._current = self._level

        noise = self._rng.normal(0.0, profile.variability)
        self._current = (
            self._RHO_COMPLEXITY * self._current
            + (1.0 - self._RHO_COMPLEXITY) * self._level
            + noise * math.sqrt(1.0 - self._RHO_COMPLEXITY**2)
        )
        self._current = float(np.clip(self._current, 0.4, 2.0))

        motion_noise = self._rng.normal(0.0, 0.02 + 0.05 * profile.variability)
        self._motion = (
            self._RHO_MOTION * self._motion
            + (1.0 - self._RHO_MOTION) * profile.motion
            + motion_noise
        )
        self._motion = float(np.clip(self._motion, 0.0, 1.0))

        return FrameContent(
            complexity=self._current,
            motion=self._motion,
            scene_change=scene_change,
        )

    def generate(self, num_frames: int) -> list[FrameContent]:
        """Generate ``num_frames`` consecutive frame descriptors."""
        if num_frames < 0:
            raise VideoError(f"num_frames must be >= 0, got {num_frames}")
        return [self.next_frame() for _ in range(num_frames)]
