"""Video sequences and frames.

A :class:`VideoSequence` is the unit of work a transcoding user submits.  It
is a fully materialised list of :class:`Frame` objects (resolution + per-frame
content descriptors), mirroring a decoded JCT-VC test sequence.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Iterator, Sequence

from repro.constants import HR_RESOLUTION, LR_RESOLUTION
from repro.errors import VideoError
from repro.video.content import ContentModel, ContentProfile, FrameContent

__all__ = ["ResolutionClass", "Frame", "VideoSequence"]


class ResolutionClass(enum.Enum):
    """Resolution classes used throughout the paper's evaluation."""

    #: High resolution: 1920x1080 (JCT-VC class B).
    HR = "HR"
    #: Low resolution: 832x480 (JCT-VC class C).
    LR = "LR"

    @property
    def dimensions(self) -> tuple[int, int]:
        """(width, height) in pixels for this class."""
        return HR_RESOLUTION if self is ResolutionClass.HR else LR_RESOLUTION

    @classmethod
    def from_dimensions(cls, width: int, height: int) -> "ResolutionClass":
        """Classify an arbitrary resolution as HR or LR by pixel count."""
        hr_pixels = HR_RESOLUTION[0] * HR_RESOLUTION[1]
        lr_pixels = LR_RESOLUTION[0] * LR_RESOLUTION[1]
        pixels = width * height
        # Nearest class by pixel count; exact matches resolve trivially.
        return cls.HR if abs(pixels - hr_pixels) <= abs(pixels - lr_pixels) else cls.LR


@dataclasses.dataclass(frozen=True)
class Frame:
    """A single video frame to be transcoded.

    Attributes
    ----------
    index:
        Zero-based frame number within its sequence.
    width, height:
        Frame dimensions in pixels.
    content:
        Per-frame content descriptors from the sequence's content model.
    """

    index: int
    width: int
    height: int
    content: FrameContent

    @property
    def pixels(self) -> int:
        """Number of luma pixels in the frame."""
        return self.width * self.height

    @property
    def complexity(self) -> float:
        """Shortcut for the frame's spatial complexity."""
        return self.content.complexity

    @property
    def motion(self) -> float:
        """Shortcut for the frame's temporal activity."""
        return self.content.motion

    @property
    def is_scene_change(self) -> bool:
        """Whether this frame starts a new scene."""
        return self.content.scene_change


class VideoSequence:
    """A named, finite sequence of frames with homogeneous resolution.

    Parameters
    ----------
    name:
        Human-readable identifier (e.g. ``"Kimono"``).
    width, height:
        Frame dimensions in pixels.
    frame_rate:
        Source frame rate in frames per second; used for bitrate accounting.
    num_frames:
        Number of frames in the sequence.
    profile:
        Content profile used to generate per-frame descriptors.
    seed:
        Seed for the content model, making the sequence reproducible.
    """

    def __init__(
        self,
        name: str,
        width: int,
        height: int,
        frame_rate: float,
        num_frames: int,
        profile: ContentProfile | None = None,
        seed: int = 0,
    ) -> None:
        if width <= 0 or height <= 0:
            raise VideoError(f"invalid resolution {width}x{height}")
        if frame_rate <= 0:
            raise VideoError(f"frame_rate must be positive, got {frame_rate}")
        if num_frames <= 0:
            raise VideoError(f"num_frames must be positive, got {num_frames}")

        self.name = name
        self.width = int(width)
        self.height = int(height)
        self.frame_rate = float(frame_rate)
        self.profile = profile if profile is not None else ContentProfile()
        self.seed = int(seed)

        model = ContentModel(self.profile, seed=self.seed)
        self._frames: list[Frame] = [
            Frame(index=i, width=self.width, height=self.height, content=model.next_frame())
            for i in range(num_frames)
        ]

    # -- container protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._frames)

    def __iter__(self) -> Iterator[Frame]:
        return iter(self._frames)

    def __getitem__(self, index: int) -> Frame:
        return self._frames[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VideoSequence(name={self.name!r}, {self.width}x{self.height}, "
            f"{len(self)} frames @ {self.frame_rate} fps)"
        )

    # -- derived properties --------------------------------------------------

    @property
    def frames(self) -> Sequence[Frame]:
        """Immutable view of the frames of this sequence."""
        return tuple(self._frames)

    @property
    def resolution_class(self) -> ResolutionClass:
        """HR or LR classification of the sequence."""
        return ResolutionClass.from_dimensions(self.width, self.height)

    @property
    def pixels_per_frame(self) -> int:
        """Number of luma pixels per frame."""
        return self.width * self.height

    @property
    def duration_seconds(self) -> float:
        """Source duration of the sequence in seconds."""
        return len(self) / self.frame_rate

    @property
    def mean_complexity(self) -> float:
        """Average spatial complexity over the whole sequence."""
        return sum(f.complexity for f in self._frames) / len(self._frames)

    @property
    def mean_motion(self) -> float:
        """Average temporal activity over the whole sequence."""
        return sum(f.motion for f in self._frames) / len(self._frames)
