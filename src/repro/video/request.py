"""Transcoding requests submitted by users to the multi-user server."""

from __future__ import annotations

import dataclasses

from repro.constants import DEFAULT_BANDWIDTH_MBPS, TARGET_FPS
from repro.errors import VideoError
from repro.video.sequence import ResolutionClass, VideoSequence

__all__ = ["TranscodingRequest"]


@dataclasses.dataclass
class TranscodingRequest:
    """A user's request to transcode one video in real time.

    Attributes
    ----------
    user_id:
        Identifier of the requesting user (unique within an experiment).
    sequence:
        The video sequence to be transcoded.
    target_fps:
        The real-time throughput target; frames processed below this rate
        count as QoS violations (paper uses 24 FPS).
    bandwidth_mbps:
        The user's available downstream bandwidth; the produced bitrate must
        stay below this value (compression constraint).
    """

    user_id: str
    sequence: VideoSequence
    target_fps: float = TARGET_FPS
    bandwidth_mbps: float = DEFAULT_BANDWIDTH_MBPS

    def __post_init__(self) -> None:
        if self.target_fps <= 0:
            raise VideoError(f"target_fps must be positive, got {self.target_fps}")
        if self.bandwidth_mbps <= 0:
            raise VideoError(
                f"bandwidth_mbps must be positive, got {self.bandwidth_mbps}"
            )

    @property
    def resolution_class(self) -> ResolutionClass:
        """Resolution class (HR/LR) of the requested video."""
        return self.sequence.resolution_class

    @property
    def num_frames(self) -> int:
        """Number of frames to be transcoded."""
        return len(self.sequence)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TranscodingRequest(user={self.user_id!r}, "
            f"video={self.sequence.name!r} [{self.resolution_class.value}], "
            f"target={self.target_fps} fps, bw={self.bandwidth_mbps} Mb/s)"
        )
