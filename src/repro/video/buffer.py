"""Client-side playback buffer model.

The paper's throughput reward argues that frames encoded faster than the
target "can be buffered" and "used to compensate the overall framerate if, at
some points, FPS temporarily drops below the target" (Sec. III-D-a).  This
module models that client buffer explicitly so that experiments can report a
user-facing metric — playback stalls — in addition to the per-frame QoS
violation percentage.

The model: the client starts playback after ``startup_frames`` frames have
arrived, then consumes one frame every ``1/target_fps`` seconds; the server
delivers frames as they finish transcoding.  Whenever the buffer is empty at
consumption time, playback stalls until the next frame arrives.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

from repro.constants import TARGET_FPS
from repro.errors import VideoError
from repro.metrics.records import FrameRecord

__all__ = ["PlaybackStats", "PlaybackBuffer", "playback_stats_from_records"]


@dataclasses.dataclass(frozen=True)
class PlaybackStats:
    """Result of simulating playback of a transcoded stream.

    Attributes
    ----------
    frames:
        Number of frames played.
    stall_count:
        Number of distinct stall events (buffer underruns).
    stall_time_s:
        Total time spent stalled, excluding the initial startup delay.
    startup_delay_s:
        Time from the start of transcoding until playback began.
    playback_time_s:
        Total wall-clock time from playback start to the last frame shown.
    stall_ratio:
        ``stall_time_s / playback_time_s`` (0 when playback never started).
    max_buffer_frames:
        Largest number of frames that were ever queued in the buffer.
    """

    frames: int
    stall_count: int
    stall_time_s: float
    startup_delay_s: float
    playback_time_s: float
    stall_ratio: float
    max_buffer_frames: int


class PlaybackBuffer:
    """Simulates a fixed-rate consumer fed by variable-rate frame arrivals.

    Parameters
    ----------
    target_fps:
        Playback rate of the client.
    startup_frames:
        Frames that must be buffered before playback starts.
    """

    def __init__(self, target_fps: float = TARGET_FPS, startup_frames: int = 8) -> None:
        if target_fps <= 0:
            raise VideoError(f"target_fps must be positive, got {target_fps}")
        if startup_frames < 1:
            raise VideoError(f"startup_frames must be >= 1, got {startup_frames}")
        self.target_fps = float(target_fps)
        self.startup_frames = int(startup_frames)

    def simulate(self, frame_times_s: Sequence[float] | Iterable[float]) -> PlaybackStats:
        """Play a stream whose i-th frame took ``frame_times_s[i]`` to produce."""
        frame_times = [float(t) for t in frame_times_s]
        if not frame_times:
            raise VideoError("cannot simulate playback of an empty stream")
        if any(t <= 0 for t in frame_times):
            raise VideoError("frame production times must be positive")

        # Arrival time of each frame at the client (production is sequential).
        arrivals = []
        clock = 0.0
        for production_time in frame_times:
            clock += production_time
            arrivals.append(clock)

        frame_period = 1.0 / self.target_fps
        startup_index = min(self.startup_frames, len(arrivals)) - 1
        playback_start = arrivals[startup_index]

        stall_count = 0
        stall_time = 0.0
        next_play_time = playback_start
        in_stall = False
        max_buffered = 0

        for index, arrival in enumerate(arrivals):
            if arrival > next_play_time:
                # The frame is late: playback stalls until it arrives.
                stall_time += arrival - next_play_time
                if not in_stall:
                    stall_count += 1
                in_stall = True
                next_play_time = arrival + frame_period
            else:
                in_stall = False
                buffered = sum(1 for a in arrivals[index + 1:] if a <= next_play_time)
                max_buffered = max(max_buffered, buffered)
                next_play_time += frame_period

        last_play_time = next_play_time - frame_period
        playback_time = max(last_play_time - playback_start, frame_period)
        return PlaybackStats(
            frames=len(arrivals),
            stall_count=stall_count,
            stall_time_s=stall_time,
            startup_delay_s=playback_start,
            playback_time_s=playback_time,
            stall_ratio=stall_time / playback_time,
            max_buffer_frames=max_buffered,
        )


def playback_stats_from_records(
    records: Sequence[FrameRecord],
    target_fps: float | None = None,
    startup_frames: int = 8,
) -> PlaybackStats:
    """Playback statistics of one session's frame records.

    Uses each record's end-to-end processing time as the frame production
    time and the session's FPS target (or an explicit override) as the
    playback rate.
    """
    if not records:
        raise VideoError("cannot compute playback statistics without records")
    fps = target_fps if target_fps is not None else records[0].target_fps
    buffer = PlaybackBuffer(target_fps=fps, startup_frames=startup_frames)
    return buffer.simulate([record.encode_time_s for record in records])
