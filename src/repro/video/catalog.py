"""Synthetic stand-ins for the JCT-VC benchmark sequences.

The paper evaluates on JCT-VC class B (1920x1080, "HR") and class C (832x480,
"LR") sequences.  The real YUV files cannot be shipped nor decoded here, so
this module provides a catalog of synthetic sequences whose content profiles
are chosen to reflect the well-known character of each JCT-VC sequence
(e.g. *Kimono* is smooth and slow, *BQTerrace* is highly textured,
*RaceHorses* has strong motion).  Only the statistics matter to the
transcoder simulator, not the pixels.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

import numpy as np

from repro.constants import HR_RESOLUTION, LR_RESOLUTION
from repro.errors import VideoError
from repro.video.content import ContentProfile
from repro.video.sequence import ResolutionClass, VideoSequence

__all__ = [
    "CatalogEntry",
    "SEQUENCE_CATALOG",
    "hr_sequences",
    "lr_sequences",
    "make_sequence",
    "random_sequence",
]


@dataclasses.dataclass(frozen=True)
class CatalogEntry:
    """Description of one synthetic benchmark sequence.

    Attributes
    ----------
    name:
        JCT-VC sequence name this entry mimics.
    resolution_class:
        HR (class B, 1080p) or LR (class C, 832x480).
    frame_rate:
        Nominal source frame rate of the original sequence.
    num_frames:
        Default number of frames generated for the synthetic sequence.
    profile:
        Content profile approximating the original sequence's character.
    """

    name: str
    resolution_class: ResolutionClass
    frame_rate: float
    num_frames: int
    profile: ContentProfile


#: Catalog of synthetic JCT-VC-like sequences.
SEQUENCE_CATALOG: dict[str, CatalogEntry] = {
    # --- Class B, 1920x1080 ("HR") ---------------------------------------
    "Kimono": CatalogEntry(
        "Kimono", ResolutionClass.HR, 24.0, 240,
        ContentProfile(complexity=0.85, motion=0.35, variability=0.03, scene_change_rate=0.002),
    ),
    "ParkScene": CatalogEntry(
        "ParkScene", ResolutionClass.HR, 24.0, 240,
        ContentProfile(complexity=1.00, motion=0.30, variability=0.03, scene_change_rate=0.002),
    ),
    "Cactus": CatalogEntry(
        "Cactus", ResolutionClass.HR, 50.0, 500,
        ContentProfile(complexity=1.10, motion=0.45, variability=0.04, scene_change_rate=0.004),
    ),
    "BasketballDrive": CatalogEntry(
        "BasketballDrive", ResolutionClass.HR, 50.0, 500,
        ContentProfile(complexity=1.05, motion=0.70, variability=0.05, scene_change_rate=0.005),
    ),
    "BQTerrace": CatalogEntry(
        "BQTerrace", ResolutionClass.HR, 60.0, 600,
        ContentProfile(complexity=1.30, motion=0.40, variability=0.05, scene_change_rate=0.003),
    ),
    # --- Class C, 832x480 ("LR") ------------------------------------------
    "BasketballDrill": CatalogEntry(
        "BasketballDrill", ResolutionClass.LR, 50.0, 500,
        ContentProfile(complexity=1.00, motion=0.55, variability=0.04, scene_change_rate=0.004),
    ),
    "BQMall": CatalogEntry(
        "BQMall", ResolutionClass.LR, 60.0, 600,
        ContentProfile(complexity=1.10, motion=0.45, variability=0.04, scene_change_rate=0.004),
    ),
    "PartyScene": CatalogEntry(
        "PartyScene", ResolutionClass.LR, 50.0, 500,
        ContentProfile(complexity=1.35, motion=0.50, variability=0.05, scene_change_rate=0.005),
    ),
    "RaceHorses": CatalogEntry(
        "RaceHorses", ResolutionClass.LR, 30.0, 300,
        ContentProfile(complexity=1.15, motion=0.80, variability=0.06, scene_change_rate=0.006),
    ),
}


def make_sequence(
    name: str,
    num_frames: int | None = None,
    seed: int = 0,
) -> VideoSequence:
    """Instantiate a synthetic sequence from the catalog.

    Parameters
    ----------
    name:
        A key of :data:`SEQUENCE_CATALOG`.
    num_frames:
        Override the default number of frames (e.g. to run longer traces).
    seed:
        Content-model seed; the same (name, num_frames, seed) triple always
        yields an identical sequence.
    """
    try:
        entry = SEQUENCE_CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(SEQUENCE_CATALOG))
        raise VideoError(f"unknown sequence {name!r}; known sequences: {known}") from None
    width, height = entry.resolution_class.dimensions
    return VideoSequence(
        name=entry.name,
        width=width,
        height=height,
        frame_rate=entry.frame_rate,
        num_frames=num_frames if num_frames is not None else entry.num_frames,
        profile=entry.profile,
        seed=seed,
    )


def hr_sequences() -> list[str]:
    """Names of the HR (1080p, class B) sequences in the catalog."""
    return [
        name
        for name, entry in SEQUENCE_CATALOG.items()
        if entry.resolution_class is ResolutionClass.HR
    ]


def lr_sequences() -> list[str]:
    """Names of the LR (832x480, class C) sequences in the catalog."""
    return [
        name
        for name, entry in SEQUENCE_CATALOG.items()
        if entry.resolution_class is ResolutionClass.LR
    ]


def random_sequence(
    resolution_class: ResolutionClass,
    rng: np.random.Generator | int | None = None,
    num_frames: int | None = None,
) -> VideoSequence:
    """Pick a random catalog sequence of the requested resolution class.

    Used by Scenario II, where each initial video is followed by a sequence
    of randomly selected videos of the same resolution (paper Sec. V-C).

    Parameters
    ----------
    resolution_class:
        HR or LR.
    rng:
        A numpy Generator, an integer seed, or None for a fresh default
        generator.  The same generator also seeds the content model so that
        two draws of the same name still differ in content realisation.
    num_frames:
        Optional frame-count override.
    """
    if isinstance(rng, (int, np.integer)) or rng is None:
        rng = np.random.default_rng(rng)
    names = (
        hr_sequences() if resolution_class is ResolutionClass.HR else lr_sequences()
    )
    name = names[int(rng.integers(len(names)))]
    seed = int(rng.integers(2**31 - 1))
    return make_sequence(name, num_frames=num_frames, seed=seed)


def catalog_entries(resolution_class: ResolutionClass | None = None) -> Iterable[CatalogEntry]:
    """Iterate over catalog entries, optionally filtered by resolution class."""
    for entry in SEQUENCE_CATALOG.values():
        if resolution_class is None or entry.resolution_class is resolution_class:
            yield entry
