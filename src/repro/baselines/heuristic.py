"""Heuristic controller (adapted from Grellert et al. [19], paper Sec. V-A).

The heuristic adjusts one step at a time, every 6 frames (the same period as
MAMUT's fastest agent):

* **threads → FPS**: add a thread when the averaged FPS is below the target,
  remove one when it is comfortably above (the heuristic therefore ends up
  with the *minimum* thread count that meets the target, unlike MAMUT which
  spreads work over more threads at lower frequency);
* **QP → PSNR / bandwidth**: raise QP when the bitrate exceeds the user's
  bandwidth, lower it when there is both quality headroom and bandwidth slack;
* **DVFS → power**: reduce the frequency only when the package power reaches
  the cap, otherwise climb back towards the maximum frequency.

Frequency decisions are applied chip-wide (a conventional governor), which is
also why this approach burns more power than the learning controllers in the
paper's Table II.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.constants import (
    DEFAULT_BANDWIDTH_MBPS,
    DEFAULT_POWER_CAP_W,
    DVFS_VALUES_GHZ,
    HR_MAX_THREADS,
    TARGET_FPS,
)
from repro.core.actions import ActionSet, default_dvfs_actions, default_qp_actions
from repro.core.controller import Controller, Decision
from repro.core.observation import Observation, average_observations
from repro.errors import ConfigurationError
from repro.platform.dvfs import DvfsPolicy
from repro.video.request import TranscodingRequest
from repro.video.sequence import ResolutionClass

__all__ = ["HeuristicConfig", "HeuristicController"]


@dataclasses.dataclass
class HeuristicConfig:
    """Tuning knobs of the heuristic controller.

    Attributes
    ----------
    fps_target:
        Real-time target; FPS below it triggers a thread increase.
    fps_slack:
        FPS above ``fps_target + fps_slack`` triggers a thread decrease.
    psnr_target_db:
        Quality target; QP is lowered while PSNR is below it and bandwidth
        allows.
    bandwidth_mbps:
        The user's bandwidth; bitrates above it force QP up.
    bandwidth_headroom:
        Fraction of the bandwidth that must remain free before the heuristic
        dares to lower QP.
    power_cap_w:
        Package power cap; reaching it steps the frequency down.
    power_headroom_w:
        Power must be this far below the cap before the frequency is raised
        again.
    max_threads:
        Upper bound on the thread count (the resolution's saturation point).
    period:
        Frames between two heuristic adjustments (6, like MAMUT's fastest
        agent).
    initial_qp, initial_threads, initial_frequency_ghz:
        Starting configuration.
    """

    fps_target: float = TARGET_FPS
    fps_slack: float = 1.0
    psnr_target_db: float = 36.0
    bandwidth_mbps: float = DEFAULT_BANDWIDTH_MBPS
    bandwidth_headroom: float = 0.15
    power_cap_w: float = DEFAULT_POWER_CAP_W
    power_headroom_w: float = 2.0
    max_threads: int = HR_MAX_THREADS
    period: int = 6
    initial_qp: int = 32
    initial_threads: int = 4
    initial_frequency_ghz: float = DVFS_VALUES_GHZ[-1]

    def __post_init__(self) -> None:
        if self.fps_target <= 0 or self.fps_slack < 0:
            raise ConfigurationError("fps_target must be > 0 and fps_slack >= 0")
        if self.max_threads < 1:
            raise ConfigurationError(f"max_threads must be >= 1, got {self.max_threads}")
        if self.period < 1:
            raise ConfigurationError(f"period must be >= 1, got {self.period}")

    @classmethod
    def for_request(
        cls, request: TranscodingRequest, power_cap_w: float = DEFAULT_POWER_CAP_W
    ) -> "HeuristicConfig":
        """Derive a heuristic configuration from a transcoding request."""
        max_threads = (
            HR_MAX_THREADS
            if request.resolution_class is ResolutionClass.HR
            else 5
        )
        return cls(
            fps_target=request.target_fps,
            bandwidth_mbps=request.bandwidth_mbps,
            power_cap_w=power_cap_w,
            max_threads=max_threads,
        )


class HeuristicController(Controller):
    """Rule-based controller: threads→FPS, QP→PSNR/bandwidth, DVFS→power."""

    dvfs_policy = DvfsPolicy.CHIP_WIDE

    def __init__(self, config: HeuristicConfig | None = None) -> None:
        self.config = config if config is not None else HeuristicConfig()
        self._qp_actions: ActionSet[int] = default_qp_actions()
        self._dvfs_actions: ActionSet[float] = default_dvfs_actions()
        self._qp_index = self._qp_actions.closest_index(self.config.initial_qp)
        self._threads = min(self.config.initial_threads, self.config.max_threads)
        self._freq_index = self._dvfs_actions.closest_index(
            self.config.initial_frequency_ghz
        )
        self._observations: list[Observation] = []
        self._last_fps: Optional[float] = None
        self._last_threads_increased = False
        self._thread_hold = 0

    @property
    def name(self) -> str:
        return "Heuristic"

    def reset(self) -> None:
        """Clear the observation window; the operating point is kept."""
        self._observations.clear()
        self._last_fps = None
        self._last_threads_increased = False
        self._thread_hold = 0

    # -- Controller interface -------------------------------------------------------

    def decide(self, frame_index: int, observation: Optional[Observation]) -> Decision:
        if observation is not None:
            self._observations.append(observation)
        if frame_index % self.config.period == 0 and self._observations:
            self._adjust(average_observations(self._observations))
            self._observations.clear()
        return self._current_decision()

    # -- adjustment rules ------------------------------------------------------------

    def _adjust(self, obs: Observation) -> None:
        cfg = self.config
        # 1. Threads target the frame rate.  Under machine saturation adding
        # threads stops helping, so an increase that did not improve FPS is
        # rolled back and further increases are held off for a while ([19]'s
        # adaptive workload scheme behaves the same way; without this the
        # controller would pointlessly pin the thread count at its maximum).
        if self._last_threads_increased and self._last_fps is not None:
            if obs.fps < self._last_fps + 0.5:
                self._threads = max(1, self._threads - 1)
                self._thread_hold = 4
            self._last_threads_increased = False

        if self._thread_hold > 0:
            self._thread_hold -= 1
        elif obs.fps < cfg.fps_target and self._threads < cfg.max_threads:
            self._threads += 1
            self._last_threads_increased = True
        elif obs.fps > cfg.fps_target + cfg.fps_slack and self._threads > 1:
            self._threads -= 1
        self._last_fps = obs.fps

        # 2. QP targets PSNR subject to the bandwidth constraint.
        if obs.bitrate_mbps > cfg.bandwidth_mbps:
            self._qp_index = self._qp_actions.clamp_index(self._qp_index + 1)
        elif (
            obs.psnr_db < cfg.psnr_target_db
            and obs.bitrate_mbps < (1.0 - cfg.bandwidth_headroom) * cfg.bandwidth_mbps
        ):
            self._qp_index = self._qp_actions.clamp_index(self._qp_index - 1)

        # 3. DVFS reacts to the power cap only.
        if obs.power_w >= cfg.power_cap_w:
            self._freq_index = self._dvfs_actions.clamp_index(self._freq_index - 1)
        elif obs.power_w < cfg.power_cap_w - cfg.power_headroom_w:
            self._freq_index = self._dvfs_actions.clamp_index(self._freq_index + 1)

    def _current_decision(self) -> Decision:
        return Decision(
            qp=self._qp_actions[self._qp_index],
            threads=self._threads,
            frequency_ghz=self._dvfs_actions[self._freq_index],
        )
