"""Baseline controllers the paper compares MAMUT against.

* :class:`~repro.baselines.monoagent.MonoAgentController` — the adapted
  mono-agent Q-learning approach of [8]: a single agent over a coarsened
  joint (QP, threads, frequency) action space, acting every 6 frames.
* :class:`~repro.baselines.heuristic.HeuristicController` — the adaptive
  workload-management heuristic of [19]: threads target FPS, QP targets
  PSNR under the bandwidth constraint, DVFS reacts to the power cap.
* :class:`~repro.baselines.static.StaticController` — a fixed configuration,
  useful as a sanity baseline and for the Fig. 2 characterisation sweeps.
"""

from repro.baselines.monoagent import MonoAgentConfig, MonoAgentController
from repro.baselines.heuristic import HeuristicConfig, HeuristicController
from repro.baselines.static import StaticController

__all__ = [
    "MonoAgentConfig",
    "MonoAgentController",
    "HeuristicConfig",
    "HeuristicController",
    "StaticController",
]
