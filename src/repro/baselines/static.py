"""Static controller: a fixed (QP, threads, frequency) configuration.

Not one of the paper's comparison points, but indispensable as a substrate:
the Fig. 2 characterisation sweeps are static configurations, and a fixed
operating point is the natural sanity baseline for the learning controllers.
"""

from __future__ import annotations

from typing import Optional

from repro.core.controller import Controller, Decision
from repro.core.observation import Observation
from repro.platform.dvfs import DvfsPolicy

__all__ = ["StaticController"]


class StaticController(Controller):
    """Always returns the same decision.

    Parameters
    ----------
    qp, threads, frequency_ghz:
        The fixed configuration.
    dvfs_policy:
        Whether the fixed frequency is applied per-core or chip-wide
        (chip-wide by default, matching how a manually configured encoder run
        behaves on a stock governor).
    """

    def __init__(
        self,
        qp: int,
        threads: int,
        frequency_ghz: float,
        dvfs_policy: DvfsPolicy = DvfsPolicy.CHIP_WIDE,
    ) -> None:
        self._decision = Decision(qp=qp, threads=threads, frequency_ghz=frequency_ghz)
        self.dvfs_policy = dvfs_policy

    @property
    def name(self) -> str:
        return "Static"

    def decide(self, frame_index: int, observation: Optional[Observation]) -> Decision:
        return self._decision
