"""Mono-agent Q-learning baseline (adapted from [8], paper Sec. V-A).

A single Q-learning agent controls the *joint* (QP, threads, frequency)
action space.  Because the full joint space is combinatorially large, the
paper's authors train it on a representative subset spanning the same ranges
with coarser granularity; this module does the same (3 QP values x 3 thread
counts x 3 frequencies by default).  The agent acts every 6 frames — the
period of MAMUT's fastest agent — and uses the conventional visit-count
learning rate (the peer term of Eq. 3 does not apply to a single agent).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.constants import (
    DEFAULT_ALPHA_TH1,
    DEFAULT_ALPHA_TH2,
    DEFAULT_BETA,
    DEFAULT_GAMMA,
    DEFAULT_POWER_CAP_W,
    DVFS_VALUES_GHZ,
    QP_VALUES,
)
from repro.core.actions import ActionSet
from repro.core.agent import QLearningAgent
from repro.core.controller import Controller, Decision
from repro.core.learning_rate import LearningRateParameters
from repro.core.observation import Observation, average_observations
from repro.core.phases import Phase
from repro.core.rewards import RewardConfig, RewardFunction
from repro.core.states import StateSpace, SystemState
from repro.errors import ConfigurationError
from repro.platform.dvfs import DvfsPolicy
from repro.video.request import TranscodingRequest
from repro.video.sequence import ResolutionClass

__all__ = ["MonoAgentConfig", "MonoAgentController"]

#: Coarse subsets spanning the same ranges as MAMUT's action sets (Sec. V-A).
DEFAULT_MONO_QP_VALUES: tuple[int, ...] = (QP_VALUES[0], QP_VALUES[3], QP_VALUES[-1])
DEFAULT_MONO_FREQ_VALUES: tuple[float, ...] = (
    DVFS_VALUES_GHZ[0],
    DVFS_VALUES_GHZ[2],
    DVFS_VALUES_GHZ[-1],
)


def _default_thread_values(max_threads: int) -> tuple[int, ...]:
    """Three thread counts spanning 1..max_threads."""
    if max_threads <= 3:
        return tuple(range(1, max_threads + 1))
    return (1, (1 + max_threads) // 2, max_threads)


@dataclasses.dataclass
class MonoAgentConfig:
    """Configuration of the mono-agent baseline.

    Attributes
    ----------
    qp_values, thread_values, frequency_values:
        The coarse per-dimension grids whose Cartesian product forms the
        joint action space.
    reward:
        Same reward shaping as MAMUT.
    state_space:
        Same state discretisation as MAMUT.
    gamma:
        Discount factor.
    beta, alpha_th1, alpha_th2:
        Visit-count learning-rate constant and the phase thresholds.
    period:
        Frames between two agent activations (6, as in the paper).
    seed:
        Exploration randomness seed.
    """

    qp_values: Sequence[int] = DEFAULT_MONO_QP_VALUES
    thread_values: Sequence[int] = (1, 6, 12)
    frequency_values: Sequence[float] = DEFAULT_MONO_FREQ_VALUES
    reward: RewardConfig = dataclasses.field(default_factory=RewardConfig)
    state_space: StateSpace = dataclasses.field(default_factory=StateSpace)
    gamma: float = DEFAULT_GAMMA
    beta: float = DEFAULT_BETA
    alpha_th1: float = DEFAULT_ALPHA_TH1
    alpha_th2: float = DEFAULT_ALPHA_TH2
    period: int = 6
    exploration_epsilon: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ConfigurationError(f"period must be >= 1, got {self.period}")
        if not self.qp_values or not self.thread_values or not self.frequency_values:
            raise ConfigurationError("all action-value grids must be non-empty")

    @classmethod
    def for_request(
        cls,
        request: TranscodingRequest,
        power_cap_w: float = DEFAULT_POWER_CAP_W,
        seed: int = 0,
    ) -> "MonoAgentConfig":
        """Derive a mono-agent configuration from a transcoding request."""
        max_threads = 12 if request.resolution_class is ResolutionClass.HR else 5
        reward = RewardConfig(
            fps_target=request.target_fps,
            bandwidth_mbps=request.bandwidth_mbps,
            power_cap_w=power_cap_w,
        )
        state_space = StateSpace(
            fps_target=request.target_fps,
            bitrate_edges_mbps=(request.bandwidth_mbps / 2.0, request.bandwidth_mbps),
            power_cap_w=power_cap_w,
        )
        return cls(
            thread_values=_default_thread_values(max_threads),
            reward=reward,
            state_space=state_space,
            seed=seed,
        )

    def joint_actions(self) -> ActionSet[tuple[int, int, float]]:
        """The joint action set: every (QP, threads, frequency) combination."""
        combinations = [
            (int(qp), int(threads), float(freq))
            for qp in self.qp_values
            for threads in self.thread_values
            for freq in self.frequency_values
        ]
        return ActionSet("joint", combinations)


class MonoAgentController(Controller):
    """Single Q-learning agent over the joint coarse action space."""

    dvfs_policy = DvfsPolicy.PER_CORE

    def __init__(self, config: MonoAgentConfig | None = None) -> None:
        self.config = config if config is not None else MonoAgentConfig()
        self.state_space = self.config.state_space
        self.reward_function = RewardFunction(self.config.reward)
        actions = self.config.joint_actions()
        # A single agent has no peers, so the cross-agent term of Eq. 3 must
        # vanish (beta_prime = 0) or the agent would never leave exploration.
        learning_params = LearningRateParameters(
            beta=self.config.beta,
            beta_prime=0.0,
            alpha_th1=self.config.alpha_th1,
            alpha_th2=self.config.alpha_th2,
        )
        self.agent = QLearningAgent(
            "joint",
            actions,
            gamma=self.config.gamma,
            learning_rate_params=learning_params,
            seed=self.config.seed,
            exploration_epsilon=self.config.exploration_epsilon,
            state_space=self.state_space,
        )
        self._current_index = self._initial_action_index(actions)
        self._pending: Optional[tuple[SystemState, int]] = None
        self._observations: list[Observation] = []

    @property
    def name(self) -> str:
        return "MonoAgent"

    def reset(self) -> None:
        """Clear per-video transient state; the Q-table is kept."""
        self._pending = None
        self._observations.clear()

    # -- Controller interface ----------------------------------------------------------

    def decide(self, frame_index: int, observation: Optional[Observation]) -> Decision:
        if observation is not None:
            self._observations.append(observation)
        if frame_index % self.config.period == 0 and self._observations:
            self._act()
        return self._current_decision()

    # -- internals -----------------------------------------------------------------------

    def _act(self) -> None:
        averaged = average_observations(self._observations)
        state = self.state_space.discretize(averaged)

        if self._pending is not None:
            previous_state, previous_action = self._pending
            reward = self.reward_function.total(averaged)
            self.agent.update(previous_state, previous_action, reward, state, [])

        phase = self.agent.phase(state, [])
        if phase is Phase.EXPLORATION:
            action = self.agent.select_exploration_action(state, current=self._current_index)
        else:
            action = self.agent.select_greedy_action(state, current=self._current_index)

        self._current_index = action
        self._pending = (state, action)
        self._observations.clear()

    def _current_decision(self) -> Decision:
        qp, threads, frequency = self.agent.actions[self._current_index]
        return Decision(qp=qp, threads=threads, frequency_ghz=frequency)

    @staticmethod
    def _initial_action_index(actions: ActionSet[tuple[int, int, float]]) -> int:
        """Start from the middle QP with the most threads at the highest frequency."""
        best_index = 0
        best_key = None
        for index, (qp, threads, frequency) in enumerate(actions):
            key = (threads, frequency, -abs(qp - 30))
            if best_key is None or key > best_key:
                best_key = key
                best_index = index
        return best_index
