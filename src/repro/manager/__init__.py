"""Multi-user management: sessions, orchestration, scenarios, experiments.

This package glues the substrates together into the paper's experimental
setup: every user gets a :class:`~repro.manager.session.TranscodingSession`
(video playlist + controller + transcoder), the
:class:`~repro.manager.orchestrator.Orchestrator` advances all sessions
frame-by-frame on a shared :class:`~repro.platform.server.MulticoreServer`,
the scenario builders reproduce Scenario I and Scenario II of Sec. V, and the
:class:`~repro.manager.runner.ExperimentRunner` repeats runs and aggregates
the metrics the paper reports.
"""

from repro.manager.session import TranscodingSession
from repro.manager.orchestrator import Orchestrator, OrchestratorResult
from repro.manager.scenario import SessionSpec, scenario_one, scenario_two
from repro.manager.factories import (
    heuristic_factory,
    mamut_factory,
    monoagent_factory,
    static_factory,
)
from repro.manager.runner import AveragedResult, ExperimentRunner
from repro.manager.pretrain import pretrain_mamut, pretrained_mamut_factory

__all__ = [
    "TranscodingSession",
    "Orchestrator",
    "OrchestratorResult",
    "SessionSpec",
    "scenario_one",
    "scenario_two",
    "mamut_factory",
    "monoagent_factory",
    "heuristic_factory",
    "static_factory",
    "ExperimentRunner",
    "AveragedResult",
    "pretrain_mamut",
    "pretrained_mamut_factory",
]
