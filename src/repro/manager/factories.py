"""Controller factories used by the experiment runner.

A *controller factory* is a callable ``(request, seed) -> Controller``; the
runner calls it once per session per repetition so that every session gets
its own controller instance (each video stream has its own agents, as in the
paper) and every repetition gets fresh exploration randomness.
"""

from __future__ import annotations

from typing import Callable

from repro.baselines.heuristic import HeuristicConfig, HeuristicController
from repro.baselines.monoagent import MonoAgentConfig, MonoAgentController
from repro.baselines.static import StaticController
from repro.constants import DEFAULT_POWER_CAP_W
from repro.core.config import MamutConfig
from repro.core.controller import Controller
from repro.core.mamut import MamutController
from repro.video.request import TranscodingRequest

__all__ = [
    "ControllerFactory",
    "mamut_factory",
    "monoagent_factory",
    "heuristic_factory",
    "static_factory",
]

ControllerFactory = Callable[[TranscodingRequest, int], Controller]


def mamut_factory(
    power_cap_w: float = DEFAULT_POWER_CAP_W, record_history: bool = False
) -> ControllerFactory:
    """Factory producing :class:`~repro.core.mamut.MamutController` instances."""

    def build(request: TranscodingRequest, seed: int) -> Controller:
        config = MamutConfig.for_request(
            request,
            power_cap_w=power_cap_w,
            seed=seed,
            record_history=record_history,
        )
        return MamutController(config)

    return build


def monoagent_factory(power_cap_w: float = DEFAULT_POWER_CAP_W) -> ControllerFactory:
    """Factory producing mono-agent Q-learning controllers."""

    def build(request: TranscodingRequest, seed: int) -> Controller:
        config = MonoAgentConfig.for_request(request, power_cap_w=power_cap_w, seed=seed)
        return MonoAgentController(config)

    return build


def heuristic_factory(power_cap_w: float = DEFAULT_POWER_CAP_W) -> ControllerFactory:
    """Factory producing heuristic controllers."""

    def build(request: TranscodingRequest, seed: int) -> Controller:
        config = HeuristicConfig.for_request(request, power_cap_w=power_cap_w)
        return HeuristicController(config)

    return build


def static_factory(qp: int, threads: int, frequency_ghz: float) -> ControllerFactory:
    """Factory producing fixed-configuration controllers."""

    def build(request: TranscodingRequest, seed: int) -> Controller:
        return StaticController(qp=qp, threads=threads, frequency_ghz=frequency_ghz)

    return build
