"""A transcoding session: one user's playlist, controller and transcoder.

The orchestrator drives sessions with a two-phase protocol per step:

1. :meth:`TranscodingSession.prepare` asks the controller for the next
   frame's configuration and returns the resource demand the server needs
   for its allocation;
2. :meth:`TranscodingSession.execute` transcodes the frame under the granted
   contention scale and server power, records the measurements, and advances
   to the next frame (or the next video of the playlist).

The batch stepping engine (:mod:`repro.cluster.batch`) uses a parallel pair
of hooks instead: :meth:`TranscodingSession.peek_decision` runs only the
controller (the per-session half of ``prepare``; the transcode math is
evaluated fleet-wide in one NumPy batch), and
:meth:`TranscodingSession.commit_step_result` applies the externally
computed measurements with exactly the bookkeeping ``execute`` performs.
Sessions whose controller is advanced by the batch engine's vectorized
MAMUT driver skip the peek entirely and close each step through
:meth:`TranscodingSession.commit_driven_step`.  The protocols cannot be
interleaved within one step.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.controller import Controller, Decision
from repro.core.observation import Observation
from repro.errors import ScenarioError
from repro.hevc.params import EncoderConfig, Preset
from repro.hevc.transcoder import Transcoder
from repro.metrics.records import FrameRecord
from repro.platform.server import SessionDemand
from repro.video.request import TranscodingRequest
from repro.video.sequence import ResolutionClass, VideoSequence

__all__ = ["TranscodingSession"]

#: Presets used in the paper's evaluation (Sec. V-A).
HR_PRESET = Preset.ULTRAFAST
LR_PRESET = Preset.SLOW


class TranscodingSession:
    """State of one user's transcoding work on the server.

    Parameters
    ----------
    request:
        The user's transcoding request (first video, target FPS, bandwidth).
    controller:
        The run-time manager deciding QP/threads/frequency for this session.
    playlist:
        Videos to transcode back-to-back; defaults to the request's sequence
        only.  Scenario II uses playlists of five videos per user.
    transcoder:
        The decoder+encoder pipeline; a default-calibrated one is created
        when omitted.
    preset:
        Encoder preset; defaults to the paper's choice per resolution class
        (ultrafast for HR, slow for LR).
    start_frame_index:
        First frame of the playlist's first video to transcode; defaults
        to 0.  The cluster's checkpointed crash recovery dispatches retry
        sessions from the last checkpointed frame of the interrupted video
        instead of replaying it from the start.
    """

    def __init__(
        self,
        request: TranscodingRequest,
        controller: Controller,
        playlist: Optional[Sequence[VideoSequence]] = None,
        transcoder: Optional[Transcoder] = None,
        preset: Optional[Preset] = None,
        start_frame_index: int = 0,
    ) -> None:
        self.request = request
        self.controller = controller
        self.playlist: list[VideoSequence] = (
            list(playlist) if playlist is not None else [request.sequence]
        )
        if not self.playlist:
            raise ScenarioError(f"session {request.user_id!r} has an empty playlist")
        if not 0 <= start_frame_index < len(self.playlist[0]):
            raise ScenarioError(
                f"start_frame_index {start_frame_index} outside first video "
                f"of session {request.user_id!r} ({len(self.playlist[0])} frames)"
            )
        self.transcoder = transcoder if transcoder is not None else Transcoder()
        self._preset_override = preset

        self.records: list[FrameRecord] = []
        self.last_observation: Optional[Observation] = None
        self._video_index = 0
        self._frame_index = start_frame_index
        self._step = 0
        self._pending: Optional[tuple[Decision, Optional[EncoderConfig]]] = None

    # -- identity / progress --------------------------------------------------------

    @property
    def session_id(self) -> str:
        """Identifier of the session (the requesting user's id)."""
        return self.request.user_id

    @property
    def active(self) -> bool:
        """True while there are frames left to transcode."""
        return self._video_index < len(self.playlist)

    @property
    def current_video(self) -> VideoSequence:
        """The video currently being transcoded."""
        if not self.active:
            raise ScenarioError(f"session {self.session_id!r} has finished")
        return self.playlist[self._video_index]

    @property
    def step(self) -> int:
        """Number of frames transcoded so far (across the whole playlist)."""
        return self._step

    @property
    def video_index(self) -> int:
        """Index of the current video within the playlist."""
        return self._video_index

    @property
    def frame_index(self) -> int:
        """Index of the next frame within the current video."""
        return self._frame_index

    @property
    def total_frames(self) -> int:
        """Total frames across the playlist."""
        return sum(len(video) for video in self.playlist)

    def terminate(self) -> None:
        """Kill the session in place (its server crashed mid-playlist).

        Marks the playlist as exhausted and discards any half-stepped
        decision, so the session reads as finished (``active`` False) and
        is pruned from its orchestrator's active roster without ever being
        stepped again.  Records already transcoded are kept — the crashed
        server's partial work stays in the ledger.  Used by the cluster's
        failure-recovery path; the salvaged remainder of the playlist is
        re-dispatched as a fresh session.
        """
        self._video_index = len(self.playlist)
        self._frame_index = 0
        self._pending = None

    def preset_for(self, video: VideoSequence) -> Preset:
        """Encoder preset used for a given video."""
        if self._preset_override is not None:
            return self._preset_override
        return (
            HR_PRESET if video.resolution_class is ResolutionClass.HR else LR_PRESET
        )

    # -- two-phase step protocol -------------------------------------------------------

    def prepare(self) -> SessionDemand:
        """Ask the controller for the next frame's configuration.

        Returns the resource demand the orchestrator hands to the server.
        Must be followed by exactly one :meth:`execute` call.
        """
        if not self.active:
            raise ScenarioError(f"session {self.session_id!r} has finished")
        if self._pending is not None:
            raise ScenarioError("prepare() called twice without execute()")

        video = self.current_video
        frame = video[self._frame_index]
        decision = self.controller.decide(self._step, self.last_observation)
        config = EncoderConfig(
            qp=decision.qp,
            threads=decision.threads,
            preset=self.preset_for(video),
        )
        activity = self.transcoder.activity_factor(frame, config)
        self._pending = (decision, config)
        return SessionDemand(
            session_id=self.session_id,
            threads=decision.threads,
            frequency_ghz=decision.frequency_ghz,
            activity=activity,
        )

    def peek_decision(self) -> Decision:
        """Batch-engine half of :meth:`prepare`: run only the controller.

        The resource demand and the transcode math are evaluated fleet-wide
        by the batch stepper; this method just advances the controller (so
        its exploration randomness and Q updates happen in exactly the same
        order as under :meth:`prepare`) and records the pending decision.
        Must be followed by exactly one :meth:`commit_step_result` call.
        """
        if not self.active:
            raise ScenarioError(f"session {self.session_id!r} has finished")
        if self._pending is not None:
            raise ScenarioError("peek_decision() called twice without commit")

        decision = self.controller.decide(self._step, self.last_observation)
        self._pending = (decision, None)
        return decision

    def commit_step_result(
        self, record: FrameRecord, observation: Observation
    ) -> None:
        """Batch-engine half of :meth:`execute`: apply precomputed results.

        Performs the same bookkeeping as :meth:`execute` — records the frame,
        updates the controller's observation, advances the playlist.  The
        record and observation are built by the batch stepper from the
        fleet-wide evaluation (their fields match what :meth:`execute` would
        have produced; the equivalence tests enforce this).
        """
        if self._pending is None or self._pending[1] is not None:
            raise ScenarioError(
                "commit_step_result() called without a preceding peek_decision()"
            )
        self._pending = None
        self.records.append(record)
        self.last_observation = observation
        self._step += 1
        self._advance_frame()

    def commit_driven_step(
        self, record: FrameRecord, observation: Observation
    ) -> None:
        """Batch-engine step for driver-managed controllers.

        The batch stepper's vectorized MAMUT driver advances the controller
        out-of-band (fleet-wide averaging/discretisation/reward plus
        per-session action selection), so there is no per-session
        ``peek_decision`` call; this performs the same bookkeeping as
        :meth:`commit_step_result` while enforcing that no two-phase step is
        in flight.
        """
        if not self.active:
            raise ScenarioError(f"session {self.session_id!r} has finished")
        if self._pending is not None:
            raise ScenarioError(
                "commit_driven_step() with a prepare()/peek_decision() in flight"
            )
        self.records.append(record)
        self.last_observation = observation
        self._step += 1
        self._advance_frame()

    def execute(self, contention_scale: float, server_power_w: float) -> FrameRecord:
        """Transcode the prepared frame under the server's allocation."""
        if self._pending is None:
            raise ScenarioError("execute() called without a preceding prepare()")
        decision, config = self._pending
        if config is None:
            raise ScenarioError(
                "execute() called after peek_decision(); finish the step with "
                "commit_step_result() instead"
            )
        self._pending = None

        video = self.current_video
        frame = video[self._frame_index]
        result = self.transcoder.transcode_frame(
            frame,
            config,
            frequency_ghz=decision.frequency_ghz,
            contention_scale=contention_scale,
        )

        observation = Observation(
            fps=result.fps,
            psnr_db=result.psnr_db,
            bitrate_mbps=result.bitrate_mbps,
            power_w=server_power_w,
        )
        record = FrameRecord(
            session_id=self.session_id,
            step=self._step,
            video_name=video.name,
            frame_index=frame.index,
            resolution_class=video.resolution_class,
            qp=decision.qp,
            threads=decision.threads,
            frequency_ghz=decision.frequency_ghz,
            fps=result.fps,
            psnr_db=result.psnr_db,
            bitrate_mbps=result.bitrate_mbps,
            encode_time_s=result.total_time_s,
            power_w=server_power_w,
            target_fps=self.request.target_fps,
        )

        self.records.append(record)
        self.last_observation = observation
        self._step += 1
        self._advance_frame()
        return record

    def _advance_frame(self) -> None:
        self._frame_index += 1
        if self._frame_index >= len(self.playlist[self._video_index]):
            self._frame_index = 0
            self._video_index += 1
            # A new video starts: clear the controller's per-video transient
            # state while keeping its learned knowledge (Scenario II).
            if self.active:
                self.controller.reset()
