"""Scenario builders reproducing the paper's two evaluation scenarios.

* **Scenario I** (Sec. V-B): a fixed number of HR and LR videos of different
  contents are served simultaneously; each user transcodes exactly one video.
* **Scenario II** (Sec. V-C): batches of transcoding requests with variable
  resolution requirements; each initial video is followed by a sequence of
  four randomly selected videos of the same resolution, emulating users
  coming and going.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

import numpy as np

from repro.constants import DEFAULT_BANDWIDTH_MBPS, TARGET_FPS
from repro.errors import ScenarioError
from repro.video.catalog import hr_sequences, lr_sequences, make_sequence, random_sequence
from repro.video.request import TranscodingRequest
from repro.video.sequence import ResolutionClass, VideoSequence

__all__ = ["SessionSpec", "scenario_one", "scenario_two"]


@dataclasses.dataclass(frozen=True)
class SessionSpec:
    """One user's workload in a scenario.

    Attributes
    ----------
    request:
        The transcoding request (carries user id, FPS target and bandwidth).
    playlist:
        The videos the user transcodes back-to-back; the first entry is the
        request's own sequence.
    """

    request: TranscodingRequest
    playlist: tuple[VideoSequence, ...]

    def __post_init__(self) -> None:
        if not self.playlist:
            raise ScenarioError("a session spec needs at least one video")

    @property
    def resolution_class(self) -> ResolutionClass:
        """Resolution class of the user's videos."""
        return self.request.resolution_class

    @property
    def total_frames(self) -> int:
        """Total number of frames across the playlist."""
        return sum(len(video) for video in self.playlist)


def _build_request(
    user_id: str,
    sequence: VideoSequence,
    target_fps: float,
    bandwidth_mbps: float,
) -> TranscodingRequest:
    return TranscodingRequest(
        user_id=user_id,
        sequence=sequence,
        target_fps=target_fps,
        bandwidth_mbps=bandwidth_mbps,
    )


def scenario_one(
    num_hr: int,
    num_lr: int,
    num_frames: int = 480,
    seed: int = 0,
    target_fps: float = TARGET_FPS,
    bandwidth_mbps: float = DEFAULT_BANDWIDTH_MBPS,
) -> list[SessionSpec]:
    """Scenario I: ``num_hr`` HR videos and ``num_lr`` LR videos, one each per user.

    Videos are drawn from the catalog round-robin (different contents per
    user) with per-user content seeds, and truncated/extended to
    ``num_frames`` frames so all users finish together.
    """
    if num_hr < 0 or num_lr < 0 or num_hr + num_lr == 0:
        raise ScenarioError("scenario I needs at least one video")
    if num_frames < 1:
        raise ScenarioError(f"num_frames must be >= 1, got {num_frames}")

    specs: list[SessionSpec] = []
    hr_names = hr_sequences()
    lr_names = lr_sequences()
    for i in range(num_hr):
        name = hr_names[i % len(hr_names)]
        sequence = make_sequence(name, num_frames=num_frames, seed=seed + i)
        request = _build_request(f"hr-{i}", sequence, target_fps, bandwidth_mbps)
        specs.append(SessionSpec(request=request, playlist=(sequence,)))
    for i in range(num_lr):
        name = lr_names[i % len(lr_names)]
        sequence = make_sequence(name, num_frames=num_frames, seed=seed + 100 + i)
        request = _build_request(f"lr-{i}", sequence, target_fps, bandwidth_mbps)
        specs.append(SessionSpec(request=request, playlist=(sequence,)))
    return specs


def scenario_two(
    num_hr: int,
    num_lr: int,
    followers: int = 4,
    frames_per_video: int = 120,
    seed: int = 0,
    target_fps: float = TARGET_FPS,
    bandwidth_mbps: float = DEFAULT_BANDWIDTH_MBPS,
) -> list[SessionSpec]:
    """Scenario II: each user's initial video is followed by ``followers``
    randomly selected videos of the same resolution (paper Sec. V-C).

    Parameters
    ----------
    num_hr, num_lr:
        Number of HR and LR users in the batch.
    followers:
        Videos following the initial one per user (the paper uses four).
    frames_per_video:
        Length of every video in the playlist.
    seed:
        Seed controlling both the random video selection and the content
        realisations.
    """
    if num_hr < 0 or num_lr < 0 or num_hr + num_lr == 0:
        raise ScenarioError("scenario II needs at least one video")
    if followers < 0:
        raise ScenarioError(f"followers must be >= 0, got {followers}")
    if frames_per_video < 1:
        raise ScenarioError(f"frames_per_video must be >= 1, got {frames_per_video}")

    rng = np.random.default_rng(seed)
    specs: list[SessionSpec] = []

    def build_playlist(resolution_class: ResolutionClass, user_seed: int) -> tuple[VideoSequence, ...]:
        names = (
            hr_sequences()
            if resolution_class is ResolutionClass.HR
            else lr_sequences()
        )
        initial_name = names[user_seed % len(names)]
        playlist = [
            make_sequence(initial_name, num_frames=frames_per_video, seed=user_seed)
        ]
        for _ in range(followers):
            playlist.append(
                random_sequence(resolution_class, rng=rng, num_frames=frames_per_video)
            )
        return tuple(playlist)

    for i in range(num_hr):
        playlist = build_playlist(ResolutionClass.HR, seed + i)
        request = _build_request(f"hr-{i}", playlist[0], target_fps, bandwidth_mbps)
        specs.append(SessionSpec(request=request, playlist=playlist))
    for i in range(num_lr):
        playlist = build_playlist(ResolutionClass.LR, seed + 100 + i)
        request = _build_request(f"lr-{i}", playlist[0], target_fps, bandwidth_mbps)
        specs.append(SessionSpec(request=request, playlist=playlist))
    return specs


def scenario_label(specs: Sequence[SessionSpec]) -> str:
    """Compact label such as ``"2HR3LR"`` for a list of session specs."""
    num_hr = sum(1 for s in specs if s.resolution_class is ResolutionClass.HR)
    num_lr = sum(1 for s in specs if s.resolution_class is ResolutionClass.LR)
    parts = []
    if num_hr:
        parts.append(f"{num_hr}HR")
    if num_lr:
        parts.append(f"{num_lr}LR")
    return "".join(parts) if parts else "empty"
