"""Multi-user orchestrator: advances all sessions on the shared server.

One orchestrator *step* transcodes one frame of every active session: every
session's controller decides its configuration, the server allocates the
resulting thread/frequency demands (producing the per-session contention
scale and the package power), and every session then transcodes its frame
under that allocation.  Sessions drop out as their playlists finish.

Sessions may also *join after construction* via :meth:`Orchestrator.add_session`:
the cluster layer (:mod:`repro.cluster`) drives one orchestrator per server
step-wise and attaches sessions as requests arrive over time.  An orchestrator
with no sessions is valid — it idles, and :meth:`Orchestrator.idle_step`
samples the server's idle power so fleet-wide energy accounting stays honest.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Optional, Sequence

from repro.constants import TARGET_FPS
from repro.errors import ScenarioError
from repro.metrics.aggregate import (
    ExperimentSummary,
    empty_experiment_summary,
    summarize_experiment,
)
from repro.metrics.records import FrameRecord, PowerSample
from repro.manager.session import TranscodingSession
from repro.platform.dvfs import DvfsPolicy
from repro.platform.meter import PowerMeter
from repro.platform.server import MulticoreServer
from repro.telemetry.profiler import NULL_PROFILER

__all__ = ["OrchestratorResult", "Orchestrator"]


@dataclasses.dataclass(frozen=True)
class OrchestratorResult:
    """Raw output of one orchestrator run.

    Attributes
    ----------
    records_by_session:
        Every session's per-frame records.
    power_samples:
        Per-step package power samples.
    steps:
        Number of orchestrator steps executed.
    """

    records_by_session: Mapping[str, Sequence[FrameRecord]]
    power_samples: Sequence[PowerSample]
    steps: int

    def summary(self) -> ExperimentSummary:
        """Aggregate the run into the paper's summary metrics.

        An empty run (no sessions ever attached) yields an all-zero summary
        rather than an error, matching the "an empty orchestrator idles"
        contract.
        """
        if not self.records_by_session:
            return empty_experiment_summary(self.power_samples)
        return summarize_experiment(self.records_by_session, self.power_samples)

    def all_records(self) -> list[FrameRecord]:
        """All frame records of all sessions, flattened."""
        return [r for records in self.records_by_session.values() for r in records]


class Orchestrator:
    """Runs a set of transcoding sessions on one server.

    Parameters
    ----------
    sessions:
        The sessions to serve simultaneously.  May be empty: a session-less
        orchestrator idles until :meth:`add_session` attaches work (the
        cluster layer relies on this).
    server:
        The shared platform; a default 16-core server is created when
        omitted.  Its DVFS policy is set to chip-wide when any session's
        controller declares a chip-wide policy (see
        :class:`~repro.platform.dvfs.DvfsPolicy`).
    """

    def __init__(
        self,
        sessions: Sequence[TranscodingSession] = (),
        server: Optional[MulticoreServer] = None,
    ) -> None:
        sessions = list(sessions)
        ids = [s.session_id for s in sessions]
        if len(set(ids)) != len(ids):
            raise ScenarioError(f"duplicate session ids: {ids}")
        self.sessions = sessions
        # Active subset, pruned lazily: long cluster runs accumulate
        # thousands of finished sessions in `sessions`, which per-step scans
        # must not touch.
        self._active = [s for s in sessions if s.active]
        self._session_ids = set(ids)
        self.server = server if server is not None else MulticoreServer()
        self.meter = PowerMeter()
        # Observe-only phase profiler; the cluster layer (or run(telemetry=))
        # swaps in a live one.  The null default costs one no-op context
        # manager per phase.
        self.profiler = NULL_PROFILER

        if any(
            session.controller.dvfs_policy is DvfsPolicy.CHIP_WIDE
            for session in sessions
        ):
            self.server.dvfs_policy = DvfsPolicy.CHIP_WIDE

    # -- session lifecycle -------------------------------------------------------------

    def add_session(self, session: TranscodingSession) -> None:
        """Attach a session after construction (it joins on the next step).

        The cluster dispatcher uses this to route arriving requests onto a
        running server.  Duplicate session ids are rejected, and a joining
        chip-wide controller switches the server's DVFS policy exactly as it
        would have at construction time.
        """
        if session.session_id in self._session_ids:
            raise ScenarioError(f"duplicate session id {session.session_id!r}")
        self._session_ids.add(session.session_id)
        self.sessions.append(session)
        self._active.append(session)
        if session.controller.dvfs_policy is DvfsPolicy.CHIP_WIDE:
            self.server.dvfs_policy = DvfsPolicy.CHIP_WIDE

    # -- execution ---------------------------------------------------------------------

    def active_sessions(self) -> list[TranscodingSession]:
        """Sessions that still have frames to transcode."""
        self._active = [s for s in self._active if s.active]
        return list(self._active)

    def run_step(self, step: int) -> Optional[PowerSample]:
        """Advance every active session by one frame.

        Returns the power sample of the step, or ``None`` when no session is
        active anymore.
        """
        active = self.active_sessions()
        if not active:
            return None

        profiler = self.profiler
        with profiler.phase("decide"):
            demands = [session.prepare() for session in active]
        with profiler.phase("allocate"):
            allocation = self.server.allocate(demands)

        with profiler.phase("execute"):
            records = [
                session.execute(
                    allocation.contention_scale(session.session_id),
                    allocation.total_power_w,
                )
                for session in active
            ]

        duration = sum(record.encode_time_s for record in records) / len(records)
        sample = PowerSample(
            step=step,
            power_w=allocation.total_power_w,
            duration_s=duration,
            active_sessions=len(active),
        )
        self.meter.record(sample.power_w, sample.duration_s)
        return sample

    def idle_step(self, step: int) -> PowerSample:
        """Sample the server's idle power for one session-less step.

        The cluster layer calls this instead of :meth:`run_step` when a server
        has no active sessions, so that idle servers still contribute their
        base power to fleet-wide energy accounting.  The step lasts one frame
        interval at the nominal delivery rate.
        """
        allocation = self.server.allocate([])
        sample = PowerSample(
            step=step,
            power_w=allocation.total_power_w,
            duration_s=1.0 / TARGET_FPS,
            active_sessions=0,
        )
        self.meter.record(sample.power_w, sample.duration_s)
        return sample

    def run(
        self,
        max_steps: Optional[int] = None,
        engine: str = "scalar",
        telemetry=None,
    ) -> OrchestratorResult:
        """Run until every playlist finishes (or ``max_steps`` is reached).

        ``engine="batch"`` evaluates each step's transcode math through the
        vectorized :class:`~repro.cluster.batch.BatchStepper` (seed-for-seed
        identical results; worthwhile for many-session experiments), while
        the default ``"scalar"`` engine steps session by session.

        ``telemetry`` accepts a :class:`~repro.telemetry.TelemetryConfig`
        or a built :class:`~repro.telemetry.Telemetry` hub; the profiler
        component (if enabled) attributes per-phase wall time for whichever
        engine runs.  The hub is exposed as ``self.telemetry`` afterwards.
        """
        if engine not in ("batch", "scalar"):
            raise ScenarioError(
                f"engine must be 'batch' or 'scalar', got {engine!r}"
            )
        # Deferred import: repro.telemetry.config is dependency-free but the
        # hub types live one package over; keep the manager layer importable
        # without telemetry resolved at module load.
        from repro.telemetry.config import resolve_telemetry

        tel = resolve_telemetry(telemetry)
        self.telemetry = tel
        self.profiler = tel.profiler
        stepper = None
        if engine == "batch":
            # Deferred import: repro.cluster.batch imports this module.
            from repro.cluster.batch import BatchStepper

            stepper = BatchStepper([self], profiler=tel.profiler)

        power_samples: list[PowerSample] = []
        step = 0
        while max_steps is None or step < max_steps:
            if stepper is not None:
                if not self.active_sessions():
                    break
                sample = stepper.step(step)[0]
            else:
                sample = self.run_step(step)
                if sample is None:
                    break
            tel.profiler.count_step()
            power_samples.append(sample)
            step += 1

        if stepper is not None:
            # Park driver-held MAMUT observation windows on the controllers
            # so a follow-up run (either engine) resumes from identical
            # state when max_steps stopped the run mid-playlist.
            stepper.flush_window_state()
        tel.finalize()

        records_by_session = {
            session.session_id: list(session.records) for session in self.sessions
        }
        return OrchestratorResult(
            records_by_session=records_by_session,
            power_samples=power_samples,
            steps=step,
        )
