"""Pre-training utilities: learn once, reuse across experiments.

The paper evaluates agents that have had time to learn.  Instead of paying
the warm-up cost in every run, a controller can be pre-trained once per
resolution class on representative content and its knowledge copied into the
per-session controllers of later experiments:

>>> knowledge = pretrain_mamut(ResolutionClass.HR, frames=2000)
>>> factory = pretrained_mamut_factory({ResolutionClass.HR: knowledge})
>>> runner.compare({"MAMUT (pretrained)": factory}, specs)
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from repro.constants import DEFAULT_POWER_CAP_W
from repro.core.config import MamutConfig
from repro.core.mamut import MamutController
from repro.core.persistence import restore_agents, snapshot_agents
from repro.manager.factories import ControllerFactory
from repro.manager.orchestrator import Orchestrator
from repro.manager.session import TranscodingSession
from repro.platform.server import MulticoreServer
from repro.video.catalog import make_sequence, hr_sequences, lr_sequences
from repro.video.request import TranscodingRequest
from repro.video.sequence import ResolutionClass

__all__ = ["pretrain_mamut", "pretrained_mamut_factory"]


def pretrain_mamut(
    resolution_class: ResolutionClass,
    frames: int = 2000,
    power_cap_w: float = DEFAULT_POWER_CAP_W,
    bandwidth_mbps: Optional[float] = None,
    seed: int = 0,
) -> dict[str, Any]:
    """Train a MAMUT controller on representative content of one class.

    The controller transcodes a rotation of the catalog's sequences of the
    requested class, alone on the server, for ``frames`` frames; its learned
    state is returned as a JSON-serialisable snapshot (see
    :mod:`repro.core.persistence`).
    """
    names = (
        hr_sequences() if resolution_class is ResolutionClass.HR else lr_sequences()
    )
    per_video = max(1, frames // len(names))
    playlist = [
        make_sequence(name, num_frames=per_video, seed=seed + i)
        for i, name in enumerate(names)
    ]
    request_kwargs = {"user_id": "pretrain", "sequence": playlist[0]}
    if bandwidth_mbps is not None:
        request_kwargs["bandwidth_mbps"] = bandwidth_mbps
    request = TranscodingRequest(**request_kwargs)

    config = MamutConfig.for_request(request, power_cap_w=power_cap_w, seed=seed)
    controller = MamutController(config)
    session = TranscodingSession(request, controller, playlist=playlist)
    Orchestrator([session], server=MulticoreServer()).run()
    return snapshot_agents(controller.agents)


def pretrained_mamut_factory(
    knowledge: Mapping[ResolutionClass, Mapping[str, Any]],
    power_cap_w: float = DEFAULT_POWER_CAP_W,
    record_history: bool = False,
) -> ControllerFactory:
    """A controller factory that seeds each new controller with pre-trained knowledge.

    ``knowledge`` maps a resolution class to a snapshot from
    :func:`pretrain_mamut`; requests of a class with no snapshot start from
    scratch, so partially pre-trained fleets are allowed.
    """

    def build(request: TranscodingRequest, seed: int) -> MamutController:
        config = MamutConfig.for_request(
            request,
            power_cap_w=power_cap_w,
            seed=seed,
            record_history=record_history,
        )
        controller = MamutController(config)
        snapshot = knowledge.get(request.resolution_class)
        if snapshot is not None:
            restore_agents(controller.agents, snapshot)
        return controller

    return build
