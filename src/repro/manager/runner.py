"""Experiment runner: repeated runs, aggregation, controller comparison.

The paper reports every number as the average of five repetitions of the
transcoding process under equal conditions (Sec. V-A).  The runner rebuilds
the sessions and controllers for every repetition (fresh exploration
randomness per repetition), runs the orchestrator, and averages the summary
metrics.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Optional, Sequence

from repro.constants import DEFAULT_POWER_CAP_W
from repro.errors import ScenarioError
from repro.manager.factories import ControllerFactory
from repro.manager.orchestrator import Orchestrator, OrchestratorResult
from repro.manager.scenario import SessionSpec
from repro.manager.session import TranscodingSession
from repro.metrics.aggregate import ExperimentSummary
from repro.platform.server import MulticoreServer
from repro.video.sequence import ResolutionClass, VideoSequence

__all__ = ["AveragedResult", "ExperimentRunner"]


def _clone_sequence(video: VideoSequence, seed_offset: int) -> VideoSequence:
    """A same-shape copy of ``video`` with a fresh content realisation."""
    return VideoSequence(
        name=f"{video.name}-warmup",
        width=video.width,
        height=video.height,
        frame_rate=video.frame_rate,
        num_frames=len(video),
        profile=video.profile,
        seed=video.seed + seed_offset,
    )


def _discard_warmup(
    result: OrchestratorResult, warmup_steps: Mapping[str, int]
) -> OrchestratorResult:
    """Drop the warm-up portion of a run's records and power samples."""
    records_by_session = {
        session_id: [r for r in records if r.step >= warmup_steps.get(session_id, 0)]
        for session_id, records in result.records_by_session.items()
    }
    max_warmup = max(warmup_steps.values(), default=0)
    power_samples = [s for s in result.power_samples if s.step >= max_warmup]
    return OrchestratorResult(
        records_by_session=records_by_session,
        power_samples=power_samples,
        steps=result.steps,
    )


@dataclasses.dataclass(frozen=True)
class AveragedResult:
    """Summary metrics averaged over the repetitions of one configuration.

    Attributes
    ----------
    label:
        Name of the controller (or any caller-provided label).
    repetitions:
        Number of runs averaged.
    mean_power_w, mean_fps, mean_threads, mean_frequency_ghz, mean_psnr_db:
        Averages of the corresponding per-run summary metrics.
    qos_violation_pct:
        Average Δ (percentage of frames below the FPS target).
    per_class_threads, per_class_frequency_ghz, per_class_qos_pct,
    per_class_psnr_db:
        The same quantities split by resolution class (Table I reports the
        first two).
    runs:
        The underlying per-run summaries, for callers needing more detail.
    """

    label: str
    repetitions: int
    mean_power_w: float
    mean_fps: float
    mean_threads: float
    mean_frequency_ghz: float
    mean_psnr_db: float
    qos_violation_pct: float
    per_class_threads: Mapping[str, float]
    per_class_frequency_ghz: Mapping[str, float]
    per_class_qos_pct: Mapping[str, float]
    per_class_psnr_db: Mapping[str, float]
    runs: Sequence[ExperimentSummary]


class ExperimentRunner:
    """Runs scenarios with one or more controller factories.

    Parameters
    ----------
    power_cap_w:
        Server power cap shared by all controllers (used by their reward /
        rule configurations; the factories receive the cap separately).
    seed:
        Base seed; repetition ``r`` of session ``k`` uses
        ``seed + 1000*r + k``.
    server_factory:
        Callable creating a fresh server per run, letting callers customise
        topology or power-model calibration.  Defaults to the stock
        16-core/32-thread server.
    """

    def __init__(
        self,
        power_cap_w: float = DEFAULT_POWER_CAP_W,
        seed: int = 0,
        server_factory=MulticoreServer,
    ) -> None:
        if power_cap_w <= 0:
            raise ScenarioError(f"power_cap_w must be positive, got {power_cap_w}")
        self.power_cap_w = float(power_cap_w)
        self.seed = int(seed)
        self.server_factory = server_factory

    # -- single runs ------------------------------------------------------------------

    def run_once(
        self,
        factory: ControllerFactory,
        specs: Sequence[SessionSpec],
        repetition: int = 0,
        max_steps: Optional[int] = None,
        warmup_videos: int = 0,
    ) -> OrchestratorResult:
        """Run one repetition of a scenario with one controller factory.

        ``warmup_videos`` prepends that many extra copies of each session's
        first video (with fresh content realisations) to its playlist and
        discards their measurements: the learning controllers keep the
        knowledge acquired during those videos, mirroring the paper's
        evaluation of learned behaviour rather than cold-start exploration.
        """
        if not specs:
            raise ScenarioError("at least one session spec is required")
        if warmup_videos < 0:
            raise ScenarioError(f"warmup_videos must be >= 0, got {warmup_videos}")
        sessions = []
        warmup_steps: dict[str, int] = {}
        for index, spec in enumerate(specs):
            controller = factory(spec.request, self.seed + 1000 * repetition + index)
            warmup = [
                _clone_sequence(spec.playlist[0], seed_offset=7919 * (w + 1))
                for w in range(warmup_videos)
            ]
            playlist = warmup + list(spec.playlist)
            warmup_steps[spec.request.user_id] = sum(len(v) for v in warmup)
            sessions.append(
                TranscodingSession(
                    request=spec.request,
                    controller=controller,
                    playlist=playlist,
                )
            )
        orchestrator = Orchestrator(sessions, server=self.server_factory())
        result = orchestrator.run(max_steps=max_steps)
        if warmup_videos == 0:
            return result
        return _discard_warmup(result, warmup_steps)

    def run(
        self,
        label: str,
        factory: ControllerFactory,
        specs: Sequence[SessionSpec],
        repetitions: int = 1,
        max_steps: Optional[int] = None,
        warmup_videos: int = 0,
    ) -> AveragedResult:
        """Run ``repetitions`` repetitions and average their summaries."""
        if repetitions < 1:
            raise ScenarioError(f"repetitions must be >= 1, got {repetitions}")
        summaries: list[ExperimentSummary] = []
        for repetition in range(repetitions):
            result = self.run_once(
                factory,
                specs,
                repetition,
                max_steps=max_steps,
                warmup_videos=warmup_videos,
            )
            summaries.append(result.summary())
        return self._average(label, summaries)

    def compare(
        self,
        factories: Mapping[str, ControllerFactory],
        specs: Sequence[SessionSpec],
        repetitions: int = 1,
        max_steps: Optional[int] = None,
        warmup_videos: int = 0,
    ) -> dict[str, AveragedResult]:
        """Run every factory on the same scenario and collect the averages."""
        return {
            label: self.run(
                label,
                factory,
                specs,
                repetitions,
                max_steps=max_steps,
                warmup_videos=warmup_videos,
            )
            for label, factory in factories.items()
        }

    # -- aggregation ------------------------------------------------------------------

    @staticmethod
    def _average(label: str, summaries: Sequence[ExperimentSummary]) -> AveragedResult:
        n = len(summaries)

        def mean(values: Sequence[float]) -> float:
            return sum(values) / len(values) if values else 0.0

        per_class_threads: dict[str, float] = {}
        per_class_freq: dict[str, float] = {}
        per_class_qos: dict[str, float] = {}
        per_class_psnr: dict[str, float] = {}
        for resolution_class in (ResolutionClass.HR, ResolutionClass.LR):
            threads: list[float] = []
            freqs: list[float] = []
            qos: list[float] = []
            psnr: list[float] = []
            for summary in summaries:
                class_sessions = summary.sessions_by_class(resolution_class)
                if not class_sessions:
                    continue
                threads.append(mean([s.mean_threads for s in class_sessions]))
                freqs.append(mean([s.mean_frequency_ghz for s in class_sessions]))
                qos.append(mean([s.qos_violation_pct for s in class_sessions]))
                psnr.append(mean([s.mean_psnr_db for s in class_sessions]))
            if threads:
                per_class_threads[resolution_class.value] = mean(threads)
                per_class_freq[resolution_class.value] = mean(freqs)
                per_class_qos[resolution_class.value] = mean(qos)
                per_class_psnr[resolution_class.value] = mean(psnr)

        return AveragedResult(
            label=label,
            repetitions=n,
            mean_power_w=mean([s.mean_power_w for s in summaries]),
            mean_fps=mean([s.mean_fps for s in summaries]),
            mean_threads=mean([s.mean_threads for s in summaries]),
            mean_frequency_ghz=mean([s.mean_frequency_ghz for s in summaries]),
            mean_psnr_db=mean([s.mean_psnr_db for s in summaries]),
            qos_violation_pct=mean([s.qos_violation_pct for s in summaries]),
            per_class_threads=per_class_threads,
            per_class_frequency_ghz=per_class_freq,
            per_class_qos_pct=per_class_qos,
            per_class_psnr_db=per_class_psnr,
            runs=tuple(summaries),
        )
