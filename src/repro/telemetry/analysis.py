"""Trace analytics: turn a span stream back into answers.

PR 6's tracer writes request lifecycles as flat JSONL spans; this module is
the read side.  :func:`load_spans` accepts a JSONL path, a
:class:`~repro.telemetry.trace.ListTraceSink` or an iterable of span dicts,
and :func:`analyze_trace` reconstructs one :class:`RequestLifecycle` per
arrival (fleet-level ``fault``/``slo_breach`` markers are kept separately —
their ``request`` keys are servers and objectives, not users) and derives:

* the **terminal ledger** — served / rejected / dropped / abandoned /
  failed counts, straight from the one-terminal-span-per-arrival invariant;
* **latency breakdowns** — queue wait (first-dispatch ``wait_steps``),
  service steps (first dispatch → terminal), end-to-end steps, and the
  retry overhead crash-migrated requests paid between interruption and
  re-dispatch — each as count/mean/max plus p50/p95/p99
  (:class:`LatencyStats`);
* **slices** — wait percentiles by service class and by first-dispatch
  server;
* the **fault timeline** and SLO breach markers;
* a **reconciliation check** (:meth:`TraceAnalysis.reconcile`) proving the
  span-derived view against the run's
  :class:`~repro.metrics.cluster.ClusterSummary` ledger — the property
  ``tests/test_telemetry_analysis.py`` pins across randomized seeded runs.

Percentiles use the same :func:`~repro.metrics.aggregate.linear_percentile`
arithmetic as the cluster summary, so trace-derived and ledger-derived
percentiles are equal as floats, not just approximately.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Iterable, Mapping, Optional, Sequence, Union

from repro.metrics.aggregate import linear_percentile
from repro.metrics.cluster import ClusterSummary
from repro.telemetry.trace import MARKER_KINDS, TERMINAL_KINDS, ListTraceSink

__all__ = [
    "LatencyStats",
    "RequestLifecycle",
    "TraceAnalysis",
    "load_spans",
    "analyze_trace",
]


def load_spans(source) -> list[dict]:
    """Spans from a JSONL path, a ``ListTraceSink`` or an iterable of dicts."""
    if isinstance(source, ListTraceSink):
        return list(source.spans)
    if isinstance(source, (str, os.PathLike)):
        spans = []
        with open(source, "r", encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    span = json.loads(line)
                except json.JSONDecodeError as error:
                    raise ValueError(
                        f"{source}:{number}: not a JSON span: {error}"
                    ) from error
                spans.append(span)
        return spans
    return [dict(span) for span in source]


@dataclasses.dataclass(frozen=True)
class LatencyStats:
    """count / mean / percentiles / max of one latency population."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @classmethod
    def of(cls, values: Sequence[float]) -> "LatencyStats":
        if not values:
            return cls(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        return cls(
            count=len(values),
            mean=sum(values) / len(values),
            p50=linear_percentile(values, 50.0),
            p95=linear_percentile(values, 95.0),
            p99=linear_percentile(values, 99.0),
            max=float(max(values)),
        )

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class RequestLifecycle:
    """One request's reconstructed journey, arrival to terminal span.

    ``queue_wait_steps`` is the first dispatch's ``wait_steps`` (matching
    the ledger's ``queue_waits`` entry exactly) and stays ``None`` for
    requests that never reached a server.  ``retry_wait_steps`` sums the
    gaps between each ``interrupted`` span and the following re-dispatch —
    the latency crashes added on top of the normal queue wait.
    """

    request: str
    service_class: str = ""
    arrival_step: int = 0
    terminal_kind: str = ""
    terminal_step: int = 0
    queued: bool = False
    degraded: bool = False
    queue_wait_steps: Optional[int] = None
    first_dispatch_step: Optional[int] = None
    servers: tuple = ()
    retries: int = 0
    interruptions: int = 0
    retry_wait_steps: int = 0
    frames: int = 0
    videos_completed: int = 0
    completed: bool = False

    @property
    def server(self) -> Optional[int]:
        """First-dispatch server (where the queue wait ended)."""
        return self.servers[0] if self.servers else None

    @property
    def service_steps(self) -> Optional[int]:
        """Steps between first dispatch and the terminal span."""
        if self.first_dispatch_step is None or not self.terminal_kind:
            return None
        return self.terminal_step - self.first_dispatch_step

    @property
    def total_steps(self) -> int:
        """End-to-end steps, arrival to terminal."""
        return self.terminal_step - self.arrival_step


class TraceAnalysis:
    """Derived views over one run's span stream (built by ``analyze_trace``)."""

    def __init__(
        self,
        lifecycles: dict[str, RequestLifecycle],
        fault_events: list[dict],
        slo_breaches: list[dict],
        errors: list[str],
        steps: int,
        span_count: int,
    ) -> None:
        self.lifecycles = lifecycles
        self.fault_events = fault_events
        self.slo_breaches = slo_breaches
        #: Lifecycle-invariant violations found while reconstructing (a
        #: clean trace has none; a truncated one names its open requests).
        self.errors = errors
        self.steps = steps
        self.span_count = span_count

    # -- ledger ------------------------------------------------------------------------

    @property
    def arrivals(self) -> int:
        return len(self.lifecycles)

    def terminal_counts(self) -> dict[str, int]:
        counts = {kind: 0 for kind in sorted(TERMINAL_KINDS)}
        for lifecycle in self.lifecycles.values():
            if lifecycle.terminal_kind:
                counts[lifecycle.terminal_kind] += 1
        return counts

    def served(self) -> list[RequestLifecycle]:
        return [
            l for l in self.lifecycles.values() if l.terminal_kind == "served"
        ]

    # -- latency breakdown -------------------------------------------------------------

    def queue_waits(self) -> list[int]:
        """First-dispatch waits — the trace's copy of the ledger's list."""
        return [
            l.queue_wait_steps
            for l in self.lifecycles.values()
            if l.queue_wait_steps is not None
        ]

    def wait_stats(self) -> LatencyStats:
        return LatencyStats.of(self.queue_waits())

    def service_stats(self) -> LatencyStats:
        return LatencyStats.of(
            [l.service_steps for l in self.served() if l.service_steps is not None]
        )

    def end_to_end_stats(self) -> LatencyStats:
        return LatencyStats.of([l.total_steps for l in self.served()])

    def retry_overhead_stats(self) -> LatencyStats:
        """Extra steps crash-interrupted requests spent awaiting re-dispatch."""
        return LatencyStats.of(
            [
                l.retry_wait_steps
                for l in self.lifecycles.values()
                if l.interruptions > 0
            ]
        )

    def wait_stats_by_class(self) -> dict[str, LatencyStats]:
        by_class: dict[str, list[int]] = {}
        for lifecycle in self.lifecycles.values():
            if lifecycle.queue_wait_steps is not None:
                by_class.setdefault(lifecycle.service_class, []).append(
                    lifecycle.queue_wait_steps
                )
        return {
            cls: LatencyStats.of(waits) for cls, waits in sorted(by_class.items())
        }

    def wait_stats_by_server(self) -> dict[int, LatencyStats]:
        by_server: dict[int, list[int]] = {}
        for lifecycle in self.lifecycles.values():
            if lifecycle.queue_wait_steps is not None and lifecycle.server is not None:
                by_server.setdefault(lifecycle.server, []).append(
                    lifecycle.queue_wait_steps
                )
        return {
            server: LatencyStats.of(waits)
            for server, waits in sorted(by_server.items())
        }

    @property
    def retried(self) -> int:
        """Successful re-dispatches, summed over all lifecycles."""
        return sum(l.retries for l in self.lifecycles.values())

    @property
    def interrupted(self) -> int:
        return sum(l.interruptions for l in self.lifecycles.values())

    def fault_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for event in self.fault_events:
            counts[event.get("fault", "?")] = counts.get(event.get("fault", "?"), 0) + 1
        return counts

    # -- reconciliation ----------------------------------------------------------------

    def reconcile(self, summary: ClusterSummary) -> list[str]:
        """Check the span-derived view against the run's summary ledger.

        Returns a list of human-readable mismatches — empty when the trace
        and the ledger tell the same story.  Every admitted request ends in
        exactly one ``served`` or ``failed`` span, so ``served`` must equal
        ``admitted - failed``; the queue-wait population must match the
        ledger's in count, mean, max and percentiles (same percentile
        arithmetic on both sides, so equality is exact).  Frames are only
        reconciled on crash-free traces: a migrated session's partial
        records live under the crashed server's original key, which the
        terminal span does not see.
        """
        mismatches: list[str] = []

        def check(label: str, from_trace, from_summary) -> None:
            if from_trace != from_summary:
                mismatches.append(
                    f"{label}: trace={from_trace!r} summary={from_summary!r}"
                )

        mismatches.extend(f"lifecycle error: {error}" for error in self.errors)
        counts = self.terminal_counts()
        check("arrivals", self.arrivals, summary.arrivals)
        check("served", counts["served"], summary.admitted - summary.failed)
        check("rejected", counts["rejected"], summary.rejected)
        check("dropped", counts["dropped"], summary.dropped)
        check("abandoned", counts["abandoned"], summary.abandoned)
        check("failed", counts["failed"], summary.failed)
        check("retried", self.retried, summary.retried)

        waits = self.queue_waits()
        check("admitted (queue-wait population)", len(waits), summary.admitted)
        if waits:
            check("mean queue wait", sum(waits) / len(waits), summary.mean_queue_wait_steps)
            check("max queue wait", max(waits), summary.max_queue_wait_steps)
            check("p50 queue wait", linear_percentile(waits, 50.0), summary.p50_queue_wait_steps)
            check("p95 queue wait", linear_percentile(waits, 95.0), summary.p95_queue_wait_steps)
            check("p99 queue wait", linear_percentile(waits, 99.0), summary.p99_queue_wait_steps)

        crash_faults = self.fault_counts()
        check("server crashes", crash_faults.get("crash", 0), summary.server_crashes)
        check("stragglers", crash_faults.get("straggler", 0), summary.stragglers)
        check(
            "warm-up failures",
            crash_faults.get("warmup_failure", 0),
            summary.warmup_failures,
        )
        if self.interrupted == 0:
            check(
                "frames",
                sum(l.frames for l in self.served()),
                summary.frames,
            )
        return mismatches

    # -- export ------------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready digest: ledger, breakdowns, slices, fault/SLO markers."""
        return {
            "spans": self.span_count,
            "steps": self.steps,
            "arrivals": self.arrivals,
            "terminals": self.terminal_counts(),
            "retried": self.retried,
            "interrupted": self.interrupted,
            "queue_wait": self.wait_stats().to_dict(),
            "service_steps": self.service_stats().to_dict(),
            "end_to_end_steps": self.end_to_end_stats().to_dict(),
            "retry_overhead_steps": self.retry_overhead_stats().to_dict(),
            "queue_wait_by_class": {
                cls: stats.to_dict()
                for cls, stats in self.wait_stats_by_class().items()
            },
            "queue_wait_by_server": {
                str(server): stats.to_dict()
                for server, stats in self.wait_stats_by_server().items()
            },
            "faults": self.fault_counts(),
            "slo_breaches": len(self.slo_breaches),
            "errors": list(self.errors),
        }


def analyze_trace(source) -> TraceAnalysis:
    """Reconstruct request lifecycles and derived views from a span stream."""
    spans = load_spans(source)
    lifecycles: dict[str, RequestLifecycle] = {}
    fault_events: list[dict] = []
    slo_breaches: list[dict] = []
    errors: list[str] = []
    steps = 0

    for span in spans:
        kind = span.get("kind")
        step = int(span.get("step", 0))
        steps = max(steps, step)
        if kind == "fault":
            fault_events.append(span)
            continue
        if kind == "slo_breach":
            slo_breaches.append(span)
            continue
        if kind in MARKER_KINDS:  # pragma: no cover - future marker kinds
            continue
        request = span.get("request")
        if request is None:
            errors.append(f"span without a request id: {span!r}")
            continue
        lifecycle = lifecycles.get(request)
        if kind == "arrival":
            if lifecycle is not None:
                errors.append(f"{request}: duplicate arrival at step {step}")
                continue
            lifecycles[request] = RequestLifecycle(
                request=request,
                service_class=str(span.get("service_class", "")),
                arrival_step=step,
            )
            continue
        if lifecycle is None:
            errors.append(f"{request}: {kind} span before any arrival")
            continue
        if lifecycle.terminal_kind:
            errors.append(
                f"{request}: {kind} span after terminal "
                f"{lifecycle.terminal_kind!r}"
            )
            continue
        if kind == "queued":
            lifecycle.queued = True
        elif kind == "dispatched":
            lifecycle.servers = lifecycle.servers + (span.get("server"),)
            if span.get("degraded"):
                lifecycle.degraded = True
            if "retry" in span:
                lifecycle.retries += 1
                # The gap since the interruption is the retry's latency bill.
                lifecycle.retry_wait_steps += step - lifecycle.terminal_step
            else:
                lifecycle.queue_wait_steps = int(span.get("wait_steps", 0))
                lifecycle.first_dispatch_step = step
        elif kind == "interrupted":
            lifecycle.interruptions += 1
            # Park the crash step in terminal_step until the re-dispatch
            # (or terminal failed span) overwrites it.
            lifecycle.terminal_step = step
        elif kind == "video_complete":
            lifecycle.videos_completed = int(span.get("video", 0))
        elif kind in TERMINAL_KINDS:
            lifecycle.terminal_kind = kind
            lifecycle.terminal_step = step
            if kind == "served":
                lifecycle.frames = int(span.get("frames", 0))
                lifecycle.completed = bool(span.get("completed", False))
            elif kind == "failed":
                lifecycle.frames = int(span.get("frames", 0))
        else:
            errors.append(f"{request}: unknown span kind {kind!r}")

    for lifecycle in lifecycles.values():
        if not lifecycle.terminal_kind:
            errors.append(f"{lifecycle.request}: no terminal span")
    return TraceAnalysis(
        lifecycles=lifecycles,
        fault_events=fault_events,
        slo_breaches=slo_breaches,
        errors=errors,
        steps=steps,
        span_count=len(spans),
    )
