"""Zero-overhead-when-disabled observability for the simulation stack.

Four concerns, one hub:

* :mod:`repro.telemetry.trace` — request-lifecycle spans (arrival →
  admission → queue → dispatch → progress → terminal outcome) as JSONL.
* :mod:`repro.telemetry.metrics` — live counters/gauges/histograms with a
  Prometheus text exporter and per-step time-series recorder.
* :mod:`repro.telemetry.profiler` — per-phase wall-time for the stepping
  engines (gather / evaluate / MAMUT activation / scatter, and the scalar
  decide / allocate / execute loop).
* :mod:`repro.telemetry.logsetup` — the ``repro`` logger hierarchy behind
  the ``--log-level`` flag.

Entry points: build a :class:`TelemetryConfig`, pass it to
``ClusterOrchestrator.run(telemetry=...)`` or ``Orchestrator.run(...)``,
and read the hub back from ``cluster.telemetry``.  Everything is
observe-only and seed-neutral: enabling any combination of concerns must
not change a seeded run's results (pinned by ``tests/test_telemetry.py``).
"""

from repro.telemetry.config import Telemetry, TelemetryConfig, resolve_telemetry
from repro.telemetry.logsetup import LOG_LEVELS, configure_logging
from repro.telemetry.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeriesRecorder,
)
from repro.telemetry.profiler import NULL_PROFILER, StepProfiler
from repro.telemetry.trace import (
    NULL_TRACER,
    TERMINAL_KINDS,
    JsonlTraceSink,
    ListTraceSink,
    RequestTracer,
    TraceSink,
)

__all__ = [
    "Telemetry",
    "TelemetryConfig",
    "resolve_telemetry",
    "configure_logging",
    "LOG_LEVELS",
    "MetricsRegistry",
    "TimeSeriesRecorder",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_REGISTRY",
    "StepProfiler",
    "NULL_PROFILER",
    "RequestTracer",
    "TraceSink",
    "JsonlTraceSink",
    "ListTraceSink",
    "NULL_TRACER",
    "TERMINAL_KINDS",
]
