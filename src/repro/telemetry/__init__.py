"""Zero-overhead-when-disabled observability for the simulation stack.

Four concerns, one hub:

* :mod:`repro.telemetry.trace` — request-lifecycle spans (arrival →
  admission → queue → dispatch → progress → terminal outcome) as JSONL.
* :mod:`repro.telemetry.metrics` — live counters/gauges/histograms with a
  Prometheus text exporter and per-step time-series recorder.
* :mod:`repro.telemetry.profiler` — per-phase wall-time for the stepping
  engines (gather / evaluate / MAMUT activation / scatter, and the scalar
  decide / allocate / execute loop).
* :mod:`repro.telemetry.logsetup` — the ``repro`` logger hierarchy behind
  the ``--log-level`` flag.

Built on top of the span stream:

* :mod:`repro.telemetry.analysis` — post-hoc trace analytics: lifecycle
  reconstruction, latency breakdowns and percentiles, fault timelines, and
  reconciliation against the run's summary ledger.
* :mod:`repro.telemetry.slo` — online SLO objectives with rolling windows,
  error budgets and burn-rate gauges, evaluated each step through the same
  observe-only hook path.
* :mod:`repro.telemetry.provenance` — the ``provenance`` block stamped on
  comparable run artifacts, so ``repro obs compare`` can refuse
  apples-to-oranges diffs.

Entry points: build a :class:`TelemetryConfig`, pass it to
``ClusterOrchestrator.run(telemetry=...)`` or ``Orchestrator.run(...)``,
and read the hub back from ``cluster.telemetry``.  Everything is
observe-only and seed-neutral: enabling any combination of concerns must
not change a seeded run's results (pinned by ``tests/test_telemetry.py``).
"""

from repro.telemetry.analysis import (
    LatencyStats,
    RequestLifecycle,
    TraceAnalysis,
    analyze_trace,
    load_spans,
)
from repro.telemetry.config import Telemetry, TelemetryConfig, resolve_telemetry
from repro.telemetry.logsetup import LOG_LEVELS, configure_logging
from repro.telemetry.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeriesRecorder,
)
from repro.telemetry.profiler import NULL_PROFILER, StepProfiler
from repro.telemetry.provenance import (
    SCHEMA_VERSION,
    provenance_mismatches,
    provenance_of,
    stamp_provenance,
)
from repro.telemetry.slo import (
    QueueWaitObjective,
    ShedRateObjective,
    SloEngine,
    SloObjective,
    ViolationRateObjective,
)
from repro.telemetry.trace import (
    MARKER_KINDS,
    NULL_TRACER,
    TERMINAL_KINDS,
    JsonlTraceSink,
    ListTraceSink,
    RequestTracer,
    TraceSink,
)

__all__ = [
    "Telemetry",
    "TelemetryConfig",
    "resolve_telemetry",
    "configure_logging",
    "LOG_LEVELS",
    "MetricsRegistry",
    "TimeSeriesRecorder",
    "Counter",
    "Gauge",
    "Histogram",
    "NULL_REGISTRY",
    "StepProfiler",
    "NULL_PROFILER",
    "RequestTracer",
    "TraceSink",
    "JsonlTraceSink",
    "ListTraceSink",
    "NULL_TRACER",
    "TERMINAL_KINDS",
    "MARKER_KINDS",
    "LatencyStats",
    "RequestLifecycle",
    "TraceAnalysis",
    "analyze_trace",
    "load_spans",
    "SloObjective",
    "QueueWaitObjective",
    "ShedRateObjective",
    "ViolationRateObjective",
    "SloEngine",
    "SCHEMA_VERSION",
    "stamp_provenance",
    "provenance_of",
    "provenance_mismatches",
]
