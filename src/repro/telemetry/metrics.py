"""Live metrics registry: counters, gauges and fixed-bucket histograms.

The cluster stack publishes its observable state here each step — queue
depth, fleet composition, admission verdicts, frames and violations — so a
run can be inspected *while it evolves* instead of only through the post-hoc
:class:`~repro.metrics.cluster.ClusterSummary` aggregation.

Design constraints, both load-bearing:

* **Determinism.**  Instruments never sample, subsample or timestamp with
  wall-clock values: counters and gauges hold exact values, histograms use
  fixed bucket edges chosen at creation.  The same seeded run therefore
  always exports the identical metrics text, which is what the telemetry
  tests pin.
* **Zero overhead when disabled.**  The :data:`NULL_REGISTRY` singleton
  returns shared no-op instruments, so instrumented code can create and
  update metrics unconditionally; with telemetry disabled every update is a
  single no-op method call and no state is allocated.

Export formats: :meth:`MetricsRegistry.to_prometheus` renders the standard
Prometheus text exposition format (final values, suitable for offline
inspection or scraping a dumped file), and :class:`TimeSeriesRecorder`
captures per-step snapshots of every counter and gauge for trajectory
analysis.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Mapping, Optional, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimeSeriesRecorder",
    "NULL_REGISTRY",
]

#: Default bucket edges for step-wait histograms (admission queue waits).
QUEUE_WAIT_EDGES = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)


def _label_key(labels: Optional[Mapping[str, str]]) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _format_value(value: float) -> str:
    """Prometheus sample value: integers render without a trailing ``.0``."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in labels]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "help", "labels", "_value")

    kind = "counter"

    def __init__(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> None:
        self.name = name
        self.help = help
        self.labels = _label_key(labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def samples(self) -> list[str]:
        return [f"{self.name}{_format_labels(self.labels)} {_format_value(self._value)}"]


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "help", "labels", "_value")

    kind = "gauge"

    def __init__(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> None:
        self.name = name
        self.help = help
        self.labels = _label_key(labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def samples(self) -> list[str]:
        return [f"{self.name}{_format_labels(self.labels)} {_format_value(self._value)}"]


class Histogram:
    """A distribution over fixed bucket edges.

    Edges are upper bounds (``value <= edge`` lands in that bucket); values
    above the last edge land in the implicit ``+Inf`` bucket.  Edges are
    frozen at creation — the determinism contract — and must be strictly
    increasing.
    """

    __slots__ = ("name", "help", "labels", "edges", "_counts", "_sum", "_count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        edges: Sequence[float],
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ValueError(f"histogram {name} needs at least one bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"histogram {name} edges must be strictly increasing")
        self.name = name
        self.help = help
        self.labels = _label_key(labels)
        self.edges = edges
        self._counts = [0] * (len(edges) + 1)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._counts[bisect.bisect_left(self.edges, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Linear interpolation inside the bucket the quantile rank falls
        into, the way ``histogram_quantile`` does it: a bucket with upper
        edge ``e`` and predecessor edge ``p`` is treated as the interval
        ``(p, e]`` with its observations spread uniformly; the first bucket
        interpolates from ``min(0, edge)`` so non-negative distributions
        (every histogram the cluster keeps) never estimate below zero, and
        a rank landing exactly on a bucket's cumulative count returns the
        bucket's upper edge *exactly*.  Ranks in the ``+Inf`` overflow
        bucket clamp to the last finite edge.  Returns ``nan`` for an
        empty histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile q must be in [0, 1], got {q}")
        if self._count == 0:
            return float("nan")
        rank = q * self._count
        cumulative = 0
        for index, bucket_count in enumerate(self._counts[:-1]):
            if cumulative + bucket_count >= rank and bucket_count > 0:
                upper = self.edges[index]
                lower = self.edges[index - 1] if index > 0 else min(0.0, upper)
                fraction = (rank - cumulative) / bucket_count
                return lower + (upper - lower) * fraction
            cumulative += bucket_count
        return self.edges[-1]

    def bucket_counts(self) -> dict[float, int]:
        """Cumulative counts keyed by upper edge (``inf`` for the overflow)."""
        cumulative: dict[float, int] = {}
        running = 0
        for edge, count in zip(self.edges, self._counts):
            running += count
            cumulative[edge] = running
        cumulative[float("inf")] = running + self._counts[-1]
        return cumulative

    def samples(self) -> list[str]:
        lines = []
        for edge, cumulative in self.bucket_counts().items():
            le = "+Inf" if edge == float("inf") else _format_value(edge)
            labels = _format_labels(self.labels, f'le="{le}"')
            lines.append(f"{self.name}_bucket{labels} {cumulative}")
        labels = _format_labels(self.labels)
        lines.append(f"{self.name}_sum{labels} {_format_value(self._sum)}")
        lines.append(f"{self.name}_count{labels} {self._count}")
        return lines


class _NullInstrument:
    """Shared no-op counter/gauge/histogram for disabled telemetry."""

    __slots__ = ()

    name = ""
    help = ""
    labels = ()
    value = 0.0
    count = 0
    sum = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return float("nan")

    def samples(self) -> list[str]:
        return []


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Creates and owns instruments; get-or-create by (name, labels)."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], object] = {}

    def _get_or_create(self, cls, name, help, labels, **kwargs):
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, help=help, labels=labels, **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        return self._get_or_create(Counter, name, help, labels)

    def gauge(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        edges: Sequence[float],
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
    ) -> Histogram:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = Histogram(name, edges, help=help, labels=labels)
            self._metrics[key] = metric
        elif not isinstance(metric, Histogram):
            raise ValueError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def collect(self) -> list:
        """All instruments, in registration order."""
        return list(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def scalar_snapshot(self) -> dict[str, float]:
        """Current counter/gauge values keyed by rendered sample name."""
        snapshot: dict[str, float] = {}
        for metric in self._metrics.values():
            if isinstance(metric, (Counter, Gauge)):
                snapshot[f"{metric.name}{_format_labels(metric.labels)}"] = (
                    metric.value
                )
        return snapshot

    def to_prometheus(self) -> str:
        """Render the registry in the Prometheus text exposition format."""
        lines: list[str] = []
        seen_headers: set[str] = set()
        for metric in self._metrics.values():
            if metric.name not in seen_headers:
                seen_headers.add(metric.name)
                if metric.help:
                    lines.append(f"# HELP {metric.name} {metric.help}")
                lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.samples())
        return "\n".join(lines) + ("\n" if lines else "")


class _NullRegistry:
    """Shared disabled registry: every instrument is the no-op singleton."""

    enabled = False

    def counter(self, name, help="", labels=None):
        return _NULL_INSTRUMENT

    def gauge(self, name, help="", labels=None):
        return _NULL_INSTRUMENT

    def histogram(self, name, edges, help="", labels=None):
        return _NULL_INSTRUMENT

    def collect(self) -> list:
        return []

    def __len__(self) -> int:
        return 0

    def scalar_snapshot(self) -> dict[str, float]:
        return {}

    def to_prometheus(self) -> str:
        return ""


NULL_REGISTRY = _NullRegistry()


class TimeSeriesRecorder:
    """Per-step snapshots of every counter and gauge in a registry.

    One :meth:`record` call per cluster step turns the live registry into a
    trajectory — how queue depth, fleet size and brownout level co-evolved —
    without the instrumented code knowing the recorder exists.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self.steps: list[int] = []
        self.rows: list[dict[str, float]] = []

    def record(self, step: int) -> None:
        self.steps.append(step)
        self.rows.append(self.registry.scalar_snapshot())

    def series(self, name: str) -> list[float]:
        """One metric's trajectory; steps before its registration read 0."""
        return [row.get(name, 0.0) for row in self.rows]

    def names(self) -> list[str]:
        names: dict[str, None] = {}
        for row in self.rows:
            for name in row:
                names.setdefault(name)
        return list(names)

    def to_dict(self) -> dict:
        return {
            "steps": list(self.steps),
            "series": {name: self.series(name) for name in self.names()},
        }
