"""Run-artifact provenance: who produced this JSON, from what inputs.

Every comparable artifact the repo emits — ``BENCH_*.json`` payloads and
the cluster CLI's ``--summary-out`` files — carries a ``provenance`` block
stamped by :func:`stamp_provenance`::

    {
      "provenance": {
        "schema_version": 1,
        "kind": "faults",          # which producer wrote it
        "seed": 0,                 # the seed(s) the run was driven by
        "config": {...},           # the scenario knobs that shaped the run
        "python": "3.12.1",        # environment, informational only
        "machine": "x86_64"
      },
      ...payload...
    }

``repro obs compare`` refuses apples-to-oranges comparisons on the strict
fields (``schema_version``, ``kind``, ``seed``, ``config``) and only warns
on the informational ones (``python``, ``machine``) — two runs of the same
seeded scenario on different interpreters are still the same experiment;
two runs of different scenarios are not a regression signal at all.
"""

from __future__ import annotations

import platform
from typing import Mapping, Optional

__all__ = [
    "SCHEMA_VERSION",
    "stamp_provenance",
    "provenance_of",
    "provenance_mismatches",
]

#: Bump when the *shape* of comparable artifacts changes incompatibly.
SCHEMA_VERSION = 1

#: Provenance fields that must match for two artifacts to be comparable.
STRICT_FIELDS = ("schema_version", "kind", "seed", "config")

#: Environment fields recorded for the record, compared only as a warning.
INFO_FIELDS = ("python", "machine")


def stamp_provenance(
    payload: dict,
    *,
    kind: str,
    seed,
    config: Optional[Mapping] = None,
) -> dict:
    """Attach a ``provenance`` block to ``payload`` (in place) and return it.

    ``seed`` may be a single int or a mapping of named seeds (workload /
    cluster / fault streams); ``config`` is the scenario fingerprint — every
    knob that shapes the run's results, and nothing that doesn't (output
    paths, verbosity).  Engine choice deliberately does NOT belong in
    ``config``: the scalar and batch engines are seed-for-seed identical,
    so cross-engine comparisons are legitimate (and a useful gate).
    """
    payload["provenance"] = {
        "schema_version": SCHEMA_VERSION,
        "kind": str(kind),
        "seed": seed,
        "config": dict(config) if config is not None else {},
        "python": platform.python_version(),
        "machine": platform.machine(),
    }
    return payload


def provenance_of(payload: Mapping) -> Optional[Mapping]:
    """The payload's provenance block, or None for a pre-provenance artifact."""
    block = payload.get("provenance")
    return block if isinstance(block, Mapping) else None


def provenance_mismatches(
    a: Mapping, b: Mapping
) -> tuple[list[str], list[str]]:
    """Compare two payloads' provenance: ``(refusals, warnings)``.

    ``refusals`` non-empty means the artifacts describe different
    experiments (or one has no provenance at all) and a metric diff between
    them is meaningless; ``warnings`` flag environment drift worth printing
    but not worth refusing over.
    """
    prov_a, prov_b = provenance_of(a), provenance_of(b)
    if prov_a is None or prov_b is None:
        missing = [
            label for label, prov in (("first", prov_a), ("second", prov_b))
            if prov is None
        ]
        return [f"missing provenance block in {' and '.join(missing)} artifact"], []
    refusals = [
        f"provenance {field!r} differs: {prov_a.get(field)!r} != {prov_b.get(field)!r}"
        for field in STRICT_FIELDS
        if prov_a.get(field) != prov_b.get(field)
    ]
    warnings = [
        f"environment {field!r} differs: {prov_a.get(field)!r} != {prov_b.get(field)!r}"
        for field in INFO_FIELDS
        if prov_a.get(field) != prov_b.get(field)
    ]
    return refusals, warnings
