"""Logging configuration for the ``repro`` logger hierarchy.

Library code never prints: examples, benchmarks and the CLI log through
children of the root ``repro`` logger (``repro.examples.quickstart``,
``repro.benchmarks.autoscale``, ``repro.cluster`` …) and a single
:func:`configure_logging` call — driven by the ``--log-level`` flag —
decides what is shown.  The CLI's results tables remain plain ``print``
output (they *are* the program's product); everything else — example and
benchmark progress, tables, diagnostics — goes through the logger.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["configure_logging", "LOG_LEVELS"]

LOG_LEVELS = ("debug", "info", "warning", "error")

_HANDLER_FLAG = "_repro_handler"


def configure_logging(level: str = "info", stream=None) -> logging.Logger:
    """Configure the root ``repro`` logger and return it.

    Idempotent: repeated calls adjust the level but never stack handlers,
    so tests and long-lived processes can reconfigure freely.  The handler
    writes bare messages to ``stream`` (default stdout, matching the
    CLI's table output) and the logger does not propagate, keeping host
    applications' logging untouched.
    """
    if level not in LOG_LEVELS:
        raise ValueError(f"unknown log level {level!r}; choose from {LOG_LEVELS}")
    logger = logging.getLogger("repro")
    logger.setLevel(getattr(logging, level.upper()))
    logger.propagate = False
    for handler in logger.handlers:
        if getattr(handler, _HANDLER_FLAG, False):
            break
    else:
        handler = logging.StreamHandler(stream if stream is not None else sys.stdout)
        handler.setFormatter(logging.Formatter("%(message)s"))
        setattr(handler, _HANDLER_FLAG, True)
        logger.addHandler(handler)
    return logger
