"""Online SLO engine: declarative objectives evaluated as the run evolves.

An :class:`SloObjective` states a promise about the cluster's behaviour —
"p95 queue wait stays at or under 4 steps", "we shed at most 2% of
arrivals", "at most 1% of frames violate QoS" — and the :class:`SloEngine`
checks every promise once per cluster step through the same observe-only
hook path the metrics registry uses.  Each objective is judged over a
**rolling window** of recent steps (transient spikes within the window
dilute; sustained pressure does not) and carries an **error budget**: the
percentage of run steps it is allowed to spend in breach before the run as
a whole counts as out of SLO.

Per objective and step the engine publishes four gauges —
``repro_slo_value``, ``repro_slo_breached``, ``repro_slo_burn_rate`` and
``repro_slo_budget_consumed_pct``, all labelled ``{slo="<name>"}`` — where
*burn rate* is the classic ratio of observed breach fraction in the window
to the allowed fraction (1.0 = spending the budget exactly as fast as it
accrues; 10 = ten times too fast).  On breach *entry* (healthy → breached,
not every breached step) it emits one ``slo_breach`` trace span keyed
``slo-<name>``, so a trace shows when each objective tipped over without
drowning in repeats.

The engine is strictly observe-only: it draws no randomness, mutates no
simulation state, and consumes only values the orchestrator already
computed — an SLO-instrumented run is bitwise identical to a bare one,
which ``tests/test_telemetry_slo.py`` pins for both stepping engines.
Queue-wait quantiles come from a fixed-bucket
:class:`~repro.telemetry.metrics.Histogram` via its ``quantile`` method,
trading a little resolution for O(buckets) evaluation at any fleet size.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Optional, Sequence

from repro.errors import ConfigurationError
from repro.telemetry.metrics import NULL_REGISTRY, QUEUE_WAIT_EDGES, Histogram
from repro.telemetry.trace import NULL_TRACER

__all__ = [
    "SloObjective",
    "QueueWaitObjective",
    "ShedRateObjective",
    "ViolationRateObjective",
    "StepDeltas",
    "SloEngine",
]


@dataclasses.dataclass(frozen=True)
class StepDeltas:
    """What one cluster step contributed, as the SLO engine sees it."""

    new_waits: tuple  #: queue waits of requests dispatched this step
    arrivals: int  #: requests that arrived this step
    shed: int  #: requests lost this step (rejected + dropped + failed)
    frames: int  #: frames transcoded this step
    violations: int  #: QoS-violating frames this step


@dataclasses.dataclass(frozen=True)
class SloObjective:
    """Base declarative objective: a name, a window and an error budget.

    ``window_steps`` is how much recent history each evaluation sees;
    ``error_budget_pct`` is the share of run steps the objective may spend
    in breach before :meth:`SloEngine.report` marks it unhealthy.
    Subclasses define what is measured and the threshold it must stay at
    or under.
    """

    name: str
    window_steps: int = 32
    error_budget_pct: float = 5.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("SLO objective needs a non-empty name")
        if self.window_steps < 1:
            raise ConfigurationError(
                f"SLO {self.name!r}: window_steps must be >= 1, got {self.window_steps}"
            )
        if not 0.0 < self.error_budget_pct <= 100.0:
            raise ConfigurationError(
                f"SLO {self.name!r}: error_budget_pct must be in (0, 100], "
                f"got {self.error_budget_pct}"
            )

    @property
    def threshold(self) -> float:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def sample(self, deltas: StepDeltas):
        """The window entry this step contributes."""
        raise NotImplementedError

    def value(self, window: Sequence) -> float:
        """The objective's current value over the windowed samples."""
        raise NotImplementedError


@dataclasses.dataclass(frozen=True)
class QueueWaitObjective(SloObjective):
    """``quantile`` of queue waits in the window stays <= ``max_steps``.

    Waits are bucketed into a fixed-edge histogram each evaluation and the
    quantile linearly interpolated (``Histogram.quantile``), so the value
    is a deterministic estimate independent of how many requests the
    window holds.  A window with no dispatches reads 0 — no waits is not
    a breach.
    """

    max_steps: float = 8.0
    quantile: float = 0.95
    edges: tuple = QUEUE_WAIT_EDGES

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < self.quantile <= 1.0:
            raise ConfigurationError(
                f"SLO {self.name!r}: quantile must be in (0, 1], got {self.quantile}"
            )

    @property
    def threshold(self) -> float:
        return float(self.max_steps)

    def describe(self) -> str:
        return f"p{self.quantile * 100:g} queue wait <= {self.max_steps:g} steps"

    def sample(self, deltas: StepDeltas):
        return deltas.new_waits

    def value(self, window: Sequence) -> float:
        histogram = Histogram("slo_queue_wait", self.edges)
        for waits in window:
            for wait in waits:
                histogram.observe(wait)
        if histogram.count == 0:
            return 0.0
        return histogram.quantile(self.quantile)


@dataclasses.dataclass(frozen=True)
class ShedRateObjective(SloObjective):
    """Shed arrivals (rejected + dropped + failed) stay <= ``max_pct``.

    Rate of shed requests over arrivals within the window; a window with
    no arrivals reads 0 — an idle cluster sheds nothing.
    """

    max_pct: float = 5.0

    @property
    def threshold(self) -> float:
        return float(self.max_pct)

    def describe(self) -> str:
        return f"shed rate <= {self.max_pct:g}% of arrivals"

    def sample(self, deltas: StepDeltas):
        return (deltas.shed, deltas.arrivals)

    def value(self, window: Sequence) -> float:
        shed = sum(entry[0] for entry in window)
        arrivals = sum(entry[1] for entry in window)
        if arrivals == 0:
            return 0.0
        return 100.0 * shed / arrivals


@dataclasses.dataclass(frozen=True)
class ViolationRateObjective(SloObjective):
    """QoS-violating frames stay <= ``max_pct`` of frames in the window."""

    max_pct: float = 1.0

    @property
    def threshold(self) -> float:
        return float(self.max_pct)

    def describe(self) -> str:
        return f"QoS violation rate <= {self.max_pct:g}% of frames"

    def sample(self, deltas: StepDeltas):
        return (deltas.violations, deltas.frames)

    def value(self, window: Sequence) -> float:
        violations = sum(entry[0] for entry in window)
        frames = sum(entry[1] for entry in window)
        if frames == 0:
            return 0.0
        return 100.0 * violations / frames


class _ObjectiveState:
    """Mutable per-objective tracking inside the engine."""

    __slots__ = (
        "objective",
        "window",
        "breach_window",
        "steps",
        "breach_steps",
        "in_breach",
        "last_value",
        "worst_value",
        "max_burn_rate",
        "g_value",
        "g_breached",
        "g_burn",
        "g_budget",
    )

    def __init__(self, objective: SloObjective, metrics) -> None:
        self.objective = objective
        self.window = deque(maxlen=objective.window_steps)
        self.breach_window = deque(maxlen=objective.window_steps)
        self.steps = 0
        self.breach_steps = 0
        self.in_breach = False
        self.last_value = 0.0
        self.worst_value = 0.0
        self.max_burn_rate = 0.0
        labels = {"slo": objective.name}
        self.g_value = metrics.gauge(
            "repro_slo_value", "Current SLO objective value", labels
        )
        self.g_breached = metrics.gauge(
            "repro_slo_breached", "1 while the objective is in breach", labels
        )
        self.g_burn = metrics.gauge(
            "repro_slo_burn_rate",
            "Windowed breach fraction over the allowed fraction",
            labels,
        )
        self.g_budget = metrics.gauge(
            "repro_slo_budget_consumed_pct",
            "Share of the run-long error budget already spent",
            labels,
        )

    @property
    def budget_consumed_pct(self) -> float:
        if self.steps == 0:
            return 0.0
        allowed = self.objective.error_budget_pct / 100.0 * self.steps
        return 100.0 * self.breach_steps / allowed

    @property
    def burn_rate(self) -> float:
        if not self.breach_window:
            return 0.0
        breached_fraction = sum(self.breach_window) / len(self.breach_window)
        return breached_fraction / (self.objective.error_budget_pct / 100.0)


class SloEngine:
    """Evaluates a set of objectives once per step; observe-only.

    Feed it the orchestrator's running totals via :meth:`observe_step`
    (the engine differences them itself, so call sites pass what they
    already have) and read the verdicts back as ``repro_slo_*`` gauges,
    breach-entry trace spans, and the end-of-run :meth:`report`.
    """

    def __init__(
        self,
        objectives: Sequence[SloObjective],
        metrics=NULL_REGISTRY,
        tracer=NULL_TRACER,
    ) -> None:
        names = [objective.name for objective in objectives]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate SLO objective names: {names}")
        self.tracer = tracer
        self._states = [_ObjectiveState(obj, metrics) for obj in objectives]
        self._seen_waits = 0
        self._last_rejected = 0
        self._last_failed = 0

    @property
    def objectives(self) -> list[SloObjective]:
        return [state.objective for state in self._states]

    def observe_step(
        self,
        step: int,
        *,
        queue_waits: Sequence[int],
        arrivals: int,
        rejected_total: int,
        dropped: int,
        failed_total: int,
        frames: int,
        violations: int,
    ) -> None:
        """Judge every objective against this step's observations.

        ``queue_waits`` is the run's growing wait list and ``rejected_total``
        / ``failed_total`` are running totals (the engine differences them);
        ``arrivals``, ``dropped``, ``frames`` and ``violations`` are this
        step's increments, matching what the fleet sample already carries.
        """
        new_waits = tuple(queue_waits[self._seen_waits:])
        self._seen_waits = len(queue_waits)
        shed = (
            (rejected_total - self._last_rejected)
            + dropped
            + (failed_total - self._last_failed)
        )
        self._last_rejected = rejected_total
        self._last_failed = failed_total
        deltas = StepDeltas(
            new_waits=new_waits,
            arrivals=arrivals,
            shed=shed,
            frames=frames,
            violations=violations,
        )
        for state in self._states:
            objective = state.objective
            state.window.append(objective.sample(deltas))
            value = objective.value(state.window)
            breached = value > objective.threshold
            state.steps += 1
            state.breach_window.append(1 if breached else 0)
            state.last_value = value
            state.worst_value = max(state.worst_value, value)
            if breached:
                state.breach_steps += 1
            burn = state.burn_rate
            state.max_burn_rate = max(state.max_burn_rate, burn)
            state.g_value.set(value)
            state.g_breached.set(1.0 if breached else 0.0)
            state.g_burn.set(burn)
            state.g_budget.set(state.budget_consumed_pct)
            if breached and not state.in_breach:
                self.tracer.emit(
                    "slo_breach",
                    step,
                    f"slo-{objective.name}",
                    slo=objective.name,
                    value=value,
                    threshold=objective.threshold,
                    burn_rate=burn,
                )
            state.in_breach = breached

    def report(self) -> list[dict]:
        """Per-objective verdicts for the end-of-run summary.

        ``healthy`` means the objective stayed within its error budget
        over the whole run — individual breached steps are the budget
        working as intended, not a failure by themselves.
        """
        out = []
        for state in self._states:
            objective = state.objective
            breach_pct = (
                100.0 * state.breach_steps / state.steps if state.steps else 0.0
            )
            out.append(
                {
                    "name": objective.name,
                    "objective": objective.describe(),
                    "threshold": objective.threshold,
                    "window_steps": objective.window_steps,
                    "error_budget_pct": objective.error_budget_pct,
                    "steps": state.steps,
                    "breach_steps": state.breach_steps,
                    "breach_pct": breach_pct,
                    "budget_consumed_pct": state.budget_consumed_pct,
                    "max_burn_rate": state.max_burn_rate,
                    "last_value": state.last_value,
                    "worst_value": state.worst_value,
                    "healthy": state.budget_consumed_pct <= 100.0,
                }
            )
        return out
