"""Request-lifecycle tracing: one span stream per cluster run.

Every :class:`~repro.cluster.workload.WorkloadEvent` is followed from
arrival to its terminal outcome; the tracer emits one flat JSON object per
span through a pluggable sink.  Span kinds and their extra fields:

``arrival``
    ``service_class``, ``frames`` (total playlist frames), ``patience``.
``queued``
    The admission policy parked the request (``queue_length`` after).
``rejected`` *(terminal)*
    Turned away at arrival (``policy`` label).
``dispatched``
    Sent to a server: ``server`` (global slot index), ``wait_steps``
    (queue steps; 0 = admitted on arrival), ``degraded`` (brownout),
    ``brownout_level``.  A crash-recovery re-dispatch additionally carries
    ``retry`` (the attempt number); the field is absent on first
    dispatches, so fault-free span streams are byte-identical to runs
    without a fault injector.
``video_complete``
    Per-video transcode progress of a running session: ``video`` (playlist
    position just finished), ``videos`` (playlist length).
``served`` *(terminal)*
    Session finished or run ended: ``frames`` actually transcoded,
    ``completed`` (False when the run ended mid-session).
``dropped`` *(terminal)*
    Aged out of the queue past its patience deadline (``waited`` steps).
``abandoned`` *(terminal)*
    Still queued when the run ended (``waited`` steps).
``interrupted``
    The request's server crashed mid-session: ``server``, ``frames``
    transcoded so far, ``attempt`` (the retry this crash triggers).  Not
    terminal — a ``failed`` or another ``dispatched`` span follows.
``failed`` *(terminal)*
    Lost to crashes: the retry budget ran out (``attempts``, ``frames``)
    or the retry was still pending when the run ended (``pending``).
``fault``
    Fleet-level fault marker, keyed by server (``request`` is
    ``server-<index>``, not a user id — excluded from the per-request
    lifecycle invariant): ``fault`` of ``crash``/``straggler``/
    ``warmup_failure`` plus fault-specific fields.
``slo_breach``
    SLO marker, keyed by objective (``request`` is ``slo-<name>``, not a
    user id — excluded from the lifecycle invariant like ``fault``):
    emitted when an objective *enters* breach, with ``slo``, ``value``,
    ``threshold`` and ``burn_rate``.  See :mod:`repro.telemetry.slo`.

All spans whose ``request`` is a user id obey the lifecycle invariant;
trace spans of a crash-migrated session keep the request's ORIGINAL user
id across every retry (the ``<user>#r<attempt>`` key appears only in the
ledger's ``records_by_server``).

Every span carries ``kind``, ``step`` (cluster step; observed simulation
time, never wall clock — determinism) and ``request`` (the request's
user id).  The lifecycle invariant — every arrival ends in exactly one
terminal span, and terminal counts reconcile with the
:class:`~repro.metrics.cluster.ClusterSummary` ledger — is pinned by
``tests/test_telemetry.py``.

Tracing is observe-only: it draws no randomness and mutates no simulation
state, so an enabled trace cannot change the run it describes.  When
disabled, :data:`NULL_TRACER` makes ``emit`` a no-op and exposes
``enabled = False`` so per-step progress bookkeeping can be skipped
entirely.
"""

from __future__ import annotations

import json
from typing import Optional

__all__ = [
    "TraceSink",
    "JsonlTraceSink",
    "ListTraceSink",
    "RequestTracer",
    "NULL_TRACER",
    "TERMINAL_KINDS",
    "MARKER_KINDS",
]

#: Span kinds that end a request's lifecycle (exactly one per arrival).
TERMINAL_KINDS = frozenset({"served", "rejected", "dropped", "abandoned", "failed"})

#: Fleet-level marker kinds whose ``request`` is NOT a user id (``server-<i>``
#: for faults, ``slo-<name>`` for SLO breaches) — excluded from lifecycles.
MARKER_KINDS = frozenset({"fault", "slo_breach"})


class TraceSink:
    """Receives span dicts; subclasses decide where they go."""

    def write(self, span: dict) -> None:
        raise NotImplementedError

    def flush(self) -> None:  # pragma: no cover - default no-op
        pass

    def close(self) -> None:  # pragma: no cover - default no-op
        pass

    def __enter__(self) -> "TraceSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class JsonlTraceSink(TraceSink):
    """Appends one compact JSON object per line to a file.

    The file is opened lazily on the first span so a run that emits nothing
    leaves nothing behind, and key order is preserved as emitted (``kind``,
    ``step``, ``request`` first) so the JSONL diffs cleanly between seeded
    runs.

    Spans are flushed to the OS every ``flush_every`` writes (and on
    ``flush``/``close``), so a run that dies mid-stream leaves a readable,
    line-complete JSONL prefix instead of whatever happened to fit the stdio
    buffer — the analysis layer can post-mortem a crashed run.  The sink is
    a context manager; leaving the ``with`` block closes the file.
    """

    def __init__(self, path: str, flush_every: int = 256) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = str(path)
        self.flush_every = int(flush_every)
        self.count = 0
        self._unflushed = 0
        self._handle = None

    def write(self, span: dict) -> None:
        if self._handle is None:
            self._handle = open(self.path, "w", encoding="utf-8")
        self._handle.write(json.dumps(span, separators=(",", ":")) + "\n")
        self.count += 1
        self._unflushed += 1
        if self._unflushed >= self.flush_every:
            self.flush()

    def flush(self) -> None:
        """Push buffered spans to the OS; only whole lines ever land."""
        if self._handle is not None:
            self._handle.flush()
        self._unflushed = 0

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self._unflushed = 0


class ListTraceSink(TraceSink):
    """Collects spans in memory — the test and analysis sink."""

    def __init__(self) -> None:
        self.spans: list[dict] = []

    def write(self, span: dict) -> None:
        self.spans.append(span)

    @property
    def count(self) -> int:
        return len(self.spans)

    def by_kind(self, kind: str) -> list[dict]:
        return [span for span in self.spans if span["kind"] == kind]

    def for_request(self, request_id: str) -> list[dict]:
        return [span for span in self.spans if span["request"] == request_id]

    def terminal_spans(self) -> list[dict]:
        return [span for span in self.spans if span["kind"] in TERMINAL_KINDS]


class RequestTracer:
    """Emits lifecycle spans for every workload request through a sink."""

    enabled = True

    def __init__(self, sink: TraceSink) -> None:
        self.sink = sink
        self.emitted = 0

    def emit(self, kind: str, step: int, request_id: str, **fields) -> None:
        span = {"kind": kind, "step": step, "request": request_id}
        span.update(fields)
        self.sink.write(span)
        self.emitted += 1

    def close(self) -> None:
        self.sink.close()


class _NullTracer:
    """Disabled tracer: emits nothing, signals callers to skip bookkeeping."""

    enabled = False
    emitted = 0
    sink = None

    def emit(self, kind: str, step: int, request_id: str, **fields) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = _NullTracer()
