"""Telemetry configuration and the per-run hub object.

:class:`TelemetryConfig` is the declarative knob set (what to trace, where
to export, whether to profile) carried by the CLI flags; calling
:meth:`TelemetryConfig.build` materialises it into a :class:`Telemetry`
hub holding the live tracer, metrics registry, recorder and profiler that
the orchestrators publish into.

The disabled path is the common one and must cost nothing:
:meth:`Telemetry.disabled` returns a shared singleton whose components are
the null objects from the sibling modules, so instrumented code holds one
attribute per concern and never branches on "is telemetry on?" beyond the
``enabled`` flags the null objects expose.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Optional

from repro.errors import ConfigurationError
from repro.telemetry.metrics import (
    NULL_REGISTRY,
    MetricsRegistry,
    TimeSeriesRecorder,
)
from repro.telemetry.profiler import NULL_PROFILER, StepProfiler
from repro.telemetry.slo import SloEngine, SloObjective
from repro.telemetry.trace import (
    NULL_TRACER,
    JsonlTraceSink,
    RequestTracer,
    TraceSink,
)

__all__ = ["TelemetryConfig", "Telemetry", "resolve_telemetry"]


def _check_output_path(label: str, path: Optional[str]) -> None:
    """Fail fast on an output destination that can never be written.

    Rejects a path whose parent directory does not exist or is not
    writable, and a path that names an existing directory.  Does NOT
    create anything — validation must be side-effect free.
    """
    if not path:
        return
    target = os.path.abspath(path)
    if os.path.isdir(target):
        raise ConfigurationError(
            f"telemetry {label} {path!r} is a directory, not a writable file"
        )
    parent = os.path.dirname(target)
    if not os.path.isdir(parent):
        raise ConfigurationError(
            f"telemetry {label} {path!r}: directory {parent!r} does not exist"
        )
    if not os.access(parent, os.W_OK):
        raise ConfigurationError(
            f"telemetry {label} {path!r}: directory {parent!r} is not writable"
        )


@dataclasses.dataclass(frozen=True)
class TelemetryConfig:
    """What to observe and where to export it.

    Attributes
    ----------
    trace_path:
        Write request-lifecycle spans as JSONL here (``--trace-out``).
    metrics_path:
        Write the final metrics registry in Prometheus text format here on
        finalize (``--metrics-out``).
    profile:
        Collect per-phase wall-time in the stepping engines (``--profile``).
    trace_sink:
        Explicit sink instance (e.g. :class:`ListTraceSink` in tests);
        overrides ``trace_path``.
    metrics:
        Force the metrics registry on even without ``metrics_path`` —
        useful when the caller wants to inspect instruments in memory.
    record_series:
        Capture per-step counter/gauge snapshots in a
        :class:`~repro.telemetry.metrics.TimeSeriesRecorder` (implied by
        ``metrics``/``metrics_path`` being unset leaves it off).
    slo:
        Declarative :class:`~repro.telemetry.slo.SloObjective` set to
        evaluate online each step.  Any objective implies a live metrics
        registry (the ``repro_slo_*`` gauges need somewhere to live).
    """

    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None
    profile: bool = False
    trace_sink: Optional[TraceSink] = None
    metrics: bool = False
    record_series: bool = False
    slo: tuple = ()

    @property
    def any_enabled(self) -> bool:
        return bool(
            self.trace_path
            or self.metrics_path
            or self.profile
            or self.trace_sink is not None
            or self.metrics
            or self.record_series
            or self.slo
        )

    def build(self) -> "Telemetry":
        """Materialise the live hub this config describes.

        Output paths are validated here — at run *start* — so a bad
        ``--trace-out``/``--metrics-out`` destination fails immediately
        with a clear error instead of after minutes of simulation (the
        trace sink opens lazily and the metrics file is written on
        finalize, so without this check the failure would surface at the
        very end).
        """
        if not self.any_enabled:
            return Telemetry.disabled()
        _check_output_path("trace_path (--trace-out)", self.trace_path)
        _check_output_path("metrics_path (--metrics-out)", self.metrics_path)
        if self.trace_sink is not None:
            tracer = RequestTracer(self.trace_sink)
        elif self.trace_path:
            tracer = RequestTracer(JsonlTraceSink(self.trace_path))
        else:
            tracer = NULL_TRACER
        if self.metrics or self.metrics_path or self.record_series or self.slo:
            registry = MetricsRegistry()
            recorder = (
                TimeSeriesRecorder(registry) if self.record_series else None
            )
        else:
            registry = NULL_REGISTRY
            recorder = None
        profiler = StepProfiler() if self.profile else NULL_PROFILER
        slo_engine = None
        if self.slo:
            for objective in self.slo:
                if not isinstance(objective, SloObjective):
                    raise ConfigurationError(
                        f"slo entries must be SloObjective instances, "
                        f"got {type(objective).__name__}"
                    )
            slo_engine = SloEngine(list(self.slo), metrics=registry, tracer=tracer)
        return Telemetry(
            tracer=tracer,
            metrics=registry,
            profiler=profiler,
            recorder=recorder,
            slo=slo_engine,
            config=self,
        )


class Telemetry:
    """The live per-run observability hub.

    Holds one component per concern — ``tracer`` (request lifecycles),
    ``metrics`` (registry), ``profiler`` (phase wall-time), ``recorder``
    (per-step metric snapshots, optional) — each individually a null
    object when its concern is off.  :meth:`finalize` flushes exports and
    is idempotent, so orchestrators can call it unconditionally at the end
    of a run.
    """

    _DISABLED: Optional["Telemetry"] = None

    def __init__(
        self,
        tracer=NULL_TRACER,
        metrics=NULL_REGISTRY,
        profiler=NULL_PROFILER,
        recorder: Optional[TimeSeriesRecorder] = None,
        slo: Optional[SloEngine] = None,
        config: Optional[TelemetryConfig] = None,
    ) -> None:
        self.tracer = tracer
        self.metrics = metrics
        self.profiler = profiler
        self.recorder = recorder
        self.slo = slo
        self.config = config if config is not None else TelemetryConfig()
        self._finalized = False

    @classmethod
    def disabled(cls) -> "Telemetry":
        """The shared all-null hub (safe: it holds no per-run state)."""
        if cls._DISABLED is None:
            cls._DISABLED = cls()
        return cls._DISABLED

    @property
    def enabled(self) -> bool:
        return (
            self.tracer.enabled
            or self.metrics.enabled
            or self.profiler.enabled
            or self.recorder is not None
            or self.slo is not None
        )

    def record_step(self, step: int) -> None:
        """Snapshot the registry for this step (no-op without a recorder)."""
        if self.recorder is not None:
            self.recorder.record(step)

    def observe_slo(self, step: int, **observations) -> None:
        """Feed the SLO engine one step's observations (no-op without one).

        Call *before* :meth:`record_step` so the recorder's snapshot for
        the step already includes the ``repro_slo_*`` gauge updates.
        """
        if self.slo is not None:
            self.slo.observe_step(step, **observations)

    def finalize(self) -> None:
        """Flush exports: close the trace sink, write the metrics file."""
        if self._finalized or self is Telemetry._DISABLED:
            return
        self._finalized = True
        self.tracer.close()
        if self.config.metrics_path and self.metrics.enabled:
            with open(self.config.metrics_path, "w", encoding="utf-8") as handle:
                handle.write(self.metrics.to_prometheus())

    def summary(self) -> dict:
        """Compact description of what was observed, for run output."""
        out: dict = {"enabled": self.enabled}
        if self.tracer.enabled:
            out["trace_events"] = self.tracer.emitted
            if self.config.trace_path:
                out["trace_path"] = self.config.trace_path
        if self.metrics.enabled:
            out["metrics"] = len(self.metrics)
            if self.config.metrics_path:
                out["metrics_path"] = self.config.metrics_path
        if self.profiler.enabled:
            out["profile"] = self.profiler.report()
        if self.slo is not None:
            out["slo"] = self.slo.report()
        return out


def resolve_telemetry(telemetry) -> Telemetry:
    """Accept ``None``, a :class:`TelemetryConfig` or a built hub."""
    if telemetry is None:
        return Telemetry.disabled()
    if isinstance(telemetry, TelemetryConfig):
        return telemetry.build()
    if isinstance(telemetry, Telemetry):
        return telemetry
    raise TypeError(
        f"telemetry must be None, TelemetryConfig or Telemetry, got {type(telemetry)!r}"
    )
