"""Step profiler: per-phase wall-time accounting for the stepping engines.

The batch engine's speedup over the scalar loop comes from four distinct
phases (gather decisions, fused model eval, MAMUT fleet activation, scatter
records); the scalar engine has its own three (decide, allocate, execute).
The profiler wraps each phase in a context manager and accumulates wall
time, so ``bench_step_throughput.py`` and the cluster CLI can *attribute*
throughput instead of only measuring it end to end.

Wall-clock timing is inherently nondeterministic, which is fine: the
profiler only ever observes time, never feeds it back into the simulation,
so enabling it cannot perturb a seeded run.  When disabled, the shared
:data:`NULL_PROFILER` hands out a single reusable no-op context manager —
one dict-free method call and ``with`` enter/exit per phase, cheap enough
to leave the hooks in the hot loops unconditionally (bounded by a guard in
``bench_step_throughput.py``).
"""

from __future__ import annotations

import time

__all__ = ["StepProfiler", "PhaseStats", "NULL_PROFILER"]


class PhaseStats:
    """Accumulated wall-time for one named phase."""

    __slots__ = ("name", "total_s", "calls")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total_s = 0.0
        self.calls = 0

    def to_dict(self) -> dict:
        return {"name": self.name, "total_s": self.total_s, "calls": self.calls}


class _PhaseTimer:
    """Context manager charging elapsed wall time to one phase."""

    __slots__ = ("_stats", "_start")

    def __init__(self, stats: PhaseStats) -> None:
        self._stats = stats
        self._start = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._stats.total_s += time.perf_counter() - self._start
        self._stats.calls += 1


class StepProfiler:
    """Accumulates per-phase wall-time and a step count.

    Usage::

        with profiler.phase("evaluate"):
            ...fused model eval...
        profiler.count_step()

    Phases nest freely (a cluster-level phase may contain engine-level
    ones); each charges only its own wall-clock span.
    """

    enabled = True

    def __init__(self) -> None:
        self._phases: dict[str, PhaseStats] = {}
        self.steps = 0
        self._started = time.perf_counter()

    def phase(self, name: str) -> _PhaseTimer:
        stats = self._phases.get(name)
        if stats is None:
            stats = PhaseStats(name)
            self._phases[name] = stats
        return _PhaseTimer(stats)

    def count_step(self, steps: int = 1) -> None:
        self.steps += steps

    @property
    def phases(self) -> list[PhaseStats]:
        """Phase stats in first-seen order."""
        return list(self._phases.values())

    def report(self) -> dict:
        """Summary dict: per-phase totals plus derived steps/sec.

        ``steps_per_s`` is computed against the summed phase time (the
        instrumented portion of the run), so it reflects engine throughput
        rather than whole-process wall time.
        """
        phase_rows = [stats.to_dict() for stats in self._phases.values()]
        instrumented_s = sum(row["total_s"] for row in phase_rows)
        for row in phase_rows:
            row["share"] = (
                row["total_s"] / instrumented_s if instrumented_s > 0 else 0.0
            )
        return {
            "steps": self.steps,
            "instrumented_s": instrumented_s,
            "steps_per_s": (
                self.steps / instrumented_s if instrumented_s > 0 else 0.0
            ),
            "phases": phase_rows,
        }


class _NullTimer:
    """Single shared no-op context manager for the disabled profiler."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_TIMER = _NullTimer()


class _NullProfiler:
    """Disabled profiler: ``phase()`` returns a shared no-op timer."""

    enabled = False
    steps = 0

    def phase(self, name: str) -> _NullTimer:
        return _NULL_TIMER

    def count_step(self, steps: int = 1) -> None:
        pass

    @property
    def phases(self) -> list:
        return []

    def report(self) -> dict:
        return {"steps": 0, "instrumented_s": 0.0, "steps_per_s": 0.0, "phases": []}


NULL_PROFILER = _NullProfiler()
