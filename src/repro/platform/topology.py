"""CPU topology of the transcoding server."""

from __future__ import annotations

import dataclasses

from repro.errors import PlatformError

__all__ = ["CpuTopology"]


@dataclasses.dataclass(frozen=True)
class CpuTopology:
    """Description of the server's CPU resources.

    The defaults match the paper's platform: two Intel Xeon E5-2667 v4
    sockets, 8 cores per socket, 2-way SMT, i.e. 16 physical cores and 32
    hardware threads.

    Attributes
    ----------
    sockets:
        Number of CPU packages.
    cores_per_socket:
        Physical cores per package.
    smt:
        Hardware threads per physical core (2 = Hyper-Threading).
    smt_efficiency:
        Throughput of each of two threads sharing a core, relative to a
        thread running alone on the core (two SMT siblings together deliver
        roughly ``2 * smt_efficiency`` of a core).
    """

    sockets: int = 2
    cores_per_socket: int = 8
    smt: int = 2
    smt_efficiency: float = 0.75

    def __post_init__(self) -> None:
        if self.sockets < 1:
            raise PlatformError(f"sockets must be >= 1, got {self.sockets}")
        if self.cores_per_socket < 1:
            raise PlatformError(
                f"cores_per_socket must be >= 1, got {self.cores_per_socket}"
            )
        if self.smt < 1:
            raise PlatformError(f"smt must be >= 1, got {self.smt}")
        if not 0.5 <= self.smt_efficiency <= 1.0:
            raise PlatformError(
                f"smt_efficiency must be in [0.5, 1.0], got {self.smt_efficiency}"
            )

    @property
    def physical_cores(self) -> int:
        """Total number of physical cores in the server."""
        return self.sockets * self.cores_per_socket

    @property
    def hardware_threads(self) -> int:
        """Total number of hardware threads (logical CPUs)."""
        return self.physical_cores * self.smt

    def core_ids(self) -> range:
        """Identifiers of the physical cores (0 .. physical_cores - 1)."""
        return range(self.physical_cores)

    def effective_capacity(self, requested_threads: int) -> float:
        """Aggregate throughput capacity (in single-thread units) available
        to ``requested_threads`` software threads.

        * Up to ``physical_cores`` threads each get a dedicated core.
        * Beyond that, threads share cores via SMT and each sibling runs at
          ``smt_efficiency`` of a dedicated thread.
        * Beyond ``hardware_threads``, additional software threads are
          time-sliced and add no capacity.
        """
        if requested_threads < 0:
            raise PlatformError(
                f"requested_threads must be >= 0, got {requested_threads}"
            )
        cores = self.physical_cores
        hw_threads = self.hardware_threads
        if requested_threads <= cores:
            return float(requested_threads)
        shared = min(requested_threads, hw_threads) - cores
        # `cores - shared` cores keep one dedicated thread; `shared` cores run
        # two siblings, each at smt_efficiency.
        return float((cores - shared) + 2 * shared * self.smt_efficiency)

    def contention_scale(self, requested_threads: int) -> float:
        """Per-thread throughput scale in ``(0, 1]`` under the current load.

        The server grants every requested software thread a fair share of the
        effective capacity, so each thread runs at
        ``effective_capacity / requested_threads`` of a dedicated core.
        """
        if requested_threads <= 0:
            return 1.0
        return min(1.0, self.effective_capacity(requested_threads) / requested_threads)
