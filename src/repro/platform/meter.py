"""Energy/average-power meter.

Models a RAPL-style package energy counter: callers feed it ``(power, dt)``
samples and can read back total energy, overall average power, and a sliding
window average (the quantity the agents observe as their "power" state).
"""

from __future__ import annotations

from collections import deque

from repro.errors import PlatformError

__all__ = ["PowerMeter"]


class PowerMeter:
    """Accumulates power samples into energy and windowed averages.

    Parameters
    ----------
    window_seconds:
        Length of the sliding window used by :meth:`windowed_average_w`.
    """

    def __init__(self, window_seconds: float = 1.0) -> None:
        if window_seconds <= 0:
            raise PlatformError(f"window_seconds must be positive, got {window_seconds}")
        self.window_seconds = float(window_seconds)
        self._energy_j = 0.0
        self._elapsed_s = 0.0
        self._window: deque[tuple[float, float]] = deque()  # (power_w, dt_s)
        self._window_time = 0.0

    def record(self, power_w: float, duration_s: float) -> None:
        """Record that the package drew ``power_w`` for ``duration_s`` seconds."""
        if power_w < 0:
            raise PlatformError(f"power must be >= 0, got {power_w}")
        if duration_s < 0:
            raise PlatformError(f"duration must be >= 0, got {duration_s}")
        if duration_s == 0:
            return
        self._energy_j += power_w * duration_s
        self._elapsed_s += duration_s
        self._window.append((power_w, duration_s))
        self._window_time += duration_s
        self._trim_window()

    def _trim_window(self) -> None:
        while self._window and self._window_time - self._window[0][1] >= self.window_seconds:
            _, dt = self._window.popleft()
            self._window_time -= dt

    @property
    def energy_joules(self) -> float:
        """Total energy accumulated since construction or the last reset."""
        return self._energy_j

    @property
    def elapsed_seconds(self) -> float:
        """Total time covered by the recorded samples."""
        return self._elapsed_s

    def average_power_w(self) -> float:
        """Average power over the entire recorded history (0 if empty)."""
        if self._elapsed_s == 0:
            return 0.0
        return self._energy_j / self._elapsed_s

    def windowed_average_w(self) -> float:
        """Average power over the most recent ``window_seconds`` of samples."""
        if not self._window:
            return 0.0
        energy = sum(p * dt for p, dt in self._window)
        return energy / self._window_time

    def reset(self) -> None:
        """Clear all recorded samples."""
        self._energy_j = 0.0
        self._elapsed_s = 0.0
        self._window.clear()
        self._window_time = 0.0
