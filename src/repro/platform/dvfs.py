"""Per-core DVFS driver.

On the real platform, changing a core's frequency is a write to a sysfs file
(``/sys/devices/system/cpu/cpu<N>/cpufreq/scaling_setspeed``).  This module
reproduces that interface as an in-memory driver: frequencies are validated
against the supported set, can be set per core or chip-wide, and can be read
back, including as a fake sysfs tree for tests and examples.
"""

from __future__ import annotations

import enum
from typing import Iterable, Mapping

from repro.constants import PLATFORM_MAX_FREQ_GHZ, PLATFORM_MIN_FREQ_GHZ
from repro.errors import DvfsError
from repro.platform.topology import CpuTopology

__all__ = ["DvfsPolicy", "DvfsDriver", "DEFAULT_AVAILABLE_FREQUENCIES_GHZ"]

#: Frequencies (GHz) exposed by the cpufreq driver of the modelled platform.
#: Includes the 1.2-1.6 GHz points that MAMUT's DVFS agent discards.
DEFAULT_AVAILABLE_FREQUENCIES_GHZ: tuple[float, ...] = (
    1.2,
    1.4,
    1.6,
    1.9,
    2.3,
    2.6,
    2.9,
    3.2,
)


class DvfsPolicy(enum.Enum):
    """How frequency decisions are applied to the package.

    ``PER_CORE`` is what MAMUT and the mono-agent controller use: only the
    cores assigned to a video run at the requested frequency, while unused
    cores are parked at the minimum frequency.  ``CHIP_WIDE`` models a
    conventional governor where one frequency is applied to every core of the
    package (idle cores included), which is how the heuristic baseline's
    DVFS-for-power-capping behaves in practice.
    """

    PER_CORE = "per-core"
    CHIP_WIDE = "chip-wide"


class DvfsDriver:
    """In-memory per-core frequency driver.

    Parameters
    ----------
    topology:
        CPU topology; one frequency entry is kept per physical core.
    available_frequencies_ghz:
        The discrete frequency points supported by the driver.
    initial_frequency_ghz:
        Frequency applied to every core at construction time (defaults to the
        lowest available frequency, mimicking the powersave governor).
    """

    def __init__(
        self,
        topology: CpuTopology | None = None,
        available_frequencies_ghz: Iterable[float] = DEFAULT_AVAILABLE_FREQUENCIES_GHZ,
        initial_frequency_ghz: float | None = None,
    ) -> None:
        self.topology = topology if topology is not None else CpuTopology()
        freqs = tuple(sorted(float(f) for f in available_frequencies_ghz))
        if not freqs:
            raise DvfsError("available_frequencies_ghz must not be empty")
        for freq in freqs:
            if not PLATFORM_MIN_FREQ_GHZ <= freq <= PLATFORM_MAX_FREQ_GHZ:
                raise DvfsError(
                    f"frequency {freq} GHz outside supported range "
                    f"[{PLATFORM_MIN_FREQ_GHZ}, {PLATFORM_MAX_FREQ_GHZ}]"
                )
        self._available = freqs
        initial = float(initial_frequency_ghz) if initial_frequency_ghz else freqs[0]
        self._validate(initial)
        self._frequencies: dict[int, float] = {
            core: initial for core in self.topology.core_ids()
        }

    # -- queries ---------------------------------------------------------------

    @property
    def available_frequencies_ghz(self) -> tuple[float, ...]:
        """Supported frequency points, ascending."""
        return self._available

    @property
    def min_frequency_ghz(self) -> float:
        """Lowest supported frequency."""
        return self._available[0]

    @property
    def max_frequency_ghz(self) -> float:
        """Highest supported frequency."""
        return self._available[-1]

    def get_frequency(self, core_id: int) -> float:
        """Current frequency of a physical core."""
        self._validate_core(core_id)
        return self._frequencies[core_id]

    def frequencies(self) -> Mapping[int, float]:
        """Snapshot of every core's current frequency."""
        return dict(self._frequencies)

    # -- actuation ---------------------------------------------------------------

    def set_frequency(self, core_id: int, frequency_ghz: float) -> None:
        """Set one core's frequency (per-core DVFS)."""
        self._validate_core(core_id)
        self._validate(frequency_ghz)
        self._frequencies[core_id] = float(frequency_ghz)

    def set_all(self, frequency_ghz: float) -> None:
        """Set every core to the same frequency (chip-wide DVFS)."""
        self._validate(frequency_ghz)
        for core in self._frequencies:
            self._frequencies[core] = float(frequency_ghz)

    def closest_available(self, frequency_ghz: float) -> float:
        """Supported frequency closest to an arbitrary request."""
        if frequency_ghz <= 0:
            raise DvfsError(f"frequency must be positive, got {frequency_ghz}")
        return min(self._available, key=lambda f: abs(f - frequency_ghz))

    # -- sysfs-style facade --------------------------------------------------------

    def sysfs_read(self, path: str) -> str:
        """Read a cpufreq attribute through a sysfs-like path.

        Supported paths::

            /sys/devices/system/cpu/cpu<N>/cpufreq/scaling_cur_freq
            /sys/devices/system/cpu/cpu<N>/cpufreq/scaling_available_frequencies

        Frequencies are reported in kHz, as on Linux.
        """
        core_id, attribute = self._parse_sysfs_path(path)
        if attribute == "scaling_cur_freq":
            return str(int(self.get_frequency(core_id) * 1e6))
        if attribute == "scaling_available_frequencies":
            return " ".join(str(int(f * 1e6)) for f in self._available)
        raise DvfsError(f"unsupported cpufreq attribute {attribute!r}")

    def sysfs_write(self, path: str, value: str) -> None:
        """Write a cpufreq attribute through a sysfs-like path.

        Only ``scaling_setspeed`` is writable; the value is in kHz.
        """
        core_id, attribute = self._parse_sysfs_path(path)
        if attribute != "scaling_setspeed":
            raise DvfsError(f"attribute {attribute!r} is not writable")
        try:
            khz = int(value.strip())
        except ValueError as exc:
            raise DvfsError(f"invalid frequency value {value!r}") from exc
        self.set_frequency(core_id, khz / 1e6)

    # -- internals ---------------------------------------------------------------

    def _validate(self, frequency_ghz: float) -> None:
        if not any(abs(frequency_ghz - f) < 1e-9 for f in self._available):
            raise DvfsError(
                f"frequency {frequency_ghz} GHz is not one of the supported points "
                f"{self._available}"
            )

    def _validate_core(self, core_id: int) -> None:
        if core_id not in self._frequencies:
            raise DvfsError(
                f"core {core_id} does not exist "
                f"(valid: 0..{self.topology.physical_cores - 1})"
            )

    @staticmethod
    def _parse_sysfs_path(path: str) -> tuple[int, str]:
        parts = [p for p in path.split("/") if p]
        # Expected: sys devices system cpu cpu<N> cpufreq <attribute>
        if (
            len(parts) != 7
            or parts[:4] != ["sys", "devices", "system", "cpu"]
            or not parts[4].startswith("cpu")
            or parts[5] != "cpufreq"
        ):
            raise DvfsError(f"unrecognised cpufreq path {path!r}")
        try:
            core_id = int(parts[4][len("cpu"):])
        except ValueError as exc:
            raise DvfsError(f"unrecognised cpufreq path {path!r}") from exc
        return core_id, parts[6]
