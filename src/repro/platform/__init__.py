"""Platform substrate: multicore server, per-core DVFS, and power modelling.

The paper's platform is a 16-core (32-thread) dual-socket Intel Xeon
E5-2667 v4 server with per-core DVFS (1.2-3.2 GHz) and power measured at the
package level.  This package models that platform:

* :mod:`repro.platform.topology` — sockets, cores, SMT threads;
* :mod:`repro.platform.dvfs` — a sysfs-like per-core frequency driver;
* :mod:`repro.platform.power` — voltage/frequency table and power model;
* :mod:`repro.platform.meter` — an energy/average-power meter (RAPL-like);
* :mod:`repro.platform.server` — thread allocation, contention, and the
  per-step power computation used by the multi-user orchestrator.
"""

from repro.platform.topology import CpuTopology
from repro.platform.dvfs import DvfsDriver, DvfsPolicy
from repro.platform.power import PowerModel, PowerModelParameters, VoltageTable
from repro.platform.meter import PowerMeter
from repro.platform.thermal import ThermalModel, ThermalModelParameters, temperature_trace
from repro.platform.server import (
    MulticoreServer,
    ServerAllocation,
    SessionAllocation,
    SessionDemand,
)

__all__ = [
    "CpuTopology",
    "DvfsDriver",
    "DvfsPolicy",
    "PowerModel",
    "PowerModelParameters",
    "VoltageTable",
    "PowerMeter",
    "ThermalModel",
    "ThermalModelParameters",
    "temperature_trace",
    "MulticoreServer",
    "ServerAllocation",
    "SessionAllocation",
    "SessionDemand",
]
