"""Package thermal model (lumped RC).

The MAMUT paper manages power; its companion work [8] additionally manages
temperature.  This module provides the thermal substrate needed to extend the
controller in that direction: a first-order lumped RC model of the package::

    C_th · dT/dt = P − (T − T_ambient) / R_th

integrated with an exponential step, so arbitrary (power, duration) samples —
e.g. the orchestrator's per-step power trace — can be converted into a
temperature trace, and a thermal-headroom metric can be reported.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, Sequence

from repro.errors import PlatformError
from repro.metrics.records import PowerSample

__all__ = ["ThermalModelParameters", "ThermalModel", "temperature_trace"]


@dataclasses.dataclass(frozen=True)
class ThermalModelParameters:
    """Constants of the lumped package thermal model.

    Attributes
    ----------
    ambient_c:
        Ambient (inlet) temperature in °C.
    thermal_resistance_c_per_w:
        Junction-to-ambient thermal resistance; steady-state temperature is
        ``ambient + R_th · P``.
    time_constant_s:
        RC time constant of the package + heatsink.
    critical_temperature_c:
        Temperature at which the platform would throttle.
    """

    ambient_c: float = 40.0
    thermal_resistance_c_per_w: float = 0.28
    time_constant_s: float = 12.0
    critical_temperature_c: float = 95.0

    def __post_init__(self) -> None:
        if self.thermal_resistance_c_per_w <= 0:
            raise PlatformError("thermal_resistance_c_per_w must be positive")
        if self.time_constant_s <= 0:
            raise PlatformError("time_constant_s must be positive")
        if self.critical_temperature_c <= self.ambient_c:
            raise PlatformError("critical temperature must exceed ambient")


class ThermalModel:
    """Integrates package power into package temperature."""

    def __init__(self, params: ThermalModelParameters | None = None) -> None:
        self.params = params if params is not None else ThermalModelParameters()
        self._temperature_c = self.params.ambient_c

    @property
    def temperature_c(self) -> float:
        """Current package temperature."""
        return self._temperature_c

    def reset(self) -> None:
        """Return the package to ambient temperature."""
        self._temperature_c = self.params.ambient_c

    def steady_state_c(self, power_w: float) -> float:
        """Temperature the package would settle at under constant ``power_w``."""
        if power_w < 0:
            raise PlatformError(f"power must be >= 0, got {power_w}")
        return self.params.ambient_c + self.params.thermal_resistance_c_per_w * power_w

    def step(self, power_w: float, duration_s: float) -> float:
        """Advance the model by ``duration_s`` seconds at ``power_w`` watts.

        Returns the temperature at the end of the step.  The exact solution
        of the first-order model is used, so arbitrarily long steps are safe.
        """
        if duration_s < 0:
            raise PlatformError(f"duration must be >= 0, got {duration_s}")
        target = self.steady_state_c(power_w)
        decay = math.exp(-duration_s / self.params.time_constant_s)
        self._temperature_c = target + (self._temperature_c - target) * decay
        return self._temperature_c

    def headroom_c(self) -> float:
        """Degrees left before the critical (throttling) temperature."""
        return self.params.critical_temperature_c - self._temperature_c

    def is_throttling(self) -> bool:
        """Whether the package has reached the critical temperature."""
        return self._temperature_c >= self.params.critical_temperature_c


def temperature_trace(
    power_samples: Sequence[PowerSample] | Iterable[PowerSample],
    params: ThermalModelParameters | None = None,
) -> list[float]:
    """Temperature after each power sample of an orchestrator run."""
    model = ThermalModel(params)
    return [model.step(sample.power_w, sample.duration_s) for sample in power_samples]
