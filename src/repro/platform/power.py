"""Voltage/frequency table and package power model.

Package power is modelled as::

    P = P_base
        + Σ_busy-cores  [ leak·V_rel + dyn·smt_factor·V_rel²·f_rel·activity ]
        + Σ_idle-cores  [ leak·V_rel + idle_fraction·dyn·V_rel²·f_rel ]

where ``V_rel`` and ``f_rel`` are voltage and frequency relative to the
maximum operating point.  Leakage scales with voltage, dynamic power with
``V²·f`` and the busy fraction of the core, and a core running two SMT
siblings draws ``smt_activity_bonus`` extra dynamic power.  Idle cores burn
power at whatever voltage the DVFS policy leaves them at — this is what makes
a chip-wide maximum-frequency policy (the heuristic baseline) more expensive
than per-core DVFS with parked idle cores (MAMUT), as observed in the paper's
Table II.

Default constants are calibrated so that one 1080p ultrafast encode at
3.2 GHz spans roughly 50-85 W across 1-10 threads (Fig. 2) and the Scenario II
mixes land in the 85-135 W range (Table II).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import PlatformError

__all__ = ["VoltageTable", "PowerModelParameters", "PowerModel"]


class VoltageTable:
    """Piecewise-linear voltage/frequency operating points.

    Parameters
    ----------
    points:
        Mapping of frequency (GHz) to supply voltage (V).  Queries between
        points are linearly interpolated; queries outside the covered range
        are clamped to the nearest endpoint.
    """

    _DEFAULT_POINTS: tuple[tuple[float, float], ...] = (
        (1.2, 0.80),
        (1.4, 0.83),
        (1.6, 0.85),
        (1.9, 0.90),
        (2.3, 0.97),
        (2.6, 1.04),
        (2.9, 1.13),
        (3.2, 1.22),
    )

    def __init__(self, points: dict[float, float] | None = None) -> None:
        raw = (
            sorted(points.items())
            if points is not None
            else list(self._DEFAULT_POINTS)
        )
        if len(raw) < 2:
            raise PlatformError("a voltage table needs at least two points")
        freqs = [f for f, _ in raw]
        volts = [v for _, v in raw]
        if any(f <= 0 for f in freqs) or any(v <= 0 for v in volts):
            raise PlatformError("frequencies and voltages must be positive")
        if any(b <= a for a, b in zip(volts, volts[1:])):
            raise PlatformError("voltage must be strictly increasing with frequency")
        self._freqs = freqs
        self._volts = volts
        self._freq_array = np.array(freqs)
        self._volt_array = np.array(volts)

    @property
    def max_frequency_ghz(self) -> float:
        """Highest frequency covered by the table."""
        return self._freqs[-1]

    @property
    def max_voltage(self) -> float:
        """Voltage at the highest operating point."""
        return self._volts[-1]

    def voltage(self, frequency_ghz: float) -> float:
        """Supply voltage (V) required for ``frequency_ghz``."""
        if frequency_ghz <= 0:
            raise PlatformError(f"frequency must be positive, got {frequency_ghz}")
        freqs, volts = self._freqs, self._volts
        if frequency_ghz <= freqs[0]:
            return volts[0]
        if frequency_ghz >= freqs[-1]:
            return volts[-1]
        for (f0, v0), (f1, v1) in zip(zip(freqs, volts), zip(freqs[1:], volts[1:])):
            if f0 <= frequency_ghz <= f1:
                t = (frequency_ghz - f0) / (f1 - f0)
                return v0 + t * (v1 - v0)
        raise PlatformError("unreachable")  # pragma: no cover

    def relative_voltage(self, frequency_ghz: float) -> float:
        """Voltage relative to the maximum operating point (≤ 1)."""
        return self.voltage(frequency_ghz) / self.max_voltage

    def relative_dynamic(self, frequency_ghz: float) -> float:
        """Dynamic-power scale ``(V/Vmax)² · (f/fmax)`` for a frequency."""
        # The square is an explicit multiply (not ``** 2``) so the scalar and
        # vectorized paths round identically on every platform.
        v_rel = self.relative_voltage(frequency_ghz)
        return v_rel * v_rel * frequency_ghz / self.max_frequency_ghz

    # -- batch entry points -----------------------------------------------------

    def voltage_batch(self, frequency_ghz: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`voltage` over an array of frequencies.

        Elementwise bitwise-identical to the scalar method: the same pair of
        operating points is selected and the same interpolation expression is
        applied in the same order.
        """
        f = np.asarray(frequency_ghz, dtype=float)
        if np.any(f <= 0):
            raise PlatformError("frequencies must be positive")
        freqs, volts = self._freq_array, self._volt_array
        idx = np.clip(np.searchsorted(freqs, f, side="left"), 1, len(freqs) - 1)
        f0, f1 = freqs[idx - 1], freqs[idx]
        v0, v1 = volts[idx - 1], volts[idx]
        t = (f - f0) / (f1 - f0)
        v = v0 + t * (v1 - v0)
        v = np.where(f <= freqs[0], volts[0], v)
        return np.where(f >= freqs[-1], volts[-1], v)

    def relative_voltage_batch(self, frequency_ghz: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`relative_voltage`."""
        return self.voltage_batch(frequency_ghz) / self.max_voltage

    def relative_dynamic_batch(self, frequency_ghz: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`relative_dynamic`."""
        v_rel = self.relative_voltage_batch(frequency_ghz)
        return v_rel * v_rel * np.asarray(frequency_ghz) / self.max_frequency_ghz


@dataclasses.dataclass(frozen=True)
class PowerModelParameters:
    """Calibration constants of the package power model.

    Attributes
    ----------
    base_power_w:
        Package power with all cores idle at minimum voltage (uncore, DRAM
        interface, fans' share measured at the node).
    core_dynamic_w:
        Dynamic power of one fully busy core at maximum frequency/voltage.
    core_leakage_w:
        Leakage power of one powered core at maximum voltage.
    smt_activity_bonus:
        Extra relative dynamic power when a core runs two busy SMT siblings.
    idle_activity_fraction:
        Fraction of ``core_dynamic_w`` an idle (but not power-gated) core
        still burns at its current operating point.
    """

    base_power_w: float = 33.0
    core_dynamic_w: float = 4.0
    core_leakage_w: float = 1.5
    smt_activity_bonus: float = 0.25
    idle_activity_fraction: float = 0.35

    def __post_init__(self) -> None:
        if self.base_power_w < 0 or self.core_dynamic_w <= 0 or self.core_leakage_w < 0:
            raise PlatformError("power parameters must be non-negative (dynamic > 0)")
        if not 0 <= self.smt_activity_bonus <= 1:
            raise PlatformError("smt_activity_bonus must be in [0, 1]")
        if not 0 <= self.idle_activity_fraction <= 1:
            raise PlatformError("idle_activity_fraction must be in [0, 1]")


class PowerModel:
    """Computes package power from per-core operating points and activity."""

    def __init__(
        self,
        params: PowerModelParameters | None = None,
        voltage_table: VoltageTable | None = None,
    ) -> None:
        self.params = params if params is not None else PowerModelParameters()
        self.voltage_table = voltage_table if voltage_table is not None else VoltageTable()

    def busy_core_power(
        self,
        frequency_ghz: float,
        activity: float,
        smt_threads: int = 1,
    ) -> float:
        """Power of one core actively encoding.

        Parameters
        ----------
        frequency_ghz:
            The core's operating frequency.
        activity:
            Busy fraction of the core in ``[0, 1]`` (WPP threads idle on the
            wavefront ramp reduce this).
        smt_threads:
            Number of busy SMT siblings on the core (1 or 2).
        """
        if not 0.0 <= activity <= 1.0:
            raise PlatformError(f"activity must be in [0, 1], got {activity}")
        if smt_threads < 1:
            raise PlatformError(f"smt_threads must be >= 1, got {smt_threads}")
        p = self.params
        v_rel = self.voltage_table.relative_voltage(frequency_ghz)
        dyn_rel = self.voltage_table.relative_dynamic(frequency_ghz)
        smt_factor = 1.0 + p.smt_activity_bonus * (min(smt_threads, 2) - 1)
        leakage = p.core_leakage_w * v_rel
        dynamic = p.core_dynamic_w * smt_factor * dyn_rel * activity
        return leakage + dynamic

    def idle_core_power(self, frequency_ghz: float) -> float:
        """Power of a core that is powered but has no work assigned."""
        p = self.params
        v_rel = self.voltage_table.relative_voltage(frequency_ghz)
        dyn_rel = self.voltage_table.relative_dynamic(frequency_ghz)
        return p.core_leakage_w * v_rel + p.idle_activity_fraction * p.core_dynamic_w * dyn_rel

    # -- batch entry points -----------------------------------------------------

    def busy_core_power_batch(
        self,
        frequency_ghz: np.ndarray,
        activity: np.ndarray,
        smt_threads: np.ndarray | int = 1,
    ) -> np.ndarray:
        """Vectorized :meth:`busy_core_power` over parallel arrays.

        Elementwise bitwise-identical to the scalar method.
        """
        activity = np.asarray(activity)
        smt_threads = np.asarray(smt_threads, dtype=np.int64)
        if activity.size and (activity.min() < 0.0 or activity.max() > 1.0):
            raise PlatformError("activity values must be in [0, 1]")
        if smt_threads.size and smt_threads.min() < 1:
            raise PlatformError("smt_threads values must be >= 1")
        p = self.params
        v_rel = self.voltage_table.relative_voltage_batch(frequency_ghz)
        dyn_rel = self.voltage_table.relative_dynamic_batch(frequency_ghz)
        smt_factor = 1.0 + p.smt_activity_bonus * (np.minimum(smt_threads, 2) - 1)
        leakage = p.core_leakage_w * v_rel
        dynamic = p.core_dynamic_w * smt_factor * dyn_rel * activity
        return leakage + dynamic

    def idle_core_power_batch(self, frequency_ghz: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`idle_core_power` over an array of frequencies."""
        p = self.params
        v_rel = self.voltage_table.relative_voltage_batch(frequency_ghz)
        dyn_rel = self.voltage_table.relative_dynamic_batch(frequency_ghz)
        return (
            p.core_leakage_w * v_rel
            + p.idle_activity_fraction * p.core_dynamic_w * dyn_rel
        )

    def package_power(
        self,
        busy_cores: list[tuple[float, float, int]],
        idle_cores: list[float],
    ) -> float:
        """Total package power.

        Parameters
        ----------
        busy_cores:
            One ``(frequency_ghz, activity, smt_threads)`` tuple per busy
            core (fractional cores are supported by passing an entry whose
            activity is already scaled).
        idle_cores:
            One frequency entry per idle core.
        """
        total = self.params.base_power_w
        for frequency_ghz, activity, smt_threads in busy_cores:
            total += self.busy_core_power(frequency_ghz, activity, smt_threads)
        for frequency_ghz in idle_cores:
            total += self.idle_core_power(frequency_ghz)
        return total
