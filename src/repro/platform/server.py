"""Multicore transcoding server: thread allocation, contention, power.

Each simulation step, every active transcoding session demands a number of
WPP threads at a chosen per-core frequency.  The server grants each thread a
fair share of the machine's effective capacity (dedicated cores first, then
SMT sharing, then time-slicing), reports the resulting per-session
*contention scale* that the encoder simulator applies to its WPP speedup, and
computes the package power for the step.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Mapping

from repro.errors import AllocationError
from repro.platform.dvfs import DvfsDriver, DvfsPolicy
from repro.platform.power import PowerModel
from repro.platform.topology import CpuTopology

__all__ = [
    "SessionDemand",
    "SessionAllocation",
    "ServerAllocation",
    "MulticoreServer",
]


@dataclasses.dataclass(frozen=True)
class SessionDemand:
    """Per-step resource demand of one transcoding session.

    Attributes
    ----------
    session_id:
        Identifier of the session (unique within the orchestrator).
    threads:
        Number of WPP threads the session wants for the next frame.
    frequency_ghz:
        Frequency the session's controller selected for its cores.
    activity:
        Expected busy fraction of each of the session's threads (the WPP
        efficiency reported by the encoder model).
    """

    session_id: str
    threads: int
    frequency_ghz: float
    activity: float = 1.0

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise AllocationError(f"threads must be >= 1, got {self.threads}")
        if self.frequency_ghz <= 0:
            raise AllocationError(
                f"frequency_ghz must be positive, got {self.frequency_ghz}"
            )
        if not 0.0 <= self.activity <= 1.0:
            raise AllocationError(f"activity must be in [0, 1], got {self.activity}")


@dataclasses.dataclass(frozen=True)
class SessionAllocation:
    """What the server granted to one session for the current step.

    Attributes
    ----------
    session_id:
        The session this allocation belongs to.
    threads_granted:
        Software threads the session may run (always its full demand; the
        machine is shared in time rather than by refusing threads).
    contention_scale:
        Multiplier in ``(0, 1]`` on the session's parallel speedup caused by
        SMT sharing and oversubscription.
    frequency_ghz:
        Frequency applied to the session's cores.
    busy_cores:
        Physical-core equivalents attributed to the session (fractional).
    power_w:
        Package power attributed to the session, including a proportional
        share of base and idle power.
    """

    session_id: str
    threads_granted: int
    contention_scale: float
    frequency_ghz: float
    busy_cores: float
    power_w: float


@dataclasses.dataclass(frozen=True)
class ServerAllocation:
    """Result of allocating one simulation step across all sessions.

    Attributes
    ----------
    sessions:
        Mapping from session id to its :class:`SessionAllocation`.
    total_power_w:
        Package power for this step.
    total_threads:
        Sum of threads demanded by all sessions.
    busy_cores:
        Physical cores with at least one busy thread.
    idle_cores:
        Physical cores with no work this step.
    oversubscribed:
        True when more software threads than hardware threads were demanded.
    """

    sessions: Mapping[str, SessionAllocation]
    total_power_w: float
    total_threads: int
    busy_cores: float
    idle_cores: float
    oversubscribed: bool

    def contention_scale(self, session_id: str) -> float:
        """Convenience accessor for one session's contention scale."""
        return self.sessions[session_id].contention_scale


class MulticoreServer:
    """The shared platform on which all transcoding sessions run.

    Parameters
    ----------
    topology:
        CPU resources of the server.
    power_model:
        Package power model.
    dvfs_driver:
        Per-core frequency driver (kept in sync with each allocation so its
        state reflects the last step).
    dvfs_policy:
        ``PER_CORE`` parks idle cores at the minimum frequency; ``CHIP_WIDE``
        leaves idle cores at the highest frequency any session requested.
    """

    def __init__(
        self,
        topology: CpuTopology | None = None,
        power_model: PowerModel | None = None,
        dvfs_driver: DvfsDriver | None = None,
        dvfs_policy: DvfsPolicy = DvfsPolicy.PER_CORE,
    ) -> None:
        self.topology = topology if topology is not None else CpuTopology()
        self.power_model = power_model if power_model is not None else PowerModel()
        self.dvfs = (
            dvfs_driver if dvfs_driver is not None else DvfsDriver(topology=self.topology)
        )
        self.dvfs_policy = dvfs_policy

    # -- allocation -------------------------------------------------------------

    def allocate(self, demands: Iterable[SessionDemand]) -> ServerAllocation:
        """Allocate one simulation step across the given session demands."""
        demands = list(demands)
        if not demands:
            idle_freq = self.dvfs.min_frequency_ghz
            power = self.power_model.package_power(
                busy_cores=[], idle_cores=[idle_freq] * self.topology.physical_cores
            )
            return ServerAllocation(
                sessions={},
                total_power_w=power,
                total_threads=0,
                busy_cores=0.0,
                idle_cores=float(self.topology.physical_cores),
                oversubscribed=False,
            )

        seen: set[str] = set()
        for demand in demands:
            if demand.session_id in seen:
                raise AllocationError(f"duplicate session id {demand.session_id!r}")
            seen.add(demand.session_id)

        cores = self.topology.physical_cores
        hw_threads = self.topology.hardware_threads
        total_threads = sum(d.threads for d in demands)
        scale = self.topology.contention_scale(total_threads)

        busy_physical = float(min(total_threads, cores))
        smt_cores = float(max(0, min(total_threads, hw_threads) - cores))
        single_cores = busy_physical - smt_cores
        idle_cores = float(cores) - busy_physical

        idle_freq = self._idle_frequency(demands)
        idle_power = idle_cores * self.power_model.idle_core_power(idle_freq)
        base_power = self.power_model.params.base_power_w
        shared_power = base_power + idle_power

        allocations: dict[str, SessionAllocation] = {}
        busy_power_total = 0.0
        session_busy_power: dict[str, float] = {}
        session_busy_cores: dict[str, float] = {}
        for demand in demands:
            share = demand.threads / total_threads
            own_single = share * single_cores
            own_smt = share * smt_cores
            # Threads that are time-sliced or SMT-shared end up fully busy.
            effective_activity = min(1.0, demand.activity / scale) if scale > 0 else 1.0
            per_single = self.power_model.busy_core_power(
                demand.frequency_ghz, effective_activity, smt_threads=1
            )
            per_smt = self.power_model.busy_core_power(
                demand.frequency_ghz, effective_activity, smt_threads=2
            )
            power = own_single * per_single + own_smt * per_smt
            session_busy_power[demand.session_id] = power
            session_busy_cores[demand.session_id] = own_single + own_smt
            busy_power_total += power

        total_power = shared_power + busy_power_total

        for demand in demands:
            share = demand.threads / total_threads
            allocations[demand.session_id] = SessionAllocation(
                session_id=demand.session_id,
                threads_granted=demand.threads,
                contention_scale=scale,
                frequency_ghz=demand.frequency_ghz,
                busy_cores=session_busy_cores[demand.session_id],
                power_w=session_busy_power[demand.session_id] + share * shared_power,
            )

        self._apply_to_driver(demands, idle_freq)

        return ServerAllocation(
            sessions=allocations,
            total_power_w=total_power,
            total_threads=total_threads,
            busy_cores=busy_physical,
            idle_cores=idle_cores,
            oversubscribed=total_threads > hw_threads,
        )

    # -- helpers ---------------------------------------------------------------

    def _idle_frequency(self, demands: list[SessionDemand]) -> float:
        """Frequency at which idle cores sit under the current DVFS policy."""
        if self.dvfs_policy is DvfsPolicy.CHIP_WIDE and demands:
            return max(d.frequency_ghz for d in demands)
        return self.dvfs.min_frequency_ghz

    def _apply_to_driver(self, demands: list[SessionDemand], idle_freq: float) -> None:
        """Mirror the allocation into the DVFS driver state (best effort).

        Sessions get contiguous physical cores in demand order, one core per
        thread until the machine runs out; remaining cores get the idle
        frequency.  Frequencies are snapped to the nearest supported point.
        """
        next_core = 0
        cores = self.topology.physical_cores
        for demand in demands:
            wanted = min(demand.threads, cores - next_core)
            freq = self.dvfs.closest_available(demand.frequency_ghz)
            for core in range(next_core, next_core + wanted):
                self.dvfs.set_frequency(core, freq)
            next_core += wanted
            if next_core >= cores:
                break
        idle = self.dvfs.closest_available(idle_freq)
        for core in range(next_core, cores):
            self.dvfs.set_frequency(core, idle)
