"""QoS accounting: frames processed below the real-time target."""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.metrics.records import FrameRecord

__all__ = ["violations", "qos_violation_pct", "qos_violation_pct_fps"]


def violations(records: Iterable[FrameRecord]) -> int:
    """Number of frames processed below their session's FPS target."""
    return sum(1 for record in records if record.is_violation)


def qos_violation_pct(records: Sequence[FrameRecord]) -> float:
    """Δ: percentage of frames under the QoS threshold (paper Fig. 4 / Table II)."""
    if not records:
        return 0.0
    return 100.0 * violations(records) / len(records)


def qos_violation_pct_fps(fps_values: Sequence[float], target_fps: float) -> float:
    """Δ computed directly from a series of per-frame FPS values."""
    if not fps_values:
        return 0.0
    below = sum(1 for fps in fps_values if fps < target_fps)
    return 100.0 * below / len(fps_values)
