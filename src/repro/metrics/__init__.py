"""Metrics: per-frame records, QoS accounting, and aggregation.

The paper evaluates controllers on QoS violations (percentage of frames
processed below the 24-FPS target, called Δ), average package power, average
threads and frequency, PSNR and bitrate.  This package defines the per-frame
record produced by the orchestrator and the aggregation helpers that turn a
run into those summary numbers.
"""

from repro.metrics.records import FrameRecord, PowerSample
from repro.metrics.qos import qos_violation_pct, violations
from repro.metrics.aggregate import ExperimentSummary, SessionSummary, summarize_session
from repro.metrics.cluster import ClusterSummary, ServerSummary, summarize_cluster
from repro.metrics.report import format_table

__all__ = [
    "FrameRecord",
    "PowerSample",
    "qos_violation_pct",
    "violations",
    "SessionSummary",
    "ExperimentSummary",
    "summarize_session",
    "ClusterSummary",
    "ServerSummary",
    "summarize_cluster",
    "format_table",
]
