"""Plain-text table formatting for examples, benchmarks and reports."""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.1f}",
) -> str:
    """Render a list of rows as an aligned plain-text table.

    Floats are formatted with ``float_format``; every other value goes
    through ``str``.  Columns are right-aligned except the first, which is
    left-aligned (it usually holds row labels).
    """
    def render(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    rendered_rows = [[render(value) for value in row] for row in rows]
    all_rows = [list(headers)] + rendered_rows
    widths = [
        max(len(row[column]) for row in all_rows)
        for column in range(len(headers))
    ]

    def format_row(row: Sequence[str]) -> str:
        cells = []
        for column, value in enumerate(row):
            if column == 0:
                cells.append(value.ljust(widths[column]))
            else:
                cells.append(value.rjust(widths[column]))
        return "  ".join(cells)

    separator = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [format_row(list(headers)), separator]
    lines.extend(format_row(row) for row in rendered_rows)
    return "\n".join(lines)
