"""Per-frame and per-step measurement records."""

from __future__ import annotations

import dataclasses

from repro.video.sequence import ResolutionClass

__all__ = ["FrameRecord", "PowerSample", "ScalingEvent", "FaultEvent", "FleetSample"]


@dataclasses.dataclass(frozen=True)
class FrameRecord:
    """Everything measured while transcoding one frame of one session.

    Attributes
    ----------
    session_id:
        Session the frame belongs to.
    step:
        Global step index of the session (monotonic across the videos of a
        playlist).
    video_name:
        Name of the video the frame belongs to.
    frame_index:
        Frame index within its video.
    resolution_class:
        HR or LR.
    qp, threads, frequency_ghz:
        Configuration applied to the frame.
    fps:
        Instantaneous throughput achieved for the frame.
    psnr_db:
        Quality of the re-encoded frame.
    bitrate_mbps:
        Output bitrate at the delivery frame rate.
    encode_time_s:
        Wall-clock processing time of the frame (decode + encode).
    power_w:
        Package power of the server while the frame was processed.
    target_fps:
        The session's real-time target, for violation accounting.
    """

    session_id: str
    step: int
    video_name: str
    frame_index: int
    resolution_class: ResolutionClass
    qp: int
    threads: int
    frequency_ghz: float
    fps: float
    psnr_db: float
    bitrate_mbps: float
    encode_time_s: float
    power_w: float
    target_fps: float

    @property
    def is_violation(self) -> bool:
        """True when the frame was processed below the real-time target."""
        return self.fps < self.target_fps


@dataclasses.dataclass(frozen=True)
class PowerSample:
    """Package power over one orchestrator step.

    Attributes
    ----------
    step:
        Orchestrator step index.
    power_w:
        Package power during the step.
    duration_s:
        Wall-clock duration attributed to the step (mean frame time of the
        active sessions).
    active_sessions:
        Number of sessions that processed a frame in this step.
    """

    step: int
    power_w: float
    duration_s: float
    active_sessions: int


@dataclasses.dataclass(frozen=True)
class ScalingEvent:
    """One fleet resize executed by an autoscaling policy.

    Attributes
    ----------
    step:
        Cluster step at which the resize was decided.
    direction:
        ``"up"`` (servers commissioned) or ``"down"`` (servers drained or a
        pending provision cancelled).
    servers:
        Servers added or removed by this event.
    fleet_before, fleet_after:
        Provisioned fleet size (dispatchable plus warming servers) on either
        side of the event.
    policy:
        Name of the autoscaling policy that requested the resize.
    reason:
        The policy's explanation of the signal that triggered it.
    """

    step: int
    direction: str
    servers: int
    fleet_before: int
    fleet_after: int
    policy: str
    reason: str


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One injected fault (or the recovery closing it) on one server.

    Attributes
    ----------
    step:
        Cluster step at which the event fired.
    kind:
        ``"crash"`` (abrupt server failure), ``"straggler"`` (transient
        throttle: the server keeps its sessions but takes no new ones),
        ``"warmup_failure"`` (a provision that never came ready and was
        retired), ``"zone_outage"`` (a correlated domain failure taking
        down every powered-on server of one zone; the per-server crashes it
        causes follow as their own events), or ``"recovered"`` (a crashed
        server back in service or a throttle expiring).
    server:
        Global slot index of the affected server (-1 for domain-level
        events such as ``"zone_outage"``, which name a zone, not a server).
    sessions_lost:
        Sessions in flight on the server when a crash killed it (0 for the
        other kinds — stragglers keep their sessions).
    detail:
        Human-readable specifics (planned downtime, throttle length, what
        the recovery closed).
    zone / rack:
        Failure domain of the affected server (``None`` in events recorded
        before failure domains existed, and ``rack`` is ``None`` on
        zone-level events).
    """

    step: int
    kind: str
    server: int
    sessions_lost: int = 0
    detail: str = ""
    zone: int | None = None
    rack: int | None = None


@dataclasses.dataclass(frozen=True)
class FleetSample:
    """Observable fleet state at the end of one cluster step.

    One sample per cluster step (drain steps included) — the elasticity
    trace from which time-weighted fleet size and scaling-transient metrics
    are computed.

    Attributes
    ----------
    step:
        Cluster step the sample closes.
    live_servers:
        Servers drawing power: warming + dispatchable + draining.
    dispatchable_servers:
        Servers accepting new sessions.
    warming_servers:
        Commissioned servers still provisioning (idling, not dispatchable).
    draining_servers:
        Servers finishing their sessions before decommission.
    queue_length:
        Admission queue length at the end of the step.
    arrivals:
        Requests that arrived during the step.
    active_sessions:
        Sessions still running fleet-wide after the step.
    frames:
        Frames transcoded fleet-wide during the step.
    qos_violations:
        Frames of the step processed below their session's FPS target.
    dropped:
        Queued requests dropped this step after aging past their patience
        deadline.
    brownout_level:
        Fleet-wide quality-degradation level in force during the step
        (0 = normal operation).
    healthy_servers:
        Dispatchable servers in full health — the series exported as
        ``repro_fleet_healthy_servers``.  Equal to
        ``dispatchable_servers`` (degraded/failed/recovering servers are
        excluded from the dispatchable roster); 0 in samples recorded
        before fault tracking existed.
    degraded_servers:
        Powered-on servers inside a straggler throttle (serving their
        in-flight sessions, taking no new ones).
    failed_servers:
        Servers currently down after a crash (powered off, awaiting their
        seeded recovery).
    recovering_servers:
        Crashed servers back on power, rebooting through the provisioning
        warm-up before they serve again.
    available_domains:
        Distinct failure zones with at least one dispatchable server — the
        series exported as ``repro_fleet_available_domains``.  0 in samples
        recorded before domain tracking existed.
    """

    step: int
    live_servers: int
    dispatchable_servers: int
    warming_servers: int
    draining_servers: int
    queue_length: int
    arrivals: int
    active_sessions: int
    frames: int
    qos_violations: int
    dropped: int = 0
    brownout_level: int = 0
    healthy_servers: int = 0
    degraded_servers: int = 0
    failed_servers: int = 0
    recovering_servers: int = 0
    available_domains: int = 0
