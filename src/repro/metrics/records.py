"""Per-frame and per-step measurement records."""

from __future__ import annotations

import dataclasses

from repro.video.sequence import ResolutionClass

__all__ = ["FrameRecord", "PowerSample"]


@dataclasses.dataclass(frozen=True)
class FrameRecord:
    """Everything measured while transcoding one frame of one session.

    Attributes
    ----------
    session_id:
        Session the frame belongs to.
    step:
        Global step index of the session (monotonic across the videos of a
        playlist).
    video_name:
        Name of the video the frame belongs to.
    frame_index:
        Frame index within its video.
    resolution_class:
        HR or LR.
    qp, threads, frequency_ghz:
        Configuration applied to the frame.
    fps:
        Instantaneous throughput achieved for the frame.
    psnr_db:
        Quality of the re-encoded frame.
    bitrate_mbps:
        Output bitrate at the delivery frame rate.
    encode_time_s:
        Wall-clock processing time of the frame (decode + encode).
    power_w:
        Package power of the server while the frame was processed.
    target_fps:
        The session's real-time target, for violation accounting.
    """

    session_id: str
    step: int
    video_name: str
    frame_index: int
    resolution_class: ResolutionClass
    qp: int
    threads: int
    frequency_ghz: float
    fps: float
    psnr_db: float
    bitrate_mbps: float
    encode_time_s: float
    power_w: float
    target_fps: float

    @property
    def is_violation(self) -> bool:
        """True when the frame was processed below the real-time target."""
        return self.fps < self.target_fps


@dataclasses.dataclass(frozen=True)
class PowerSample:
    """Package power over one orchestrator step.

    Attributes
    ----------
    step:
        Orchestrator step index.
    power_w:
        Package power during the step.
    duration_s:
        Wall-clock duration attributed to the step (mean frame time of the
        active sessions).
    active_sessions:
        Number of sessions that processed a frame in this step.
    """

    step: int
    power_w: float
    duration_s: float
    active_sessions: int
