"""Aggregation of per-frame records into the paper's summary metrics."""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.metrics.qos import qos_violation_pct
from repro.metrics.records import FrameRecord, PowerSample
from repro.video.sequence import ResolutionClass

__all__ = [
    "SessionSummary",
    "ExperimentSummary",
    "power_trace_stats",
    "linear_percentile",
    "summarize_session",
    "summarize_experiment",
    "empty_experiment_summary",
]


def linear_percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation.

    The single percentile definition shared by the cluster summary, the
    trace-analysis layer and the SLO engine: sorting plus the same
    interpolation arithmetic everywhere means a percentile derived from a
    span stream reconciles *exactly* (same floats) with one derived from
    the ledger.  Matches ``numpy.percentile(..., method="linear")``.
    Returns 0.0 for an empty sequence.
    """
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    lower = int(rank)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = rank - lower
    if fraction == 0.0:
        return ordered[lower]
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def power_trace_stats(
    power_samples: Sequence[PowerSample],
) -> tuple[float, float, float]:
    """``(energy_j, duration_s, mean_power_w)`` of a power trace.

    The single place the idle-run power math lives: energy is the
    duration-weighted sum of the samples, the mean power is energy over
    total duration (0 for an empty trace).
    """
    total_time = sum(sample.duration_s for sample in power_samples)
    energy = sum(sample.power_w * sample.duration_s for sample in power_samples)
    mean_power = energy / total_time if total_time > 0 else 0.0
    return energy, total_time, mean_power


@dataclasses.dataclass(frozen=True)
class SessionSummary:
    """Averages over one session's frames.

    Attributes
    ----------
    session_id:
        The summarised session.
    resolution_class:
        HR or LR.
    frames:
        Number of frames transcoded.
    mean_fps, mean_psnr_db, mean_bitrate_mbps:
        Averages of the per-frame observables.
    mean_threads, mean_frequency_ghz, mean_qp:
        Averages of the applied configuration (Table I reports the first two).
    qos_violation_pct:
        Δ — percentage of frames below the FPS target.
    """

    session_id: str
    resolution_class: ResolutionClass
    frames: int
    mean_fps: float
    mean_psnr_db: float
    mean_bitrate_mbps: float
    mean_threads: float
    mean_frequency_ghz: float
    mean_qp: float
    qos_violation_pct: float


@dataclasses.dataclass(frozen=True)
class ExperimentSummary:
    """Aggregated results of one multi-user run.

    Attributes
    ----------
    sessions:
        Per-session summaries keyed by session id.
    mean_power_w:
        Time-weighted average package power over the run.
    energy_j:
        Total package energy over the run.
    duration_s:
        Simulated wall-clock duration of the run.
    mean_fps:
        Average per-frame FPS over all sessions (Table II's "FPS" column).
    mean_threads:
        Average thread count over all frames (Table II's "Nth" column).
    mean_frequency_ghz:
        Average frequency over all frames.
    mean_psnr_db:
        Average PSNR over all frames.
    qos_violation_pct:
        Δ over all frames of all sessions.
    """

    sessions: Mapping[str, SessionSummary]
    mean_power_w: float
    energy_j: float
    duration_s: float
    mean_fps: float
    mean_threads: float
    mean_frequency_ghz: float
    mean_psnr_db: float
    qos_violation_pct: float

    def sessions_by_class(self, resolution_class: ResolutionClass) -> list[SessionSummary]:
        """Session summaries restricted to one resolution class."""
        return [
            s for s in self.sessions.values() if s.resolution_class is resolution_class
        ]


def summarize_session(
    session_id: str, records: Sequence[FrameRecord]
) -> SessionSummary:
    """Aggregate the frames of one session."""
    if not records:
        raise ValueError(f"session {session_id!r} has no frame records")
    n = len(records)
    return SessionSummary(
        session_id=session_id,
        resolution_class=records[0].resolution_class,
        frames=n,
        mean_fps=sum(r.fps for r in records) / n,
        mean_psnr_db=sum(r.psnr_db for r in records) / n,
        mean_bitrate_mbps=sum(r.bitrate_mbps for r in records) / n,
        mean_threads=sum(r.threads for r in records) / n,
        mean_frequency_ghz=sum(r.frequency_ghz for r in records) / n,
        mean_qp=sum(r.qp for r in records) / n,
        qos_violation_pct=qos_violation_pct(records),
    )


def empty_experiment_summary(
    power_samples: Sequence[PowerSample] = (),
) -> ExperimentSummary:
    """An all-zero summary for a run that served no sessions.

    ``summarize_experiment`` deliberately rejects empty inputs (a run that
    was supposed to serve sessions but has no records is a bug); callers for
    which emptiness is legitimate — e.g. an idle, session-less orchestrator —
    use this constructor instead.  Power statistics still reflect any idle
    samples recorded.
    """
    energy, total_time, mean_power = power_trace_stats(power_samples)
    return ExperimentSummary(
        sessions={},
        mean_power_w=mean_power,
        energy_j=energy,
        duration_s=total_time,
        mean_fps=0.0,
        mean_threads=0.0,
        mean_frequency_ghz=0.0,
        mean_psnr_db=0.0,
        qos_violation_pct=0.0,
    )


def summarize_experiment(
    records_by_session: Mapping[str, Sequence[FrameRecord]],
    power_samples: Sequence[PowerSample],
) -> ExperimentSummary:
    """Aggregate a whole run (all sessions plus the server power trace)."""
    if not records_by_session:
        raise ValueError("no session records to summarise")
    sessions = {
        session_id: summarize_session(session_id, records)
        for session_id, records in records_by_session.items()
    }
    all_records = [r for records in records_by_session.values() for r in records]
    n = len(all_records)

    energy, total_time, mean_power = power_trace_stats(power_samples)

    return ExperimentSummary(
        sessions=sessions,
        mean_power_w=mean_power,
        energy_j=energy,
        duration_s=total_time,
        mean_fps=sum(r.fps for r in all_records) / n,
        mean_threads=sum(r.threads for r in all_records) / n,
        mean_frequency_ghz=sum(r.frequency_ghz for r in all_records) / n,
        mean_psnr_db=sum(r.psnr_db for r in all_records) / n,
        qos_violation_pct=qos_violation_pct(all_records),
    )
