"""Regeneration of the paper's comparison figures/tables.

* **Fig. 4** — ΔQoS and power for the heuristic, mono-agent and MAMUT
  controllers over the Scenario I workloads (1HR..5HR and 1LR..8LR).
* **Table I** — average threads and frequency per controller for HR and LR
  videos (Scenario I).
* **Table II** — average Watts / threads / FPS / Δ per controller for the
  Scenario II video mixes (1HR1LR .. 3HR3LR).
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Sequence

from repro.constants import DEFAULT_POWER_CAP_W
from repro.manager.factories import (
    ControllerFactory,
    heuristic_factory,
    mamut_factory,
    monoagent_factory,
)
from repro.manager.runner import AveragedResult, ExperimentRunner
from repro.manager.scenario import scenario_one, scenario_two

__all__ = [
    "Fig4Row",
    "Table1Row",
    "Table2Row",
    "default_factories",
    "fig4_scenario_one_sweep",
    "table1_threads_frequency",
    "table2_scenario_two",
]


@dataclasses.dataclass(frozen=True)
class Fig4Row:
    """ΔQoS and power of one controller on one Scenario I workload."""

    workload: str
    controller: str
    qos_violation_pct: float
    power_w: float


@dataclasses.dataclass(frozen=True)
class Table1Row:
    """Average threads and frequency of one controller for one resolution class."""

    controller: str
    resolution_class: str
    mean_threads: float
    mean_frequency_ghz: float


@dataclasses.dataclass(frozen=True)
class Table2Row:
    """One (mix, controller) cell group of the paper's Table II."""

    workload: str
    controller: str
    power_w: float
    mean_threads: float
    mean_fps: float
    qos_violation_pct: float


def default_factories(power_cap_w: float = DEFAULT_POWER_CAP_W) -> dict[str, ControllerFactory]:
    """The paper's three comparison points: heuristic, mono-agent, MAMUT."""
    return {
        "Heuristic": heuristic_factory(power_cap_w),
        "MonoAgent": monoagent_factory(power_cap_w),
        "MAMUT": mamut_factory(power_cap_w),
    }


def fig4_scenario_one_sweep(
    hr_counts: Sequence[int] = (1, 2, 3, 4, 5),
    lr_counts: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    factories: Mapping[str, ControllerFactory] | None = None,
    num_frames: int = 240,
    repetitions: int = 1,
    power_cap_w: float = DEFAULT_POWER_CAP_W,
    seed: int = 0,
    warmup_videos: int = 2,
) -> list[Fig4Row]:
    """ΔQoS and power over the Scenario I workloads (paper Fig. 4).

    ``hr_counts`` produces the xHR workloads (HR videos only) and
    ``lr_counts`` the xLR workloads (LR videos only), as in the figure.
    """
    factories = dict(factories) if factories is not None else default_factories(power_cap_w)
    runner = ExperimentRunner(power_cap_w=power_cap_w, seed=seed)
    rows: list[Fig4Row] = []

    workloads: list[tuple[str, int, int]] = [
        (f"{count}HR", count, 0) for count in hr_counts
    ] + [(f"{count}LR", 0, count) for count in lr_counts]

    for label, num_hr, num_lr in workloads:
        specs = scenario_one(num_hr, num_lr, num_frames=num_frames, seed=seed)
        results = runner.compare(
            factories, specs, repetitions=repetitions, warmup_videos=warmup_videos
        )
        for controller, result in results.items():
            rows.append(
                Fig4Row(
                    workload=label,
                    controller=controller,
                    qos_violation_pct=result.qos_violation_pct,
                    power_w=result.mean_power_w,
                )
            )
    return rows


def table1_threads_frequency(
    factories: Mapping[str, ControllerFactory] | None = None,
    num_hr: int = 2,
    num_lr: int = 2,
    num_frames: int = 240,
    repetitions: int = 1,
    power_cap_w: float = DEFAULT_POWER_CAP_W,
    seed: int = 0,
    warmup_videos: int = 2,
) -> list[Table1Row]:
    """Average threads and frequency per controller and resolution class (Table I)."""
    factories = dict(factories) if factories is not None else default_factories(power_cap_w)
    runner = ExperimentRunner(power_cap_w=power_cap_w, seed=seed)
    specs = scenario_one(num_hr, num_lr, num_frames=num_frames, seed=seed)
    results = runner.compare(
        factories, specs, repetitions=repetitions, warmup_videos=warmup_videos
    )

    rows: list[Table1Row] = []
    for controller, result in results.items():
        for resolution_class in ("HR", "LR"):
            if resolution_class not in result.per_class_threads:
                continue
            rows.append(
                Table1Row(
                    controller=controller,
                    resolution_class=resolution_class,
                    mean_threads=result.per_class_threads[resolution_class],
                    mean_frequency_ghz=result.per_class_frequency_ghz[resolution_class],
                )
            )
    return rows


def table2_scenario_two(
    mixes: Sequence[tuple[int, int]] = (
        (1, 1),
        (1, 2),
        (2, 1),
        (2, 2),
        (2, 3),
        (2, 4),
        (3, 1),
        (3, 2),
        (3, 3),
    ),
    factories: Mapping[str, ControllerFactory] | None = None,
    followers: int = 4,
    frames_per_video: int = 120,
    repetitions: int = 1,
    power_cap_w: float = DEFAULT_POWER_CAP_W,
    seed: int = 0,
    warmup_videos: int = 4,
) -> list[Table2Row]:
    """Scenario II averages per video mix and controller (paper Table II).

    ``mixes`` lists the (num_HR, num_LR) combinations of the table's rows.
    """
    factories = dict(factories) if factories is not None else default_factories(power_cap_w)
    runner = ExperimentRunner(power_cap_w=power_cap_w, seed=seed)
    rows: list[Table2Row] = []

    for num_hr, num_lr in mixes:
        label = f"{num_hr}HR{num_lr}LR"
        specs = scenario_two(
            num_hr,
            num_lr,
            followers=followers,
            frames_per_video=frames_per_video,
            seed=seed,
        )
        results = runner.compare(
            factories, specs, repetitions=repetitions, warmup_videos=warmup_videos
        )
        for controller, result in results.items():
            rows.append(
                Table2Row(
                    workload=label,
                    controller=controller,
                    power_w=result.mean_power_w,
                    mean_threads=result.mean_threads,
                    mean_fps=result.mean_fps,
                    qos_violation_pct=result.qos_violation_pct,
                )
            )
    return rows


def averaged_to_table2_row(workload: str, result: AveragedResult) -> Table2Row:
    """Convert an :class:`AveragedResult` into a Table II row."""
    return Table2Row(
        workload=workload,
        controller=result.label,
        power_w=result.mean_power_w,
        mean_threads=result.mean_threads,
        mean_fps=result.mean_fps,
        qos_violation_pct=result.qos_violation_pct,
    )
