"""Regeneration of the paper's figures (data series, no plotting).

* **Fig. 2** — RD curves (PSNR vs. output bandwidth) plus power vs. FPS for
  a 1080p video encoded with the ultrafast preset at 3.2 GHz, sweeping the
  number of threads and QP.
* **Fig. 5** — detailed execution trace of MAMUT encoding one HR video: FPS,
  PSNR, QP, threads and frequency over the frames of the sequence.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.baselines.static import StaticController
from repro.constants import DEFAULT_POWER_CAP_W
from repro.platform.dvfs import DvfsPolicy
from repro.core.config import MamutConfig
from repro.core.mamut import MamutController
from repro.manager.orchestrator import Orchestrator
from repro.manager.session import TranscodingSession
from repro.platform.server import MulticoreServer
from repro.video.catalog import make_sequence
from repro.video.request import TranscodingRequest

__all__ = ["Fig2Point", "fig2_characterization", "fig5_trace"]


@dataclasses.dataclass(frozen=True)
class Fig2Point:
    """One configuration point of the Fig. 2 characterisation sweep.

    Attributes
    ----------
    threads, qp:
        Swept configuration.
    fps:
        Average throughput achieved.
    power_w:
        Average package power.
    psnr_db:
        Average PSNR.
    bandwidth_mbytes_per_s:
        Average output bandwidth in MBytes/s (Fig. 2's RD-curve x-axis).
    """

    threads: int
    qp: int
    fps: float
    power_w: float
    psnr_db: float
    bandwidth_mbytes_per_s: float


def fig2_characterization(
    thread_counts: Sequence[int] = (1, 2, 4, 6, 8, 10),
    qp_values: Sequence[int] = (22, 27, 32, 37),
    frequency_ghz: float = 3.2,
    sequence_name: str = "Cactus",
    num_frames: int = 48,
    seed: int = 0,
) -> list[Fig2Point]:
    """Static sweep of threads x QP for one HR video (paper Fig. 2).

    Each configuration is run as its own single-session experiment with a
    fixed-configuration controller; the returned points carry the averages
    over ``num_frames`` frames.
    """
    points: list[Fig2Point] = []
    for threads in thread_counts:
        for qp in qp_values:
            sequence = make_sequence(sequence_name, num_frames=num_frames, seed=seed)
            request = TranscodingRequest(user_id="fig2", sequence=sequence)
            controller = StaticController(
                qp=qp,
                threads=threads,
                frequency_ghz=frequency_ghz,
                # The characterisation sweep pins only the encoding cores at
                # the target frequency; unused cores stay parked, as with the
                # per-core DVFS setup the paper characterises.
                dvfs_policy=DvfsPolicy.PER_CORE,
            )
            session = TranscodingSession(request=request, controller=controller)
            result = Orchestrator([session], server=MulticoreServer()).run()
            summary = result.summary()
            session_summary = summary.sessions["fig2"]
            points.append(
                Fig2Point(
                    threads=threads,
                    qp=qp,
                    fps=session_summary.mean_fps,
                    power_w=summary.mean_power_w,
                    psnr_db=session_summary.mean_psnr_db,
                    bandwidth_mbytes_per_s=session_summary.mean_bitrate_mbps / 8.0,
                )
            )
    return points


def fig5_trace(
    sequence_name: str = "Cactus",
    num_frames: int = 500,
    power_cap_w: float = DEFAULT_POWER_CAP_W,
    seed: int = 0,
) -> dict[str, list[float]]:
    """Execution trace of MAMUT on one HR video (paper Fig. 5).

    Returns one series per sub-plot of the figure: per-frame FPS, PSNR, QP,
    thread count and frequency (plus the frame index).
    """
    sequence = make_sequence(sequence_name, num_frames=num_frames, seed=seed)
    request = TranscodingRequest(user_id="fig5", sequence=sequence)
    config = MamutConfig.for_request(
        request, power_cap_w=power_cap_w, seed=seed, record_history=True
    )
    controller = MamutController(config)
    session = TranscodingSession(request=request, controller=controller)
    result = Orchestrator([session], server=MulticoreServer()).run()

    records = result.records_by_session["fig5"]
    return {
        "frame": [float(r.step) for r in records],
        "fps": [r.fps for r in records],
        "psnr_db": [r.psnr_db for r in records],
        "qp": [float(r.qp) for r in records],
        "threads": [float(r.threads) for r in records],
        "frequency_ghz": [r.frequency_ghz for r in records],
        "power_w": [r.power_w for r in records],
    }
