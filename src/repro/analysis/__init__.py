"""Analysis: regeneration of the paper's figures and tables.

Each function returns plain Python data (lists of dicts / dataclasses) so the
benchmarks can print the same rows and series the paper reports without any
plotting dependency.
"""

from repro.analysis.figures import (
    Fig2Point,
    fig2_characterization,
    fig5_trace,
)
from repro.analysis.tables import (
    Fig4Row,
    Table1Row,
    Table2Row,
    fig4_scenario_one_sweep,
    table1_threads_frequency,
    table2_scenario_two,
)

__all__ = [
    "Fig2Point",
    "fig2_characterization",
    "fig5_trace",
    "Fig4Row",
    "Table1Row",
    "Table2Row",
    "fig4_scenario_one_sweep",
    "table1_threads_frequency",
    "table2_scenario_two",
]
