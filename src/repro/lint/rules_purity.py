"""Telemetry purity rule: observe paths must not mutate what they observe.

Telemetry's contract is observe-only — an instrumented run is bitwise
identical to a bare one (property-tested at runtime, enforced here at
parse time).  The attack surface is the hook path: everything reachable
from ``Telemetry.observe_*`` / ``record_*`` and the trace sinks' ``emit``
runs *inside* the stepping engines with live orchestrator state in hand.
One attribute assignment to a passed-in object there and the "observer"
is steering the simulation.

* **TEL101** — inside the ``repro.telemetry`` layer, a function reachable
  from an observe/record/emit entry point assigns to an attribute of one
  of its parameters.  ``self``/``cls`` are exempt (telemetry owns its own
  state), as are parameters whose annotation names a class defined in the
  telemetry layer itself (mutating telemetry-owned carriers like
  ``_ObjectiveState`` is the machinery working, not a purity breach).

Reachability is a name-based over-approximation: from every entry point,
any same-layer function or method with a called name is considered
reachable.  That errs toward flagging — right for an invariant whose
failure mode is silent nondeterminism.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.base import LintModule, Rule, walk_functions
from repro.lint.findings import Finding

__all__ = ["TelemetryPurity"]

_ENTRY_PREFIXES = ("observe", "record")
_ENTRY_NAMES = frozenset({"emit"})


def _is_entry_point(fn: ast.FunctionDef) -> bool:
    return fn.name.startswith(_ENTRY_PREFIXES) or fn.name in _ENTRY_NAMES


def _annotation_names(node: Optional[ast.expr]) -> set[str]:
    """Bare class names mentioned anywhere in an annotation expression."""
    if node is None:
        return set()
    names = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.add(child.id)
        elif isinstance(child, ast.Attribute):
            names.add(child.attr)
        elif isinstance(child, ast.Constant) and isinstance(child.value, str):
            # String annotation: take the dotted tail of each token.
            for token in child.value.replace("[", " ").replace("]", " ").split():
                names.add(token.strip('"\',').split(".")[-1])
    return names


def _local_classes(module: LintModule) -> set[str]:
    return {
        node.name
        for node in ast.walk(module.tree)
        if isinstance(node, ast.ClassDef)
    }


def _assignment_roots(node: ast.AST):
    """Yield (stmt, root Name) for attribute/subscript assignment targets."""
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    for target in targets:
        base = target
        is_dotted = False
        while isinstance(base, (ast.Attribute, ast.Subscript)):
            is_dotted = is_dotted or isinstance(base, ast.Attribute)
            base = base.value
        if is_dotted and isinstance(base, ast.Name):
            yield node, base


def _own_statements(fn: ast.FunctionDef):
    """Walk a function's body without descending into nested defs."""
    stack = list(fn.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


class TelemetryPurity(Rule):
    code = "TEL101"
    name = "telemetry-purity"
    description = (
        "A function on the telemetry observe/record/emit path assigns to "
        "an attribute of a passed-in object; telemetry is observe-only "
        "and may only mutate its own state."
    )

    def check(self, module: LintModule) -> list[Finding]:
        name = module.module or ""
        if not (name == "repro.telemetry" or name.startswith("repro.telemetry.")):
            return []

        all_functions = [fn for _parent, fn in walk_functions(module.tree)]
        by_name: dict[str, list[ast.FunctionDef]] = {}
        for fn in all_functions:
            by_name.setdefault(fn.name, []).append(fn)

        # Name-based transitive closure from the entry points.
        reachable: set[int] = set()
        frontier = [fn for fn in all_functions if _is_entry_point(fn)]
        while frontier:
            fn = frontier.pop()
            if id(fn) in reachable:
                continue
            reachable.add(id(fn))
            called = set()
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    func = node.func
                    if isinstance(func, ast.Name):
                        called.add(func.id)
                    elif isinstance(func, ast.Attribute):
                        called.add(func.attr)
            for called_name in called:
                for candidate in by_name.get(called_name, ()):
                    if id(candidate) not in reachable:
                        frontier.append(candidate)

        telemetry_classes = _local_classes(module)
        findings = []
        for fn in all_functions:
            if id(fn) not in reachable:
                continue
            exempt = {"self", "cls"}
            args = fn.args
            for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
                if _annotation_names(arg.annotation) & telemetry_classes:
                    exempt.add(arg.arg)
            params = {
                arg.arg
                for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]
            }
            if args.vararg is not None:
                params.add(args.vararg.arg)
            if args.kwarg is not None:
                params.add(args.kwarg.arg)
            # Only direct statements of this function: nested defs are
            # themselves in `all_functions` and judged on their own params.
            for stmt in _own_statements(fn):
                for assign, root in _assignment_roots(stmt):
                    if root.id in params and root.id not in exempt:
                        findings.append(
                            self.finding(
                                module,
                                assign,
                                f"{fn.name}() is on the observe path but "
                                f"assigns to an attribute of its parameter "
                                f"'{root.id}'",
                            )
                        )
        return findings
