"""RNG discipline rules: every random draw must come from a seeded stream.

The whole reproduction hangs on seed-for-seed determinism — scalar/batch
bitwise parity, fault schedules on private streams, regression gates that
diff two seeded runs to exact equality.  One call into the process-global
RNG (whose state depends on import order and on every other caller) or one
seedless generator breaks all of it silently, in whatever run happens to
execute first.  These rules make that class of bug a parse-time error:

* **RNG101** — call into the process-global RNG (``np.random.normal()``,
  ``random.shuffle()``, ...) anywhere in the tree, module level or not.
* **RNG102** — RNG construction without a seed: ``default_rng()``,
  ``default_rng(None)``, ``random.Random()``, ``np.random.RandomState()``.
* **RNG103** — wall-clock or OS entropy in simulation code (``time.time``,
  ``datetime.now``, ``os.urandom``, ``uuid.uuid4``, ``secrets.*``).  The
  ``repro.telemetry`` layer is exempt: it measures real wall time by
  design and is observe-only by contract (see rules_purity).
"""

from __future__ import annotations

import ast

from repro.lint.base import LintModule, Rule, dotted_call_target
from repro.lint.findings import Finding

__all__ = ["GlobalRngCall", "SeedlessRng", "WallClockEntropy"]

#: numpy.random attributes that construct *seedable* objects rather than
#: drawing from the global stream; everything else under numpy.random is
#: the legacy convenience API.
_NUMPY_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: stdlib ``random`` attributes that are fine to *call* (seedable class
#: constructors).  ``SystemRandom`` is deliberately absent — it is OS
#: entropy and lands under RNG103.
_STDLIB_CONSTRUCTORS = frozenset({"Random"})

#: Constructors whose zero-argument / ``None``-argument form is seedless.
_SEEDED_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "random.Random",
    }
)

#: Wall-clock / OS-entropy callables banned from simulation code.
_ENTROPY_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "os.urandom",
        "os.getrandom",
        "uuid.uuid1",
        "uuid.uuid4",
        "random.SystemRandom",
    }
)


def _iter_calls(module: LintModule):
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            target = dotted_call_target(module, node)
            if target is not None:
                yield node, target


class GlobalRngCall(Rule):
    code = "RNG101"
    name = "global-rng-call"
    description = (
        "Call into the process-global RNG (numpy.random.* convenience API "
        "or stdlib random.* module functions); draw from a seeded "
        "Generator passed in by the caller instead."
    )

    def check(self, module: LintModule) -> list[Finding]:
        findings = []
        for node, target in _iter_calls(module):
            root, _, attr = target.rpartition(".")
            if root == "numpy.random" and attr not in _NUMPY_CONSTRUCTORS:
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"np.random.{attr}() draws from the process-global "
                        "RNG; use a seeded np.random.Generator",
                    )
                )
            elif root == "random" and attr not in _STDLIB_CONSTRUCTORS:
                if target in _ENTROPY_CALLS:
                    continue  # SystemRandom et al. are RNG103's finding
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"random.{attr}() uses the module-global stream; "
                        "use a seeded random.Random or numpy Generator",
                    )
                )
        return findings


def _is_seedless(call: ast.Call) -> bool:
    """True for zero arguments or an explicit literal ``None`` seed."""
    if any(keyword.arg == "seed" for keyword in call.keywords):
        seed = next(k.value for k in call.keywords if k.arg == "seed")
        return isinstance(seed, ast.Constant) and seed.value is None
    if not call.args:
        return True
    first = call.args[0]
    return isinstance(first, ast.Constant) and first.value is None


class SeedlessRng(Rule):
    code = "RNG102"
    name = "seedless-rng"
    description = (
        "RNG constructed without a seed (default_rng(), random.Random(), "
        "RandomState()); thread the run's seed, or a child of its "
        "SeedSequence, into every stream."
    )

    def check(self, module: LintModule) -> list[Finding]:
        findings = []
        for node, target in _iter_calls(module):
            if target in _SEEDED_CONSTRUCTORS and _is_seedless(node):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{target.rpartition('.')[2]}() without a seed is "
                        "entropy-seeded and unreproducible",
                    )
                )
        return findings


class WallClockEntropy(Rule):
    code = "RNG103"
    name = "wall-clock-entropy"
    description = (
        "Wall-clock or OS entropy (time.time, datetime.now, os.urandom, "
        "uuid.uuid4, secrets) in simulation code; simulated time is the "
        "step counter, identity comes from the workload. The "
        "repro.telemetry layer is exempt (it measures real time by design)."
    )

    #: Layers whose business *is* real time / host identity.
    _EXEMPT_PREFIXES = ("repro.telemetry",)

    def check(self, module: LintModule) -> list[Finding]:
        name = module.module
        if name is None or not (name == "repro" or name.startswith("repro.")):
            return []
        if any(
            name == prefix or name.startswith(prefix + ".")
            for prefix in self._EXEMPT_PREFIXES
        ):
            return []
        findings = []
        for node, target in _iter_calls(module):
            if target in _ENTROPY_CALLS or target.startswith("secrets."):
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{target}() injects wall-clock/OS entropy into "
                        "simulation code",
                    )
                )
        return findings
