"""``python -m repro.lint`` — standalone entry point for the lint pass."""

import sys

from repro.lint.runner import main

if __name__ == "__main__":
    sys.exit(main())
