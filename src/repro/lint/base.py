"""Shared infrastructure for ``repro lint`` rules.

A :class:`LintModule` wraps one parsed source file: its AST, raw lines,
derived dotted module name (for files inside the ``repro`` package) and an
import-alias table that lets rules resolve a call like ``rng.normal()`` or
``np.random.default_rng()`` back to the dotted path of what was imported.
Rules subclass :class:`Rule` and return :class:`~repro.lint.findings.Finding`
lists; they never mutate the module.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator, Optional

from repro.lint.findings import Finding

__all__ = ["LintModule", "Rule", "dotted_call_target", "module_name_for_path"]


def module_name_for_path(path: str) -> Optional[str]:
    """Dotted module name for files inside a ``repro`` package tree.

    Works from the path alone (no importing, no ``__init__`` probing): the
    *last* path segment named ``repro`` is taken as the package root, so
    both the real ``src/repro/...`` tree and scratch copies like
    ``/tmp/x/repro/telemetry/bad.py`` resolve.  Files outside any ``repro``
    directory (tests, benchmarks) get ``None`` and are skipped by the
    module-scoped rules.
    """
    parts = path.replace("\\", "/").split("/")
    indices = [i for i, part in enumerate(parts) if part == "repro"]
    if not indices:
        return None
    tail = parts[indices[-1]:]
    if not tail[-1].endswith(".py"):
        return None
    tail[-1] = tail[-1][: -len(".py")]
    if tail[-1] == "__init__":
        tail.pop()
    return ".".join(tail)


@dataclasses.dataclass
class LintModule:
    """One parsed source file, as seen by every rule."""

    path: str
    source: str
    tree: ast.Module
    module: Optional[str]  # dotted name, None outside the repro package

    def __post_init__(self) -> None:
        self.lines = self.source.splitlines()
        self._aliases: Optional[dict[str, str]] = None

    @classmethod
    def parse(cls, path: str, source: str) -> "LintModule":
        return cls(
            path=path,
            source=source,
            tree=ast.parse(source, filename=path),
            module=module_name_for_path(path),
        )

    @property
    def aliases(self) -> dict[str, str]:
        """Local name -> dotted import path, from this module's imports.

        ``import numpy as np`` maps ``np -> numpy``; ``from numpy import
        random as npr`` maps ``npr -> numpy.random``.  Function-scoped
        imports are included too: for alias *resolution* a coarse union is
        safe (shadowing across scopes would be its own smell).
        """
        if self._aliases is None:
            table: dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for name in node.names:
                        local = name.asname or name.name.split(".")[0]
                        target = name.name if name.asname else name.name.split(".")[0]
                        table[local] = target
                elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                    for name in node.names:
                        if name.name == "*":
                            continue
                        table[name.asname or name.name] = f"{node.module}.{name.name}"
            self._aliases = table
        return self._aliases

    def resolve_dotted(self, node: ast.expr) -> Optional[str]:
        """Resolve a ``Name``/``Attribute`` chain to a dotted import path.

        ``np.random.default_rng`` -> ``numpy.random.default_rng`` when the
        module imported numpy as ``np``; ``None`` when the chain's root is
        not an imported name (e.g. a local variable or ``self``).
        """
        chain: list[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self.aliases.get(node.id)
        if root is None:
            return None
        return ".".join([root, *reversed(chain)])


def dotted_call_target(module: LintModule, call: ast.Call) -> Optional[str]:
    """Dotted import path of a call's callee, or ``None`` if unresolvable."""
    return module.resolve_dotted(call.func)


class Rule:
    """Base class: one code, one invariant, one ``check`` pass per file."""

    code: str = ""
    name: str = ""
    description: str = ""

    def check(self, module: LintModule) -> list[Finding]:
        raise NotImplementedError

    def finding(
        self, module: LintModule, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            code=self.code,
            message=message,
        )


def walk_functions(
    tree: ast.AST,
) -> Iterator[tuple[ast.AST, "ast.FunctionDef | ast.AsyncFunctionDef"]]:
    """Yield ``(parent, function)`` pairs for every def in the tree."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node, child
