"""Scalar/batch parity rules over ``foo`` / ``foo_batch`` entry-point pairs.

The batch engine's seed-for-seed equivalence rests on every model exposing
a scalar entry point and a ``*_batch`` counterpart that evaluate the same
arithmetic.  Two drift classes have bitten before:

* a default changing on one side only (the pair silently diverges for
  callers who rely on the default), and
* the PR 5 ULP class — the scalar path evaluating a transcendental
  through ``math.exp`` while the batch path goes through ``np.exp``,
  whose SIMD kernels may differ in the last ULP.

Both are now parse-time findings:

* **PAR101** — parameter drift: a name shared by the pair appears in a
  different relative order, or with a different default, on the two sides
  (the batch side may explode object parameters into extra arrays; only
  the *shared* names must agree).
* **PAR102** — transcendental backend mix: one side of a pair reaches a
  ``math.<fn>`` the other side evaluates as ``np.<fn>``.  Calls are
  collected transitively through same-module helpers, so the blessed
  idiom — both paths reading one shared table built with ``math`` — passes,
  and an explicit ``math`` fallback on the batch side (e.g.
  ``total_batch(exact=True)``) counts as agreement.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from repro.lint.base import LintModule, Rule
from repro.lint.findings import Finding

__all__ = ["ParityParameterDrift", "ParityMathBackendMix"]

_BATCH_SUFFIX = "_batch"

#: Transcendental function names whose math/np kernels may disagree in the
#: last ULP.  numpy spellings are normalised onto the math ones.
_TRANSCENDENTALS = frozenset(
    {
        "exp",
        "expm1",
        "log",
        "log1p",
        "log2",
        "log10",
        "sqrt",
        "cbrt",
        "pow",
        "hypot",
        "sin",
        "cos",
        "tan",
        "asin",
        "acos",
        "atan",
        "atan2",
        "sinh",
        "cosh",
        "tanh",
    }
)
_NUMPY_SPELLINGS = {
    "power": "pow",
    "arcsin": "asin",
    "arccos": "acos",
    "arctan": "atan",
    "arctan2": "atan2",
}


def _params(fn: ast.FunctionDef) -> list[tuple[str, Optional[str]]]:
    """``(name, default-AST-dump-or-None)`` per parameter, self/cls excluded."""
    args = fn.args
    ordered = [*args.posonlyargs, *args.args]
    defaults: list[Optional[ast.expr]] = [None] * (
        len(ordered) - len(args.defaults)
    ) + list(args.defaults)
    entries = list(zip(ordered, defaults))
    entries += list(zip(args.kwonlyargs, args.kw_defaults))
    out = []
    for arg, default in entries:
        if arg.arg in ("self", "cls"):
            continue
        out.append((arg.arg, ast.dump(default) if default is not None else None))
    return out


def _scopes(module: LintModule) -> Iterable[tuple[str, dict[str, ast.FunctionDef]]]:
    """Function maps per pairing scope: module top level and each class."""
    top: dict[str, ast.FunctionDef] = {}
    for child in ast.iter_child_nodes(module.tree):
        if isinstance(child, ast.FunctionDef):
            top[child.name] = child
    yield "module", top
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef):
            methods = {
                child.name: child
                for child in ast.iter_child_nodes(node)
                if isinstance(child, ast.FunctionDef)
            }
            yield node.name, methods


def _pairs(module: LintModule):
    scopes = list(_scopes(module))
    top = dict(scopes[0][1])
    for scope_name, functions in scopes:
        # Helpers resolve against the class's methods first, then the
        # module's top-level functions (for PAR102's transitive walk).
        resolution = {**top, **functions}
        for name, fn in functions.items():
            if not name.endswith(_BATCH_SUFFIX):
                continue
            scalar = functions.get(name[: -len(_BATCH_SUFFIX)])
            if scalar is not None:
                yield scope_name, resolution, scalar, fn


class ParityParameterDrift(Rule):
    code = "PAR101"
    name = "parity-parameter-drift"
    description = (
        "A parameter name shared by a scalar entry point and its *_batch "
        "counterpart differs in relative order or default value between "
        "the two sides."
    )

    def check(self, module: LintModule) -> list[Finding]:
        findings = []
        for scope, _functions, scalar, batch in _pairs(module):
            scalar_params = dict(_params(scalar))
            batch_params = dict(_params(batch))
            shared = set(scalar_params) & set(batch_params)
            if not shared:
                continue
            label = f"{scope}.{scalar.name}" if scope != "module" else scalar.name
            scalar_order = [n for n, _ in _params(scalar) if n in shared]
            batch_order = [n for n, _ in _params(batch) if n in shared]
            if scalar_order != batch_order:
                findings.append(
                    self.finding(
                        module,
                        batch,
                        f"{label}: shared parameters ordered "
                        f"{scalar_order} in the scalar entry point but "
                        f"{batch_order} in {batch.name}",
                    )
                )
            for name in scalar_order:
                if scalar_params[name] != batch_params[name]:
                    findings.append(
                        self.finding(
                            module,
                            batch,
                            f"{label}: parameter '{name}' default differs "
                            f"between {scalar.name} and {batch.name}",
                        )
                    )
        return findings


def _called_names(fn: ast.FunctionDef) -> set[str]:
    """Local helper names this function calls: bare f(), self.f(), Cls.f()."""
    names = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Name):
            names.add(func.id)
        elif isinstance(func, ast.Attribute):
            names.add(func.attr)
    return names


def _backend_calls(module: LintModule, fn: ast.FunctionDef) -> tuple[set, set]:
    """Transcendental names this function calls via math / via numpy."""
    math_fns: set[str] = set()
    np_fns: set[str] = set()
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        target = module.resolve_dotted(node.func)
        if target is None:
            continue
        root, _, attr = target.rpartition(".")
        attr = _NUMPY_SPELLINGS.get(attr, attr)
        if attr not in _TRANSCENDENTALS:
            continue
        if root == "math":
            math_fns.add(attr)
        elif root == "numpy":
            np_fns.add(attr)
    return math_fns, np_fns


def _transitive_backends(
    module: LintModule,
    fn: ast.FunctionDef,
    functions: dict[str, ast.FunctionDef],
) -> tuple[set, set]:
    """Backend call sets including same-scope helpers, transitively."""
    math_fns: set[str] = set()
    np_fns: set[str] = set()
    seen: set[str] = set()
    frontier = [fn]
    while frontier:
        current = frontier.pop()
        if current.name in seen:
            continue
        seen.add(current.name)
        direct_math, direct_np = _backend_calls(module, current)
        math_fns |= direct_math
        np_fns |= direct_np
        for name in _called_names(current):
            helper = functions.get(name)
            if helper is not None and helper.name not in seen:
                frontier.append(helper)
    return math_fns, np_fns


class ParityMathBackendMix(Rule):
    code = "PAR102"
    name = "parity-math-backend-mix"
    description = (
        "One side of a scalar/*_batch pair evaluates a transcendental via "
        "math.<fn> while the other uses np.<fn>; their kernels may differ "
        "in the last ULP, breaking bitwise scalar/batch equivalence."
    )

    def check(self, module: LintModule) -> list[Finding]:
        findings = []
        for scope, functions, scalar, batch in _pairs(module):
            scalar_math, scalar_np = _transitive_backends(
                module, scalar, functions
            )
            batch_math, batch_np = _transitive_backends(module, batch, functions)
            label = f"{scope}.{scalar.name}" if scope != "module" else scalar.name
            # A function is in agreement when the other side also touches
            # the same backend for that name (shared table / exact path).
            mixed = (scalar_math & batch_np) - (batch_math | scalar_np)
            mixed |= (scalar_np & batch_math) - (scalar_math | batch_np)
            for name in sorted(mixed):
                findings.append(
                    self.finding(
                        module,
                        batch,
                        f"{label}: '{name}' is evaluated through math on "
                        f"one side of the pair and numpy on the other "
                        "(ULP-divergence risk)",
                    )
                )
        return findings
