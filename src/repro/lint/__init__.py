"""``repro lint`` — static enforcement of the repo's determinism invariants.

Rule-based static analysis (AST visitors plus an import-graph pass) that
turns the reproduction's runtime-tested contracts into parse-time errors:

* **RNG discipline** (RNG101-103): every random draw from a seeded stream,
  no wall-clock/OS entropy in simulation code.
* **Layering** (LAY001-002): the declared layer DAG — telemetry cannot
  reach the engines it observes, device/video models cannot depend on the
  fleet machinery above them.
* **Scalar/batch parity** (PAR101-102): ``foo``/``foo_batch`` entry-point
  pairs keep shared parameters and transcendental backends in sync.
* **Telemetry purity** (TEL101): observe/record/emit code paths never
  assign into the objects they are handed.

Run it as ``repro-mamut lint src tests`` (or ``python -m repro.lint``);
silence an individual finding with ``# repro: allow[CODE]`` on or above
the flagged line.
"""

from repro.lint.base import LintModule, Rule, module_name_for_path
from repro.lint.findings import Finding, parse_suppressions
from repro.lint.rules_layering import LAYER_DAG, LAZY_OK
from repro.lint.runner import (
    add_lint_arguments,
    all_rules,
    lint_command,
    lint_paths,
    main,
    run_lint,
)

__all__ = [
    "Finding",
    "LAYER_DAG",
    "LAZY_OK",
    "LintModule",
    "Rule",
    "add_lint_arguments",
    "all_rules",
    "lint_command",
    "lint_paths",
    "main",
    "module_name_for_path",
    "parse_suppressions",
    "run_lint",
]
