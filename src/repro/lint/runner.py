"""File collection, rule execution and reporting for ``repro lint``.

The runner walks the given paths, parses every ``.py`` file once, hands
each :class:`~repro.lint.base.LintModule` to every registered rule,
filters findings through the file's ``# repro: allow[...]`` suppressions
and renders the survivors as text (``path:line:col: CODE message``) or
JSON.  Exit codes follow the usual contract: 0 clean, 1 findings,
2 usage error (unknown rule code, unreadable path, syntax error).
"""

from __future__ import annotations

import argparse
import ast
import json
import os
import sys
from typing import Callable, Optional, Sequence

from repro.lint.base import LintModule, Rule
from repro.lint.findings import Finding, parse_suppressions
from repro.lint.rules_layering import LayerViolation, UndeclaredLayer
from repro.lint.rules_parity import ParityMathBackendMix, ParityParameterDrift
from repro.lint.rules_purity import TelemetryPurity
from repro.lint.rules_rng import GlobalRngCall, SeedlessRng, WallClockEntropy

__all__ = ["all_rules", "lint_paths", "run_lint", "main"]

_RULE_CLASSES = (
    GlobalRngCall,
    SeedlessRng,
    WallClockEntropy,
    LayerViolation,
    UndeclaredLayer,
    ParityParameterDrift,
    ParityMathBackendMix,
    TelemetryPurity,
)

_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache"})


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in reporting order."""
    return [rule_class() for rule_class in _RULE_CLASSES]


def _select_rules(
    select: Optional[Sequence[str]], ignore: Optional[Sequence[str]]
) -> list[Rule]:
    rules = all_rules()
    known = {rule.code for rule in rules}
    for requested in list(select or []) + list(ignore or []):
        if requested not in known:
            raise ValueError(
                f"unknown rule code {requested!r} (known: {sorted(known)})"
            )
    if select:
        rules = [rule for rule in rules if rule.code in set(select)]
    if ignore:
        rules = [rule for rule in rules if rule.code not in set(ignore)]
    return rules


def _collect_files(paths: Sequence[str]) -> list[str]:
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d not in _SKIP_DIRS
                )
                files.extend(
                    os.path.join(dirpath, name)
                    for name in sorted(filenames)
                    if name.endswith(".py")
                )
        else:
            raise FileNotFoundError(path)
    return files


def lint_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
) -> tuple[list[Finding], list[str]]:
    """Lint every ``.py`` file under ``paths``.

    Returns ``(findings, errors)`` — findings already suppression-filtered
    and sorted, errors being files the runner could not parse (those are
    usage errors, not findings: broken syntax never passes silently).
    """
    active = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    errors: list[str] = []
    for path in _collect_files(paths):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            module = LintModule.parse(path, source)
        except (OSError, SyntaxError, ValueError) as exc:
            errors.append(f"{path}: {exc}")
            continue
        suppressions = parse_suppressions(module.lines)
        for rule in active:
            for finding in rule.check(module):
                if not suppressions.silences(finding):
                    findings.append(finding)
    return sorted(findings), errors


def _render_text(findings: Sequence[Finding], out: Callable[[str], None]) -> None:
    for finding in findings:
        out(finding.render())
    noun = "finding" if len(findings) == 1 else "findings"
    out(f"{len(findings)} {noun}")


def _render_json(findings: Sequence[Finding], out: Callable[[str], None]) -> None:
    out(
        json.dumps(
            {
                "findings": [finding.to_dict() for finding in findings],
                "count": len(findings),
            },
            indent=2,
            sort_keys=True,
        )
    )


def _render_rules(out: Callable[[str], None]) -> None:
    for rule in all_rules():
        out(f"{rule.code}  {rule.name}")
        out(f"    {rule.description}")


def run_lint(
    paths: Sequence[str],
    output_format: str = "text",
    select: Optional[Sequence[str]] = None,
    ignore: Optional[Sequence[str]] = None,
    list_rules: bool = False,
    out: Callable[[str], None] = print,
) -> int:
    """Programmatic entry point; returns the process exit code."""
    if list_rules:
        _render_rules(out)
        return 0
    try:
        rules = _select_rules(select, ignore)
        findings, errors = lint_paths(paths, rules)
    except (ValueError, FileNotFoundError) as exc:
        out(f"error: {exc}")
        return 2
    if errors:
        for error in errors:
            out(f"error: {error}")
        return 2
    if output_format == "json":
        _render_json(findings, out)
    else:
        _render_text(findings, out)
    return 1 if findings else 0


def _split_codes(value: Optional[str]) -> Optional[list[str]]:
    if not value:
        return None
    return [code.strip() for code in value.split(",") if code.strip()]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint CLI surface to an (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format",
    )
    parser.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run exclusively (e.g. RNG101,LAY001)",
    )
    parser.add_argument(
        "--ignore",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule code with its description and exit",
    )


def lint_command(args: argparse.Namespace) -> int:
    """Run lint from parsed CLI arguments (shared by repro.cli)."""
    return run_lint(
        args.paths,
        output_format=args.format,
        select=_split_codes(args.select),
        ignore=_split_codes(args.ignore),
        list_rules=args.list_rules,
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=__doc__.splitlines()[0],
    )
    add_lint_arguments(parser)
    return lint_command(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
