"""Findings and suppression comments for the ``repro lint`` pass.

A :class:`Finding` is one rule violation at one source location.  Findings
can be silenced in place with a suppression comment::

    rng = np.random.default_rng()  # repro: allow[RNG102]

either trailing on the flagged line or on a standalone comment line
immediately above it.  Several codes may be listed
(``# repro: allow[RNG102, LAY001]``); ``allow[*]`` silences every rule on
that line and exists for generated code only — reviewed code should name
the rule it is waiving.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Sequence

__all__ = ["Finding", "Suppressions", "parse_suppressions"]

#: ``# repro: allow[CODE1, CODE2]`` — the one suppression syntax.
_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([A-Za-z0-9*,\s]+)\]")


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)


class Suppressions:
    """The ``# repro: allow[...]`` comments of one source file.

    A suppression on line *L* covers findings reported on *L*; a standalone
    comment line (nothing but the comment) additionally covers the next
    line, so long statements can carry their waiver above them.
    """

    def __init__(self, covered: dict[int, frozenset[str]]) -> None:
        self._covered = covered

    def silences(self, finding: Finding) -> bool:
        codes = self._covered.get(finding.line)
        if codes is None:
            return False
        return finding.code in codes or "*" in codes

    def __len__(self) -> int:  # diagnostic only
        return len(self._covered)


def parse_suppressions(source_lines: Sequence[str]) -> Suppressions:
    """Scan raw source lines for suppression comments.

    Regex over lines rather than ``tokenize`` keeps this robust to the
    syntactically broken fixture files the lint tests feed in; the pattern
    cannot occur inside a string literal without looking exactly like a
    deliberate waiver, which is fine to honour.
    """
    covered: dict[int, set[str]] = {}
    for lineno, text in enumerate(source_lines, start=1):
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        codes = {code.strip() for code in match.group(1).split(",") if code.strip()}
        covered.setdefault(lineno, set()).update(codes)
        if text.lstrip().startswith("#"):  # standalone: covers the next line too
            covered.setdefault(lineno + 1, set()).update(codes)
    return Suppressions(
        {line: frozenset(codes) for line, codes in covered.items()}
    )
