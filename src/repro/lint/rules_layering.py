"""Layering rules: the package dependency DAG, enforced at parse time.

The repo's subsystems are layered so that the observe-only and
swap-anything contracts hold *by construction*: telemetry can never reach
into the engines it observes, the device/video models can never grow a
dependency on the fleet machinery that drives them.  The DAG below is the
single declared source of truth; an import edge not listed here fails the
lint even if Python would happily execute it.

* **LAY001** — import that violates the declared layer DAG.
* **LAY002** — module in a top-level layer the DAG does not declare
  (forces new subsystems to state their place in the stack).

Layers are the top-level modules under ``repro`` (``repro.cluster`` ->
layer ``cluster``), with three finer splits at the bottom of the stack:
``video.content`` and ``video.sequence`` (the leaf content/sequence
models) and ``metrics.records`` (the shared measurement dataclasses).
Those sub-layers are what make the video <-> metrics package pair acyclic
at lint granularity: records sits *above* ``video.sequence`` but *below*
the rest of ``video``.  A sub-layer is contained in its parent — an edge
onto ``video.sequence`` is satisfied by ``video`` appearing in the
importer's allowed set.

A function-scoped import is runtime wiring, not architecture; it is
tolerated only for edges listed in :data:`LAZY_OK` (today: the scalar
orchestrator lazily importing the batch stepper it can delegate to).
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.lint.base import LintModule, Rule
from repro.lint.findings import Finding

__all__ = ["LAYER_DAG", "LAZY_OK", "LayerViolation", "UndeclaredLayer"]

#: layer -> layers it may import from (its own layer is always allowed).
LAYER_DAG: dict[str, frozenset[str]] = {
    "constants": frozenset(),
    "errors": frozenset(),
    "video.content": frozenset({"constants", "errors"}),
    "video.sequence": frozenset({"constants", "errors", "video.content"}),
    "metrics.records": frozenset({"constants", "errors", "video.sequence"}),
    "video": frozenset({"constants", "errors", "metrics.records"}),
    "metrics": frozenset({"constants", "errors", "metrics.records", "video"}),
    "platform": frozenset({"constants", "errors", "metrics.records"}),
    "hevc": frozenset({"constants", "errors", "video"}),
    "telemetry": frozenset({"constants", "errors", "metrics", "metrics.records"}),
    "core": frozenset({"constants", "errors", "video", "platform"}),
    "baselines": frozenset({"constants", "errors", "core", "platform", "video"}),
    "manager": frozenset(
        {
            "constants",
            "errors",
            "core",
            "baselines",
            "video",
            "platform",
            "hevc",
            "metrics",
            "metrics.records",
            "telemetry",
        }
    ),
    "cluster": frozenset(
        {
            "constants",
            "errors",
            "core",
            "manager",
            "video",
            "platform",
            "hevc",
            "metrics",
            "metrics.records",
            "telemetry",
            "baselines",
        }
    ),
    "analysis": frozenset(
        {
            "constants",
            "errors",
            "video",
            "metrics",
            "metrics.records",
            "platform",
            "hevc",
            "telemetry",
            "core",
            "baselines",
            "manager",
            "cluster",
        }
    ),
    "lint": frozenset({"errors"}),
    # Application surface: may wire everything together.
    "cli": frozenset(),  # filled below
    "root": frozenset(),  # repro/__init__.py re-exports
}
_ALL_LAYERS = frozenset(LAYER_DAG)
LAYER_DAG["cli"] = _ALL_LAYERS - {"cli", "root"}
LAYER_DAG["root"] = _ALL_LAYERS - {"root"}

#: (importing layer, imported layer) edges tolerated when the import is
#: function-scoped.  Kept deliberately tiny.
LAZY_OK: frozenset[tuple[str, str]] = frozenset(
    {
        # Orchestrator(engine="batch") delegates to the cluster-level
        # batch stepper; module scope would be a manager -> cluster cycle.
        ("manager", "cluster"),
    }
)


def layer_chain(module_name: str) -> list[str]:
    """Matching layers for a dotted ``repro`` module, most specific first.

    ``repro.video.sequence`` -> ``["video.sequence", "video"]`` while
    ``repro.metrics.aggregate`` -> ``["metrics"]``; an undeclared
    top-level package yields its bare name (LAY002's trigger).
    """
    if module_name == "repro":
        return ["root"]
    if not module_name.startswith("repro."):
        return []
    tail = module_name[len("repro."):]
    chain = sorted(
        (
            layer
            for layer in LAYER_DAG
            if tail == layer or tail.startswith(layer + ".")
        ),
        key=len,
        reverse=True,
    )
    return chain or [tail.split(".")[0]]


def layer_of(module_name: str) -> Optional[str]:
    """Most specific layer of a dotted ``repro`` module name."""
    chain = layer_chain(module_name)
    return chain[0] if chain else None


def _imported_repro_modules(tree: ast.Module):
    """Yield ``(node, dotted repro module, is_module_scope)`` triples."""
    module_scope = set(ast.iter_child_nodes(tree))

    def scope_of(node: ast.AST) -> bool:
        return node in module_scope

    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                if name.name == "repro" or name.name.startswith("repro."):
                    yield node, name.name, scope_of(node)
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            if node.module == "repro" or node.module.startswith("repro."):
                yield node, node.module, scope_of(node)


class LayerViolation(Rule):
    code = "LAY001"
    name = "layer-violation"
    description = (
        "Import edge not allowed by the declared layer DAG (e.g. telemetry "
        "importing cluster/manager/core, or hevc/platform/video importing "
        "the fleet layers)."
    )

    def check(self, module: LintModule) -> list[Finding]:
        if module.module is None:
            return []
        source_layer = layer_of(module.module)
        if source_layer is None or source_layer not in LAYER_DAG:
            return []  # undeclared layers are LAY002's finding
        allowed = LAYER_DAG[source_layer]
        findings = []
        for node, imported, is_module_scope in _imported_repro_modules(
            module.tree
        ):
            target_chain = layer_chain(imported)
            if not target_chain:
                continue
            # Contained in the importer's own layer family, or satisfied
            # by any (sub-)layer of the target being declared allowed.
            if source_layer in target_chain:
                continue
            if any(target in allowed for target in target_chain):
                continue
            if not is_module_scope and any(
                (source_layer, target) in LAZY_OK for target in target_chain
            ):
                continue
            findings.append(
                self.finding(
                    module,
                    node,
                    f"layer '{source_layer}' may not import layer "
                    f"'{target_chain[0]}' ({imported}); declared deps: "
                    f"{sorted(allowed) or 'none'}",
                )
            )
        return findings


class UndeclaredLayer(Rule):
    code = "LAY002"
    name = "undeclared-layer"
    description = (
        "Module lives in a top-level repro layer the DAG does not declare; "
        "add the new layer (and its allowed dependencies) to "
        "repro/lint/rules_layering.py."
    )

    def check(self, module: LintModule) -> list[Finding]:
        if module.module is None:
            return []
        layer = layer_of(module.module)
        if layer is None or layer in LAYER_DAG:
            return []
        return [
            self.finding(
                module,
                module.tree,
                f"layer '{layer}' is not declared in the layer DAG",
            )
        ]
