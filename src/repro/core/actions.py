"""Action sets: the design-space subsets owned by each agent (Sec. III-B).

MAMUT decomposes the joint design space (QP x threads x frequency) into three
disjoint subsets, one per agent.  An :class:`ActionSet` is an ordered,
immutable collection of values; agents address actions by index, which keeps
Q-tables and counters independent of the value types.
"""

from __future__ import annotations

from typing import Generic, Iterator, Sequence, TypeVar

from repro.constants import (
    DVFS_VALUES_GHZ,
    HR_MAX_THREADS,
    LR_MAX_THREADS,
    QP_VALUES,
)
from repro.errors import ConfigurationError
from repro.video.sequence import ResolutionClass

__all__ = [
    "ActionSet",
    "default_qp_actions",
    "default_thread_actions",
    "default_dvfs_actions",
]

T = TypeVar("T")


class ActionSet(Generic[T]):
    """An ordered, immutable set of actions available to one agent.

    Parameters
    ----------
    name:
        Human-readable name of the parameter the set controls (``"qp"``,
        ``"threads"``, ``"dvfs"`` ...).
    values:
        The candidate values, in a meaningful order (ascending for numeric
        parameters); duplicates are rejected.
    """

    def __init__(self, name: str, values: Sequence[T]) -> None:
        values = tuple(values)
        if not values:
            raise ConfigurationError(f"action set {name!r} must not be empty")
        if len(set(values)) != len(values):
            raise ConfigurationError(f"action set {name!r} contains duplicate values")
        self.name = name
        self._values = values

    # -- container protocol -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[T]:
        return iter(self._values)

    def __contains__(self, value: object) -> bool:
        return value in self._values

    def __getitem__(self, index: int) -> T:
        return self._values[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ActionSet({self.name!r}, {list(self._values)!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ActionSet):
            return NotImplemented
        return self.name == other.name and self._values == other._values

    def __hash__(self) -> int:
        return hash((self.name, self._values))

    # -- helpers -------------------------------------------------------------------

    @property
    def values(self) -> tuple[T, ...]:
        """The action values in order."""
        return self._values

    def index_of(self, value: T) -> int:
        """Index of a value, raising :class:`ConfigurationError` if unknown."""
        try:
            return self._values.index(value)
        except ValueError:
            raise ConfigurationError(
                f"value {value!r} is not in action set {self.name!r}"
            ) from None

    def clamp_index(self, index: int) -> int:
        """Clamp an arbitrary integer to a valid action index."""
        return max(0, min(len(self._values) - 1, index))

    def closest_index(self, value: float) -> int:
        """Index of the numerically closest action (numeric sets only)."""
        return min(
            range(len(self._values)),
            key=lambda i: abs(float(self._values[i]) - float(value)),
        )

    def indices(self) -> range:
        """Range over all valid action indices."""
        return range(len(self._values))


def default_qp_actions() -> ActionSet[int]:
    """QP values explored by ``AGqp`` (paper Sec. III-B-a)."""
    return ActionSet("qp", QP_VALUES)


def default_thread_actions(
    resolution_class: ResolutionClass | None = None,
    max_threads: int | None = None,
) -> ActionSet[int]:
    """Thread counts explored by ``AGthread``.

    The paper limits the thread count to the saturation point of the video's
    resolution: 12 threads for HR and 5 for LR (Sec. V-A).  Either pass the
    resolution class, or an explicit ``max_threads``.
    """
    if max_threads is None:
        if resolution_class is None:
            raise ConfigurationError(
                "either resolution_class or max_threads must be provided"
            )
        max_threads = (
            HR_MAX_THREADS if resolution_class is ResolutionClass.HR else LR_MAX_THREADS
        )
    if max_threads < 1:
        raise ConfigurationError(f"max_threads must be >= 1, got {max_threads}")
    return ActionSet("threads", tuple(range(1, max_threads + 1)))


def default_dvfs_actions() -> ActionSet[float]:
    """Frequencies explored by ``AGdvfs`` (paper Sec. III-B-c)."""
    return ActionSet("dvfs", DVFS_VALUES_GHZ)
