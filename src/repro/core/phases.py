"""Learning phases (paper Sec. IV-A and IV-C).

Each agent progresses, *per state*, through three phases:

* **EXPLORATION** — actions are chosen randomly (least-tried first) and every
  transition/reward updates the Q-table and the transition counts.
* **EXPLORATION_EXPLOITATION** — entered when the learning rate of the
  state's actions drops below ``alpha_th1``; actions are chosen greedily from
  the agent's own Q-table, but updates continue.
* **EXPLOITATION** — entered below ``alpha_th2``; the agent selects actions
  with the chained expected-Q policy of Algorithm 1 (falling back to its own
  Q-table when the other agents are not ready).

Observing a brand-new state puts that state back into EXPLORATION.
"""

from __future__ import annotations

import enum

__all__ = ["Phase"]


class Phase(enum.Enum):
    """Learning phase of one agent for one state."""

    EXPLORATION = "exploration"
    EXPLORATION_EXPLOITATION = "exploration-exploitation"
    EXPLOITATION = "exploitation"

    @property
    def is_random(self) -> bool:
        """Whether actions are still chosen randomly in this phase."""
        return self is Phase.EXPLORATION

    @property
    def uses_chained_policy(self) -> bool:
        """Whether the chained expected-Q policy of Algorithm 1 applies."""
        return self is Phase.EXPLOITATION
