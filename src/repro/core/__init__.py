"""Reinforcement-learning core: the MAMUT multi-agent controller.

This package implements the paper's contribution:

* the observation/state discretisation of Sec. III-C;
* the per-agent action subsets of Sec. III-B;
* the reward functions of Sec. III-D (Eq. 1-2 plus constraint penalties);
* the learning-rate function of Sec. IV-B (Eq. 3) and the three learning
  phases of Sec. IV-A/IV-C;
* the agent activation sequence of Fig. 3;
* the chained expected-Q exploitation policy of Algorithm 1;
* :class:`~repro.core.mamut.MamutController`, which ties the three agents
  (QP, threads, DVFS) together behind the generic
  :class:`~repro.core.controller.Controller` interface used by the
  multi-user orchestrator.
"""

from repro.core.observation import Observation, average_observations
from repro.core.states import StateSpace, SystemState
from repro.core.actions import (
    ActionSet,
    default_dvfs_actions,
    default_qp_actions,
    default_thread_actions,
)
from repro.core.rewards import RewardConfig, RewardFunction, RewardBreakdown
from repro.core.qtable import QTable
from repro.core.transitions import TransitionModel
from repro.core.learning_rate import LearningRateFunction
from repro.core.phases import Phase
from repro.core.agent import QLearningAgent
from repro.core.schedule import AgentSchedule, AgentSlot
from repro.core.exploitation import expected_q_action
from repro.core.controller import Controller, Decision
from repro.core.config import MamutConfig
from repro.core.mamut import MamutController
from repro.core.persistence import (
    load_snapshot,
    restore_agents,
    save_snapshot,
    snapshot_agents,
)

__all__ = [
    "Observation",
    "average_observations",
    "StateSpace",
    "SystemState",
    "ActionSet",
    "default_qp_actions",
    "default_thread_actions",
    "default_dvfs_actions",
    "RewardConfig",
    "RewardFunction",
    "RewardBreakdown",
    "QTable",
    "TransitionModel",
    "LearningRateFunction",
    "Phase",
    "QLearningAgent",
    "AgentSchedule",
    "AgentSlot",
    "expected_q_action",
    "Controller",
    "Decision",
    "MamutConfig",
    "MamutController",
    "snapshot_agents",
    "restore_agents",
    "save_snapshot",
    "load_snapshot",
]
