"""Configuration bundle for the MAMUT controller."""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.constants import DEFAULT_GAMMA, DEFAULT_POWER_CAP_W
from repro.core.actions import (
    ActionSet,
    default_dvfs_actions,
    default_qp_actions,
    default_thread_actions,
)
from repro.core.learning_rate import LearningRateParameters
from repro.core.rewards import RewardConfig
from repro.core.schedule import AgentSchedule
from repro.core.states import StateSpace
from repro.errors import ConfigurationError
from repro.video.request import TranscodingRequest

__all__ = ["MamutConfig"]


@dataclasses.dataclass
class MamutConfig:
    """Everything needed to instantiate a :class:`~repro.core.mamut.MamutController`.

    Attributes
    ----------
    qp_actions, thread_actions, dvfs_actions:
        The three agents' action subsets (Sec. III-B).
    reward:
        Targets and constraints of the reward function (Sec. III-D).
    state_space:
        Discretisation of the observations (Sec. III-C).
    learning_rate:
        Constants of Eq. 3 and the phase thresholds (Sec. IV-B).
    gamma:
        Discount factor (paper: 0.6).
    schedule:
        Agent activation sequence (Fig. 3); defaults to the paper's periods.
    initial_qp, initial_threads, initial_frequency_ghz:
        Configuration applied before the agents have observed anything.
        ``None`` picks the middle QP, the largest thread count and the
        highest frequency of the corresponding action sets.
    exploration_epsilon:
        Probability of picking the least-tried action (instead of the greedy
        one) during the exploration phase once every action of a state has
        been tried at least once (see
        :class:`~repro.core.agent.QLearningAgent`).
    seed:
        Base seed for the agents' exploration randomness.
    record_history:
        When True the controller keeps a per-activation trace (frame, agent,
        action, phase) useful for Fig. 5-style plots and debugging.
    """

    qp_actions: ActionSet = dataclasses.field(default_factory=default_qp_actions)
    thread_actions: ActionSet = dataclasses.field(
        default_factory=lambda: default_thread_actions(max_threads=12)
    )
    dvfs_actions: ActionSet = dataclasses.field(default_factory=default_dvfs_actions)
    reward: RewardConfig = dataclasses.field(default_factory=RewardConfig)
    state_space: StateSpace = dataclasses.field(default_factory=StateSpace)
    learning_rate: LearningRateParameters = dataclasses.field(
        default_factory=LearningRateParameters
    )
    gamma: float = DEFAULT_GAMMA
    schedule: Optional[AgentSchedule] = None
    initial_qp: Optional[int] = None
    initial_threads: Optional[int] = None
    initial_frequency_ghz: Optional[float] = None
    exploration_epsilon: float = 0.15
    seed: int = 0
    record_history: bool = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.gamma < 1.0:
            raise ConfigurationError(f"gamma must be in [0, 1), got {self.gamma}")
        if not 0.0 <= self.exploration_epsilon <= 1.0:
            raise ConfigurationError(
                f"exploration_epsilon must be in [0, 1], got {self.exploration_epsilon}"
            )
        if self.schedule is None:
            self.schedule = AgentSchedule.mamut_default()
        if self.initial_qp is None:
            self.initial_qp = self.qp_actions[len(self.qp_actions) // 2]
        if self.initial_threads is None:
            self.initial_threads = self.thread_actions[len(self.thread_actions) - 1]
        if self.initial_frequency_ghz is None:
            self.initial_frequency_ghz = self.dvfs_actions[len(self.dvfs_actions) - 1]
        if self.initial_qp not in self.qp_actions:
            raise ConfigurationError(
                f"initial_qp {self.initial_qp} not in the QP action set"
            )
        if self.initial_threads not in self.thread_actions:
            raise ConfigurationError(
                f"initial_threads {self.initial_threads} not in the thread action set"
            )
        if self.initial_frequency_ghz not in self.dvfs_actions:
            raise ConfigurationError(
                f"initial_frequency_ghz {self.initial_frequency_ghz} "
                "not in the DVFS action set"
            )
        # The reward and the state space must agree on the same targets, or the
        # agents would be rewarded for states they cannot distinguish.
        if abs(self.reward.fps_target - self.state_space.fps_target) > 1e-9:
            raise ConfigurationError(
                "reward.fps_target and state_space.fps_target must match"
            )
        if abs(self.reward.power_cap_w - self.state_space.power_cap_w) > 1e-9:
            raise ConfigurationError(
                "reward.power_cap_w and state_space.power_cap_w must match"
            )

    @classmethod
    def for_request(
        cls,
        request: TranscodingRequest,
        power_cap_w: float = DEFAULT_POWER_CAP_W,
        seed: int = 0,
        record_history: bool = False,
    ) -> "MamutConfig":
        """Build a configuration tailored to one transcoding request.

        The thread action set is capped at the saturation point of the
        request's resolution class (12 for HR, 5 for LR), and the bandwidth
        constraint of the reward/state space is taken from the request.
        """
        reward = RewardConfig(
            fps_target=request.target_fps,
            bandwidth_mbps=request.bandwidth_mbps,
            power_cap_w=power_cap_w,
        )
        state_space = StateSpace(
            fps_target=request.target_fps,
            bitrate_edges_mbps=(request.bandwidth_mbps / 2.0, request.bandwidth_mbps),
            power_cap_w=power_cap_w,
        )
        return cls(
            thread_actions=default_thread_actions(request.resolution_class),
            reward=reward,
            state_space=state_space,
            seed=seed,
            record_history=record_history,
        )
