"""Agent activation sequence (paper Sec. III-B-d and Fig. 3).

Each agent acts periodically with an offset: ``AGqp`` every 24 frames
(offset 0), ``AGthread`` every 12 frames (offset 1), and ``AGdvfs`` every 6
frames (offset 2).  Frames where no agent acts are the "NULL" slots of
Fig. 3.  The schedule also defines, for Algorithm 1, the *chain* of agents
that follow a given agent before any agent repeats — e.g. right after
``AGqp`` acts, the chain is ``[AGthread, AGdvfs]``; after ``AGthread`` it is
``[AGdvfs]``; after ``AGdvfs`` it is empty (the next actor is ``AGdvfs``
itself, i.e. NULL in the paper's terms).
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional

from repro.constants import (
    DVFS_AGENT_OFFSET,
    DVFS_AGENT_PERIOD,
    QP_AGENT_OFFSET,
    QP_AGENT_PERIOD,
    THREAD_AGENT_OFFSET,
    THREAD_AGENT_PERIOD,
)
from repro.errors import SchedulingError

__all__ = ["AgentSlot", "AgentSchedule"]


@dataclasses.dataclass(frozen=True)
class AgentSlot:
    """Periodic activation pattern of one agent.

    Attributes
    ----------
    name:
        Agent name (must match the agent registered with the coordinator).
    period:
        The agent acts every ``period`` frames.
    offset:
        Frame offset of the agent's first activation.
    """

    name: str
    period: int
    offset: int = 0

    def __post_init__(self) -> None:
        if self.period < 1:
            raise SchedulingError(f"period must be >= 1, got {self.period}")
        if not 0 <= self.offset < self.period:
            raise SchedulingError(
                f"offset must be in [0, period), got offset={self.offset} period={self.period}"
            )

    def acts_at(self, frame_index: int) -> bool:
        """Whether this agent takes an action right before ``frame_index``."""
        if frame_index < 0:
            raise SchedulingError(f"frame_index must be >= 0, got {frame_index}")
        return frame_index % self.period == self.offset


class AgentSchedule:
    """The joint activation schedule of all agents.

    Parameters
    ----------
    slots:
        One :class:`AgentSlot` per agent.  Two agents must never be scheduled
        on the same frame (the paper's offsets guarantee this); overlapping
        slots raise :class:`~repro.errors.SchedulingError` at construction
        time, checked over one hyper-period.
    """

    def __init__(self, slots: Iterable[AgentSlot]) -> None:
        slots = list(slots)
        if not slots:
            raise SchedulingError("an agent schedule needs at least one slot")
        names = [slot.name for slot in slots]
        if len(set(names)) != len(names):
            raise SchedulingError(f"duplicate agent names in schedule: {names}")
        self._slots = tuple(slots)

        hyper_period = 1
        for slot in slots:
            hyper_period = _lcm(hyper_period, slot.period)
        self.hyper_period = hyper_period
        for frame in range(hyper_period):
            active = [slot.name for slot in slots if slot.acts_at(frame)]
            if len(active) > 1:
                raise SchedulingError(
                    f"agents {active} are scheduled on the same frame ({frame})"
                )

    @classmethod
    def mamut_default(
        cls,
        qp_name: str = "qp",
        thread_name: str = "threads",
        dvfs_name: str = "dvfs",
    ) -> "AgentSchedule":
        """The paper's schedule: QP/24+0, threads/12+1, DVFS/6+2."""
        return cls(
            [
                AgentSlot(qp_name, QP_AGENT_PERIOD, QP_AGENT_OFFSET),
                AgentSlot(thread_name, THREAD_AGENT_PERIOD, THREAD_AGENT_OFFSET),
                AgentSlot(dvfs_name, DVFS_AGENT_PERIOD, DVFS_AGENT_OFFSET),
            ]
        )

    # -- queries ------------------------------------------------------------------

    @property
    def slots(self) -> tuple[AgentSlot, ...]:
        """The schedule's slots."""
        return self._slots

    @property
    def agent_names(self) -> tuple[str, ...]:
        """Names of all scheduled agents."""
        return tuple(slot.name for slot in self._slots)

    def agent_at(self, frame_index: int) -> Optional[str]:
        """Name of the agent acting right before ``frame_index`` (None = NULL slot)."""
        for slot in self._slots:
            if slot.acts_at(frame_index):
                return slot.name
        return None

    def next_activation(self, frame_index: int) -> tuple[str, int]:
        """The next (agent, frame) activation strictly after ``frame_index``."""
        if frame_index < 0:
            raise SchedulingError(f"frame_index must be >= 0, got {frame_index}")
        for frame in range(frame_index + 1, frame_index + 1 + self.hyper_period):
            agent = self.agent_at(frame)
            if agent is not None:
                return agent, frame
        raise SchedulingError("schedule produced no activation within a hyper-period")

    def chain_after(self, frame_index: int) -> list[str]:
        """Agents that act after the activation at ``frame_index``, in order,
        keeping only the first occurrence of each agent and stopping as soon
        as an already-seen agent (including the one acting at ``frame_index``)
        comes up again.

        This is the agent chain Algorithm 1 walks when computing expected
        Q-values.  With the paper's schedule this yields
        ``["threads", "dvfs"]`` after a QP activation, ``["dvfs"]`` after a
        threads activation, and ``[]`` after a DVFS activation.
        """
        current = self.agent_at(frame_index)
        if current is None:
            raise SchedulingError(f"no agent acts at frame {frame_index}")
        seen = {current}
        chain: list[str] = []
        frame = frame_index
        for _ in range(self.hyper_period):
            name, frame = self.next_activation(frame)
            if name in seen:
                break
            chain.append(name)
            seen.add(name)
        return chain

    def activations_in(self, start_frame: int, end_frame: int) -> list[tuple[int, str]]:
        """All (frame, agent) activations in ``[start_frame, end_frame)``."""
        if end_frame < start_frame:
            raise SchedulingError("end_frame must be >= start_frame")
        result = []
        for frame in range(start_frame, end_frame):
            agent = self.agent_at(frame)
            if agent is not None:
                result.append((frame, agent))
        return result


def _lcm(a: int, b: int) -> int:
    from math import gcd

    return a * b // gcd(a, b)
