"""MAMUT: the multi-agent Q-learning controller (paper Sec. III-IV).

The controller owns three :class:`~repro.core.agent.QLearningAgent` instances
— QP, threads and DVFS — activated according to the schedule of Fig. 3.  Its
per-frame operation is:

1. accumulate the observation of every frame since the last activation;
2. when an agent is scheduled, average those observations (this covers the
   NULL slots of Fig. 3), discretise them into the next state, compute the
   reward, and apply the pending Q update of the *previously* acting agent;
3. let the scheduled agent pick its action according to its learning phase
   for the current state: random (exploration), own-greedy
   (exploration-exploitation), or the chained expected-Q policy of
   Algorithm 1 (exploitation, falling back to own-greedy when the following
   agents are not in exploitation yet);
4. fold the chosen action into the running (QP, threads, frequency) decision.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.agent import QLearningAgent
from repro.core.config import MamutConfig
from repro.core.controller import Controller, Decision
from repro.core.exploitation import expected_q_action
from repro.core.observation import Observation
from repro.core.phases import Phase
from repro.core.rewards import RewardFunction
from repro.core.states import SystemState
from repro.errors import LearningError
from repro.platform.dvfs import DvfsPolicy

__all__ = ["AgentActivation", "MamutController"]

#: Names of the three agents, also used by the default schedule.
QP_AGENT = "qp"
THREAD_AGENT = "threads"
DVFS_AGENT = "dvfs"


@dataclasses.dataclass(frozen=True)
class AgentActivation:
    """One recorded agent activation (kept when ``record_history`` is on).

    Attributes
    ----------
    frame_index:
        Frame right before which the agent acted.
    agent:
        Name of the acting agent.
    state:
        Discrete state the agent acted in.
    action_index:
        Index of the chosen action within the agent's action set.
    action_value:
        The actual value applied (QP, thread count, or frequency).
    phase:
        Learning phase of the agent for that state.
    reward:
        Reward used to close the *previous* pending update (``None`` for the
        first activation).
    """

    frame_index: int
    agent: str
    state: SystemState
    action_index: int
    action_value: object
    phase: Phase
    reward: Optional[float]


@dataclasses.dataclass
class _PendingUpdate:
    """Bookkeeping for an action whose consequences are not yet credited."""

    agent_name: str
    state: SystemState
    action_index: int


class MamutController(Controller):
    """Multi-agent run-time manager for one transcoding session.

    Parameters
    ----------
    config:
        Action sets, reward shaping, state space, learning constants and the
        activation schedule.  Use :meth:`MamutConfig.for_request` to derive a
        configuration from a :class:`~repro.video.request.TranscodingRequest`.
    """

    dvfs_policy = DvfsPolicy.PER_CORE

    def __init__(self, config: MamutConfig | None = None) -> None:
        self.config = config if config is not None else MamutConfig()
        self.state_space = self.config.state_space
        self.reward_function = RewardFunction(self.config.reward)
        self.schedule = self.config.schedule

        self.agents: dict[str, QLearningAgent] = {
            QP_AGENT: QLearningAgent(
                QP_AGENT,
                self.config.qp_actions,
                gamma=self.config.gamma,
                learning_rate_params=self.config.learning_rate,
                seed=self.config.seed,
                exploration_epsilon=self.config.exploration_epsilon,
                state_space=self.state_space,
            ),
            THREAD_AGENT: QLearningAgent(
                THREAD_AGENT,
                self.config.thread_actions,
                gamma=self.config.gamma,
                learning_rate_params=self.config.learning_rate,
                seed=self.config.seed + 1,
                exploration_epsilon=self.config.exploration_epsilon,
                state_space=self.state_space,
            ),
            DVFS_AGENT: QLearningAgent(
                DVFS_AGENT,
                self.config.dvfs_actions,
                gamma=self.config.gamma,
                learning_rate_params=self.config.learning_rate,
                seed=self.config.seed + 2,
                exploration_epsilon=self.config.exploration_epsilon,
                state_space=self.state_space,
            ),
        }
        for name in self.schedule.agent_names:
            if name not in self.agents:
                raise LearningError(
                    f"schedule references unknown agent {name!r}; "
                    f"known agents: {sorted(self.agents)}"
                )

        self._current_indices: dict[str, int] = {
            QP_AGENT: self.config.qp_actions.index_of(self.config.initial_qp),
            THREAD_AGENT: self.config.thread_actions.index_of(self.config.initial_threads),
            DVFS_AGENT: self.config.dvfs_actions.index_of(
                self.config.initial_frequency_ghz
            ),
        }
        self._pending: Optional[_PendingUpdate] = None
        # The observation window since the last activation, kept as running
        # component sums (left-to-right accumulation — the same IEEE order as
        # summing a buffered window at activation time, so averages are
        # bitwise unchanged).  The batch engine's MAMUT driver mirrors these
        # five numbers in fleet-wide arrays and syncs them back through
        # :meth:`observation_window`/:meth:`set_observation_window`.
        self._window_fps = 0.0
        self._window_psnr = 0.0
        self._window_bitrate = 0.0
        self._window_power = 0.0
        self._window_count = 0
        self.history: list[AgentActivation] = []
        # chain_after(frame) only depends on frame % hyper_period; exploitation
        # activations hit it every time, so memoise per congruence class.
        self._chain_cache: dict[int, list[str]] = {}

    # -- Controller interface ----------------------------------------------------------

    @property
    def name(self) -> str:
        return "MAMUT"

    def reset(self) -> None:
        """Clear per-video transient state; learned knowledge is kept."""
        self._pending = None
        self._clear_window()

    def decide(self, frame_index: int, observation: Optional[Observation]) -> Decision:
        if observation is not None:
            self._window_fps += observation.fps
            self._window_psnr += observation.psnr_db
            self._window_bitrate += observation.bitrate_mbps
            self._window_power += observation.power_w
            self._window_count += 1

        agent_name = self.schedule.agent_at(frame_index)
        if agent_name is not None and self._window_count:
            self._activate(agent_name, frame_index)

        return self.current_decision()

    # -- observation window ------------------------------------------------------------

    def _clear_window(self) -> None:
        self._window_fps = 0.0
        self._window_psnr = 0.0
        self._window_bitrate = 0.0
        self._window_power = 0.0
        self._window_count = 0

    def observation_window(self) -> tuple[float, float, float, float, int]:
        """The running (fps, psnr, bitrate, power) sums and count of the window."""
        return (
            self._window_fps,
            self._window_psnr,
            self._window_bitrate,
            self._window_power,
            self._window_count,
        )

    def set_observation_window(
        self, fps: float, psnr_db: float, bitrate_mbps: float, power_w: float, count: int
    ) -> None:
        """Overwrite the window sums (the batch driver syncs its mirror here)."""
        self._window_fps = fps
        self._window_psnr = psnr_db
        self._window_bitrate = bitrate_mbps
        self._window_power = power_w
        self._window_count = count

    # -- decision assembly ----------------------------------------------------------------

    def current_decision(self) -> Decision:
        """The (QP, threads, frequency) currently applied to the session."""
        return Decision(
            qp=self.config.qp_actions[self._current_indices[QP_AGENT]],
            threads=self.config.thread_actions[self._current_indices[THREAD_AGENT]],
            frequency_ghz=self.config.dvfs_actions[self._current_indices[DVFS_AGENT]],
        )

    # -- learning machinery -----------------------------------------------------------------

    def _peer_min_counts(self, agent_name: str) -> list[int]:
        """``min_a Num_j(a)`` of every agent other than ``agent_name`` (Eq. 3)."""
        return [
            agent.min_action_count()
            for name, agent in self.agents.items()
            if name != agent_name
        ]

    def _activate(self, agent_name: str, frame_index: int) -> None:
        """Average the window, discretise, and let ``agent_name`` act."""
        n = self._window_count
        averaged = Observation(
            fps=self._window_fps / n,
            psnr_db=self._window_psnr / n,
            bitrate_mbps=self._window_bitrate / n,
            power_w=self._window_power / n,
        )
        current_state = self.state_space.discretize(averaged)
        reward_value = (
            self.reward_function.total(averaged) if self._pending is not None else None
        )
        self._clear_window()
        self.apply_external_activation(
            agent_name, frame_index, current_state, reward_value
        )

    def apply_external_activation(
        self,
        agent_name: str,
        frame_index: int,
        current_state: SystemState,
        reward_value: Optional[float],
    ) -> None:
        """Run one activation whose observation window was averaged externally.

        This is :meth:`_activate` with the averaging, discretisation and
        reward evaluation hoisted out: the batch stepping engine
        (:mod:`repro.cluster.batch`) keeps each session's observation window
        in fleet-wide struct-of-arrays buffers and computes ``current_state``
        (via :meth:`~repro.core.states.StateSpace.discretize_batch`) and
        ``reward_value`` (via
        :meth:`~repro.core.rewards.RewardFunction.total_batch` in exact
        mode) for every activating session in one vectorized shot, then
        calls this per session — in the session's own order, so exploration
        RNG draws, Q updates and history stay identical to the scalar path.
        ``reward_value`` is ignored when no update is pending (the caller
        may compute it unconditionally).
        """
        reward: Optional[float] = None

        if self._pending is not None:
            reward = reward_value
            pending_agent = self.agents[self._pending.agent_name]
            pending_agent.update(
                self._pending.state,
                self._pending.action_index,
                reward,
                current_state,
                self._peer_min_counts(self._pending.agent_name),
            )

        agent = self.agents[agent_name]
        phase = agent.phase(current_state, self._peer_min_counts(agent_name))
        action_index = self._select_action(agent_name, agent, current_state, phase, frame_index)

        self._current_indices[agent_name] = action_index
        self._pending = _PendingUpdate(
            agent_name=agent_name, state=current_state, action_index=action_index
        )

        if self.config.record_history:
            self.history.append(
                AgentActivation(
                    frame_index=frame_index,
                    agent=agent_name,
                    state=current_state,
                    action_index=action_index,
                    action_value=agent.actions[action_index],
                    phase=phase,
                    reward=reward,
                )
            )

    def _select_action(
        self,
        agent_name: str,
        agent: QLearningAgent,
        state: SystemState,
        phase: Phase,
        frame_index: int,
    ) -> int:
        """Pick an action for the scheduled agent according to its phase."""
        current = self._current_indices[agent_name]
        if phase is Phase.EXPLORATION:
            return agent.select_exploration_action(state, current=current)
        if phase is Phase.EXPLORATION_EXPLOITATION:
            return agent.select_greedy_action(state, current=current)

        # Exploitation: use Algorithm 1 over the chain of following agents,
        # but only when they have all reached exploitation for this state
        # (Sec. IV-C); otherwise fall back to the agent's own Q-table.
        chain_key = frame_index % self.schedule.hyper_period
        chain_names = self._chain_cache.get(chain_key)
        if chain_names is None:
            chain_names = self.schedule.chain_after(frame_index)
            self._chain_cache[chain_key] = chain_names
        chain = [self.agents[name] for name in chain_names]
        peers_ready = all(
            peer.phase(state, self._peer_min_counts(peer.name)) is Phase.EXPLOITATION
            for peer in chain
        )
        if not peers_ready:
            return agent.select_greedy_action(state, current=current)
        return expected_q_action(agent, state, chain, current=current)

    # -- diagnostics ------------------------------------------------------------------------------

    def phase_summary(self, state: SystemState) -> dict[str, Phase]:
        """Learning phase of every agent for a given state."""
        return {
            name: agent.phase(state, self._peer_min_counts(name))
            for name, agent in self.agents.items()
        }

    def summary(self) -> dict[str, dict]:
        """Per-agent diagnostic snapshot (visited states, Q entries, counts)."""
        return {name: agent.summary() for name, agent in self.agents.items()}
