"""State space: discretisation of the observations (paper Sec. III-C).

The continuous observations are binned into a finite state space:

* PSNR: ``<=30, <=35, <=40, <=45, <=50, >50`` dB;
* power: below / at-or-above the server power cap;
* bitrate: ``<3``, ``3..6``, ``>6`` Mb/s (typical 3G bandwidth bands);
* FPS: ``<24, <26, <28, <30, >=30`` with a 24-FPS target.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Iterator

import numpy as np

from repro.constants import (
    BITRATE_STATE_BOUNDS_MBPS,
    DEFAULT_POWER_CAP_W,
    TARGET_FPS,
)
from repro.core.observation import Observation
from repro.errors import ConfigurationError

__all__ = ["SystemState", "StateSpace"]


@dataclasses.dataclass(frozen=True, order=True)
class SystemState:
    """A discretised environment state.

    Each field is a bin index; the meaning of each index is defined by the
    :class:`StateSpace` that produced the state.
    """

    fps_bin: int
    psnr_bin: int
    bitrate_bin: int
    power_bin: int

    def as_tuple(self) -> tuple[int, int, int, int]:
        """The state as a plain tuple (useful as a dictionary key)."""
        return (self.fps_bin, self.psnr_bin, self.bitrate_bin, self.power_bin)


class StateSpace:
    """Maps raw :class:`~repro.core.observation.Observation` to discrete states.

    Parameters
    ----------
    fps_target:
        Real-time throughput target; FPS bins are anchored on it.
    fps_margins:
        Upper edges of the FPS bins *above* the target.  The defaults
        reproduce the paper's ``<24, <26, <28, <30, >=30`` split.
    psnr_edges:
        Upper edges of the PSNR bins; one extra bin covers values above the
        last edge.
    bitrate_edges_mbps:
        Upper edges of the bitrate bins (paper: 3 and 6 Mb/s).
    power_cap_w:
        Server power cap; the power state is binary (below / at-or-above).
    """

    def __init__(
        self,
        fps_target: float = TARGET_FPS,
        fps_margins: tuple[float, ...] = (2.0, 4.0, 6.0),
        psnr_edges: tuple[float, ...] = (30.0, 35.0, 40.0, 45.0, 50.0),
        bitrate_edges_mbps: tuple[float, ...] = BITRATE_STATE_BOUNDS_MBPS,
        power_cap_w: float = DEFAULT_POWER_CAP_W,
    ) -> None:
        if fps_target <= 0:
            raise ConfigurationError(f"fps_target must be positive, got {fps_target}")
        if power_cap_w <= 0:
            raise ConfigurationError(f"power_cap_w must be positive, got {power_cap_w}")
        if list(fps_margins) != sorted(fps_margins) or any(m <= 0 for m in fps_margins):
            raise ConfigurationError("fps_margins must be positive and ascending")
        if list(psnr_edges) != sorted(psnr_edges):
            raise ConfigurationError("psnr_edges must be ascending")
        if list(bitrate_edges_mbps) != sorted(bitrate_edges_mbps):
            raise ConfigurationError("bitrate_edges_mbps must be ascending")

        self.fps_target = float(fps_target)
        self.fps_edges = tuple(fps_target + m for m in fps_margins)
        self.psnr_edges = tuple(float(e) for e in psnr_edges)
        self.bitrate_edges_mbps = tuple(float(e) for e in bitrate_edges_mbps)
        self.power_cap_w = float(power_cap_w)
        self._fps_edge_array = np.array(self.fps_edges)
        self._psnr_edge_array = np.array(self.psnr_edges)
        self._bitrate_edge_array = np.array(self.bitrate_edges_mbps)

    # -- bin counts -------------------------------------------------------------

    @property
    def num_fps_bins(self) -> int:
        """Below-target bin + one bin per margin + at/above the last margin."""
        return len(self.fps_edges) + 2

    @property
    def num_psnr_bins(self) -> int:
        """One bin per edge plus the above-last-edge bin."""
        return len(self.psnr_edges) + 1

    @property
    def num_bitrate_bins(self) -> int:
        """One bin per edge plus the above-last-edge bin."""
        return len(self.bitrate_edges_mbps) + 1

    @property
    def num_power_bins(self) -> int:
        """Below-cap and at-or-above-cap."""
        return 2

    @property
    def size(self) -> int:
        """Total number of distinct states."""
        return (
            self.num_fps_bins
            * self.num_psnr_bins
            * self.num_bitrate_bins
            * self.num_power_bins
        )

    # -- discretisation ------------------------------------------------------------

    def fps_bin(self, fps: float) -> int:
        """Bin index of an FPS value (0 = below target)."""
        if fps < self.fps_target:
            return 0
        for i, edge in enumerate(self.fps_edges):
            if fps < edge:
                return i + 1
        return len(self.fps_edges) + 1

    def psnr_bin(self, psnr_db: float) -> int:
        """Bin index of a PSNR value (0 = lowest band)."""
        for i, edge in enumerate(self.psnr_edges):
            if psnr_db <= edge:
                return i
        return len(self.psnr_edges)

    def bitrate_bin(self, bitrate_mbps: float) -> int:
        """Bin index of a bitrate value (0 = lowest band)."""
        for i, edge in enumerate(self.bitrate_edges_mbps):
            if bitrate_mbps <= edge:
                return i
        return len(self.bitrate_edges_mbps)

    def power_bin(self, power_w: float) -> int:
        """0 when the power is below the cap, 1 otherwise."""
        return 0 if power_w < self.power_cap_w else 1

    def discretize(self, observation: Observation) -> SystemState:
        """Map an observation to its discrete state."""
        return SystemState(
            fps_bin=self.fps_bin(observation.fps),
            psnr_bin=self.psnr_bin(observation.psnr_db),
            bitrate_bin=self.bitrate_bin(observation.bitrate_mbps),
            power_bin=self.power_bin(observation.power_w),
        )

    # -- dense integer encoding ------------------------------------------------------

    def state_index(self, state: SystemState) -> int:
        """Dense index of a state in ``[0, size)`` (mixed-radix encoding).

        The encoding orders states exactly like :meth:`states` iterates them
        (fps-major, power-minor), so ``state_index`` and :meth:`index_to_state`
        are inverses.  Array-backed Q-tables use it to address rows.
        """
        if (
            not 0 <= state.fps_bin < self.num_fps_bins
            or not 0 <= state.psnr_bin < self.num_psnr_bins
            or not 0 <= state.bitrate_bin < self.num_bitrate_bins
            or not 0 <= state.power_bin < self.num_power_bins
        ):
            raise ConfigurationError(
                f"state {state!r} has bins outside this space's ranges"
            )
        return (
            (state.fps_bin * self.num_psnr_bins + state.psnr_bin)
            * self.num_bitrate_bins
            + state.bitrate_bin
        ) * self.num_power_bins + state.power_bin

    def index_to_state(self, index: int) -> SystemState:
        """Inverse of :meth:`state_index`."""
        if not 0 <= index < self.size:
            raise ConfigurationError(
                f"state index {index} out of range [0, {self.size})"
            )
        index, power_bin = divmod(index, self.num_power_bins)
        index, bitrate_bin = divmod(index, self.num_bitrate_bins)
        fps_bin, psnr_bin = divmod(index, self.num_psnr_bins)
        return SystemState(fps_bin, psnr_bin, bitrate_bin, power_bin)

    def state_index_batch(self, bins: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`state_index` over an ``(n, 4)`` bin array.

        ``bins`` is the output of :meth:`discretize_batch` (columns: fps,
        psnr, bitrate, power); returns the ``(n,)`` dense index array.
        """
        bins = np.asarray(bins, dtype=np.int64)
        return (
            (bins[..., 0] * self.num_psnr_bins + bins[..., 1])
            * self.num_bitrate_bins
            + bins[..., 2]
        ) * self.num_power_bins + bins[..., 3]

    def discretize_batch(
        self,
        fps: np.ndarray,
        psnr_db: np.ndarray,
        bitrate_mbps: np.ndarray,
        power_w: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`discretize` over parallel observation arrays.

        Returns an ``(n, 4)`` int array whose columns are the ``fps``,
        ``psnr``, ``bitrate`` and ``power`` bin indices;
        ``SystemState(*row)`` reconstructs the discrete state of row ``i``.
        Used by fleet-level tooling that bins thousands of observations per
        step (the per-agent Q lookups stay per-session).
        """
        fps = np.asarray(fps)
        fps_bins = np.where(
            fps < self.fps_target,
            0,
            1 + np.searchsorted(self._fps_edge_array, fps, side="right"),
        )
        psnr_bins = np.searchsorted(self._psnr_edge_array, psnr_db, side="left")
        bitrate_bins = np.searchsorted(
            self._bitrate_edge_array, bitrate_mbps, side="left"
        )
        power_bins = (np.asarray(power_w) >= self.power_cap_w).astype(np.int64)
        return np.stack(
            [
                np.asarray(fps_bins, dtype=np.int64),
                psnr_bins.astype(np.int64),
                bitrate_bins.astype(np.int64),
                power_bins,
            ],
            axis=-1,
        )

    # -- enumeration ------------------------------------------------------------

    def states(self) -> Iterator[SystemState]:
        """Iterate over every state in the space (useful for tests/analysis)."""
        for fps_bin, psnr_bin, bitrate_bin, power_bin in itertools.product(
            range(self.num_fps_bins),
            range(self.num_psnr_bins),
            range(self.num_bitrate_bins),
            range(self.num_power_bins),
        ):
            yield SystemState(fps_bin, psnr_bin, bitrate_bin, power_bin)
