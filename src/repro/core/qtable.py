"""Tabular Q-value storage.

States are :class:`~repro.core.states.SystemState` instances and actions are
integer indices into the owning agent's
:class:`~repro.core.actions.ActionSet`.  Unvisited entries default to zero.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, Iterator, Tuple

from repro.core.states import SystemState
from repro.errors import LearningError

__all__ = ["QTable"]


class QTable:
    """A sparse table of Q-values indexed by (state, action-index).

    Parameters
    ----------
    num_actions:
        Size of the owning agent's action set; action indices must fall in
        ``[0, num_actions)``.
    initial_value:
        Q-value reported for unvisited (state, action) pairs.
    """

    def __init__(self, num_actions: int, initial_value: float = 0.0) -> None:
        if num_actions < 1:
            raise LearningError(f"num_actions must be >= 1, got {num_actions}")
        self.num_actions = int(num_actions)
        self.initial_value = float(initial_value)
        self._values: Dict[Tuple[SystemState, int], float] = defaultdict(
            lambda: self.initial_value
        )

    # -- access --------------------------------------------------------------------

    def get(self, state: SystemState, action: int) -> float:
        """Q-value of a (state, action) pair (``initial_value`` if unvisited)."""
        self._check_action(action)
        return self._values.get((state, action), self.initial_value)

    def set(self, state: SystemState, action: int, value: float) -> None:
        """Overwrite the Q-value of a (state, action) pair."""
        self._check_action(action)
        self._values[(state, action)] = float(value)

    def update_towards(
        self, state: SystemState, action: int, target: float, alpha: float
    ) -> float:
        """Move ``Q(state, action)`` towards ``target`` by step ``alpha``.

        Returns the new value.  This is the inner step of the Q-learning
        update ``Q += alpha * (target - Q)``.
        """
        if not 0.0 <= alpha <= 1.0:
            raise LearningError(f"alpha must be in [0, 1], got {alpha}")
        current = self.get(state, action)
        new_value = current + alpha * (target - current)
        self.set(state, action, new_value)
        return new_value

    # -- aggregates ------------------------------------------------------------------

    def max_value(self, state: SystemState) -> float:
        """Highest Q-value over all actions in ``state``."""
        return max(self.get(state, a) for a in range(self.num_actions))

    def best_action(self, state: SystemState) -> int:
        """Index of the greedy action in ``state`` (ties resolved to lowest index)."""
        best = 0
        best_value = self.get(state, 0)
        for action in range(1, self.num_actions):
            value = self.get(state, action)
            if value > best_value:
                best, best_value = action, value
        return best

    def action_values(self, state: SystemState) -> list[float]:
        """Q-values of every action in ``state``, in action-index order."""
        return [self.get(state, a) for a in range(self.num_actions)]

    def visited_states(self) -> set[SystemState]:
        """States with at least one explicitly stored entry."""
        return {state for state, _ in self._values}

    def __len__(self) -> int:
        """Number of explicitly stored (state, action) entries."""
        return len(self._values)

    def items(self) -> Iterator[tuple[tuple[SystemState, int], float]]:
        """Iterate over explicitly stored ((state, action), value) pairs."""
        return iter(self._values.items())

    # -- persistence helpers -----------------------------------------------------------

    def to_dict(self) -> dict[tuple[tuple[int, int, int, int], int], float]:
        """Plain-dict snapshot keyed by (state tuple, action index)."""
        return {
            (state.as_tuple(), action): value
            for (state, action), value in self._values.items()
        }

    def load(self, entries: Iterable[tuple[tuple[SystemState, int], float]]) -> None:
        """Bulk-load entries (used by tests and checkpointing)."""
        for (state, action), value in entries:
            self.set(state, action, value)

    def _check_action(self, action: int) -> None:
        if not 0 <= action < self.num_actions:
            raise LearningError(
                f"action index {action} out of range [0, {self.num_actions})"
            )
