"""Tabular Q-value storage.

States are :class:`~repro.core.states.SystemState` instances and actions are
integer indices into the owning agent's
:class:`~repro.core.actions.ActionSet`.  Unvisited entries default to zero.

Two storage modes share the same API:

* **dict mode** (default) — a sparse ``{(state, action): value}`` mapping,
  fine for a handful of sessions and for exotic states outside any space;
* **array mode** — constructed with a ``state_space``, values live in a
  lazily grown ``(num_states, num_actions)`` float64 ndarray addressed by
  :meth:`~repro.core.states.StateSpace.state_index`.  Lookups and the
  Q-learning inner step become O(1) array reads/writes, and the batched
  entry points (:meth:`QTable.max_value_batch`,
  :meth:`QTable.update_towards_batch`) let fleet-level tooling touch many
  states per call.  The persistence format is unchanged: :meth:`items`,
  :meth:`to_dict` and :meth:`load` speak (state, action) pairs in both
  modes, and only explicitly stored entries are exported.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, Optional, Tuple

import numpy as np

from repro.core.states import SystemState
from repro.errors import LearningError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.states import StateSpace

__all__ = ["QTable"]


class QTable:
    """A table of Q-values indexed by (state, action-index).

    Parameters
    ----------
    num_actions:
        Size of the owning agent's action set; action indices must fall in
        ``[0, num_actions)``.
    initial_value:
        Q-value reported for unvisited (state, action) pairs.
    state_space:
        When given, values are stored in a dense ndarray addressed through
        the space's :meth:`~repro.core.states.StateSpace.state_index`
        encoding (array mode); states must then belong to the space.  When
        omitted the table is a sparse dict (the historical behaviour).
    """

    def __init__(
        self,
        num_actions: int,
        initial_value: float = 0.0,
        state_space: Optional["StateSpace"] = None,
    ) -> None:
        if num_actions < 1:
            raise LearningError(f"num_actions must be >= 1, got {num_actions}")
        self.num_actions = int(num_actions)
        self.initial_value = float(initial_value)
        self.state_space = state_space
        if state_space is not None:
            self._num_states = state_space.size
            self._array = np.empty((0, self.num_actions))
            self._stored = np.empty((0, self.num_actions), dtype=bool)
            self._values = None
        else:
            self._num_states = 0
            self._array = None
            self._stored = None
            self._values: Optional[Dict[Tuple[SystemState, int], float]] = {}

    @property
    def dense(self) -> bool:
        """True when this table stores values in the dense array mode."""
        return self._array is not None

    # -- array-mode internals --------------------------------------------------------

    def _ensure_rows(self, index: int) -> None:
        """Grow the dense array to cover ``index`` (geometric, capped)."""
        rows = self._array.shape[0]
        if index < rows:
            return
        new_rows = min(self._num_states, max(index + 1, 2 * rows, 16))
        if index >= new_rows:
            raise LearningError(
                f"state index {index} out of range [0, {self._num_states})"
            )
        grown = np.full((new_rows, self.num_actions), self.initial_value)
        grown[:rows] = self._array
        stored = np.zeros((new_rows, self.num_actions), dtype=bool)
        stored[:rows] = self._stored
        self._array = grown
        self._stored = stored

    def _row_index(self, state: SystemState) -> int:
        return self.state_space.state_index(state)

    # -- access --------------------------------------------------------------------

    def get(self, state: SystemState, action: int) -> float:
        """Q-value of a (state, action) pair (``initial_value`` if unvisited)."""
        self._check_action(action)
        if self.dense:
            index = self._row_index(state)
            if index < self._array.shape[0]:
                return float(self._array[index, action])
            return self.initial_value
        return self._values.get((state, action), self.initial_value)

    def set(self, state: SystemState, action: int, value: float) -> None:
        """Overwrite the Q-value of a (state, action) pair."""
        self._check_action(action)
        if self.dense:
            index = self._row_index(state)
            self._ensure_rows(index)
            self._array[index, action] = float(value)
            self._stored[index, action] = True
        else:
            self._values[(state, action)] = float(value)

    def update_towards(
        self, state: SystemState, action: int, target: float, alpha: float
    ) -> float:
        """Move ``Q(state, action)`` towards ``target`` by step ``alpha``.

        Returns the new value.  This is the inner step of the Q-learning
        update ``Q += alpha * (target - Q)``.
        """
        if not 0.0 <= alpha <= 1.0:
            raise LearningError(f"alpha must be in [0, 1], got {alpha}")
        if self.dense:
            # Fast path: resolve the row once for the read and the write.
            self._check_action(action)
            index = self._row_index(state)
            self._ensure_rows(index)
            current = float(self._array[index, action])
            new_value = current + alpha * (target - current)
            self._array[index, action] = new_value
            self._stored[index, action] = True
            return new_value
        current = self.get(state, action)
        new_value = current + alpha * (target - current)
        self.set(state, action, new_value)
        return new_value

    # -- aggregates ------------------------------------------------------------------

    def max_value(self, state: SystemState) -> float:
        """Highest Q-value over all actions in ``state``."""
        if self.dense:
            index = self._row_index(state)
            if index < self._array.shape[0]:
                return float(self._array[index].max())
            return self.initial_value
        return max(self.get(state, a) for a in range(self.num_actions))

    def best_action(self, state: SystemState) -> int:
        """Index of the greedy action in ``state`` (ties resolved to lowest index)."""
        if self.dense:
            index = self._row_index(state)
            if index < self._array.shape[0]:
                return int(self._array[index].argmax())
            return 0
        best = 0
        best_value = self.get(state, 0)
        for action in range(1, self.num_actions):
            value = self.get(state, action)
            if value > best_value:
                best, best_value = action, value
        return best

    def action_values(self, state: SystemState) -> list[float]:
        """Q-values of every action in ``state``, in action-index order."""
        if self.dense:
            index = self._row_index(state)
            if index < self._array.shape[0]:
                return [float(v) for v in self._array[index]]
            return [self.initial_value] * self.num_actions
        return [self.get(state, a) for a in range(self.num_actions)]

    def visited_states(self) -> set[SystemState]:
        """States with at least one explicitly stored entry."""
        if self.dense:
            rows = np.nonzero(self._stored.any(axis=1))[0]
            return {self.state_space.index_to_state(int(r)) for r in rows}
        return {state for state, _ in self._values}

    def __len__(self) -> int:
        """Number of explicitly stored (state, action) entries."""
        if self.dense:
            return int(self._stored.sum())
        return len(self._values)

    def items(self) -> Iterator[tuple[tuple[SystemState, int], float]]:
        """Iterate over explicitly stored ((state, action), value) pairs."""
        if self.dense:
            return (
                (
                    (self.state_space.index_to_state(int(r)), int(a)),
                    float(self._array[r, a]),
                )
                for r, a in zip(*np.nonzero(self._stored))
            )
        return iter(self._values.items())

    # -- batched entry points ----------------------------------------------------------

    def max_value_batch(self, state_indices: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`max_value` over an array of dense state indices.

        Array mode only.  Rows beyond the lazily grown storage report
        ``initial_value`` (they are all-default by construction).
        """
        self._require_dense()
        state_indices = np.asarray(state_indices, dtype=np.int64)
        if state_indices.size and int(state_indices.max()) >= self._array.shape[0]:
            self._ensure_rows(int(state_indices.max()))
        return self._array[state_indices].max(axis=1)

    def update_towards_batch(
        self,
        state_indices: np.ndarray,
        actions: np.ndarray,
        targets: np.ndarray,
        alphas: np.ndarray,
    ) -> np.ndarray:
        """Vectorized :meth:`update_towards` over parallel arrays.

        Array mode only.  ``state_indices`` must not contain duplicates
        within one call (later writes would read stale values); callers
        batching many sessions against one shared table must pre-merge.
        Returns the new values.
        """
        self._require_dense()
        state_indices = np.asarray(state_indices, dtype=np.int64)
        actions = np.asarray(actions, dtype=np.int64)
        alphas = np.asarray(alphas)
        if alphas.size and (alphas.min() < 0.0 or alphas.max() > 1.0):
            raise LearningError("alpha must be in [0, 1]")
        if actions.size and (
            actions.min() < 0 or actions.max() >= self.num_actions
        ):
            raise LearningError(
                f"action index out of range [0, {self.num_actions})"
            )
        if state_indices.size:
            self._ensure_rows(int(state_indices.max()))
        current = self._array[state_indices, actions]
        new_values = current + alphas * (np.asarray(targets) - current)
        self._array[state_indices, actions] = new_values
        self._stored[state_indices, actions] = True
        return new_values

    def _require_dense(self) -> None:
        if not self.dense:
            raise LearningError(
                "batched Q-table access needs the array mode "
                "(construct the QTable with a state_space)"
            )

    # -- persistence helpers -----------------------------------------------------------

    def to_dict(self) -> dict[tuple[tuple[int, int, int, int], int], float]:
        """Plain-dict snapshot keyed by (state tuple, action index)."""
        return {
            (state.as_tuple(), action): value
            for (state, action), value in self.items()
        }

    def load(self, entries: Iterable[tuple[tuple[SystemState, int], float]]) -> None:
        """Bulk-load entries (used by tests and checkpointing)."""
        for (state, action), value in entries:
            self.set(state, action, value)

    def _check_action(self, action: int) -> None:
        if not 0 <= action < self.num_actions:
            raise LearningError(
                f"action index {action} out of range [0, {self.num_actions})"
            )
