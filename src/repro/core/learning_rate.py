"""Learning-rate function of Eq. 3 (paper Sec. IV-B).

Each agent uses a per-(state, action) learning rate::

    alpha_i(s, a) = beta_i / Num(s, a)
                    + beta'_i / (1 + sum_{j != i} min_{a in A_j} Num_j(a))

The first term is the conventional visit-count decay; the second keeps the
learning rate high until *every other agent* has tried all of its actions at
least a few times, preventing one agent from declaring its exploration
finished while its peers' behaviour is still unpredictable.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.constants import (
    DEFAULT_ALPHA_TH1,
    DEFAULT_ALPHA_TH2,
    DEFAULT_BETA,
    DEFAULT_BETA_PRIME,
)
from repro.errors import ConfigurationError

__all__ = ["LearningRateParameters", "LearningRateFunction"]


@dataclasses.dataclass(frozen=True)
class LearningRateParameters:
    """Constants of the learning-rate function and phase thresholds.

    Attributes
    ----------
    beta:
        Weight of the own visit-count term (paper: 0.3).
    beta_prime:
        Weight of the peer-coverage term (paper: 0.2).
    alpha_th1:
        Threshold below which a state leaves pure exploration and enters the
        exploration-exploitation phase (paper: 0.1).
    alpha_th2:
        Threshold below which a state enters the exploitation phase
        (paper: 0.05).
    """

    beta: float = DEFAULT_BETA
    beta_prime: float = DEFAULT_BETA_PRIME
    alpha_th1: float = DEFAULT_ALPHA_TH1
    alpha_th2: float = DEFAULT_ALPHA_TH2

    def __post_init__(self) -> None:
        if self.beta <= 0 or self.beta_prime < 0:
            raise ConfigurationError("beta must be > 0 and beta_prime >= 0")
        if not 0 < self.alpha_th2 <= self.alpha_th1:
            raise ConfigurationError(
                "thresholds must satisfy 0 < alpha_th2 <= alpha_th1"
            )


class LearningRateFunction:
    """Evaluates Eq. 3 for one agent."""

    def __init__(self, params: LearningRateParameters | None = None) -> None:
        self.params = params if params is not None else LearningRateParameters()

    def alpha(self, own_visits: int, peer_min_action_counts: Sequence[int]) -> float:
        """Learning rate for a (state, action) pair.

        Parameters
        ----------
        own_visits:
            ``Num(s, a)`` — how many times this agent has taken this action in
            this state (0 means the pair has never been tried; the result is
            then clamped to 1.0, i.e. a full update on first visit).
        peer_min_action_counts:
            For every *other* agent ``j``, the value
            ``min_{a in A_j} Num_j(a)`` — the least-tried action count of that
            agent.  An empty sequence models a mono-agent setting (the second
            term of Eq. 3 vanishes only through its denominator staying at 1).
        """
        if own_visits < 0:
            raise ConfigurationError(f"own_visits must be >= 0, got {own_visits}")
        if any(c < 0 for c in peer_min_action_counts):
            raise ConfigurationError("peer action counts must be >= 0")
        p = self.params
        own_term = p.beta if own_visits == 0 else p.beta / own_visits
        peer_term = p.beta_prime / (1.0 + sum(peer_min_action_counts))
        return min(1.0, own_term + peer_term)

    # -- phase thresholds --------------------------------------------------------

    def below_exploration_threshold(self, alpha: float) -> bool:
        """True when a pair may leave pure exploration (alpha < alpha_th1)."""
        return alpha < self.params.alpha_th1

    def below_exploitation_threshold(self, alpha: float) -> bool:
        """True when a pair may enter exploitation (alpha < alpha_th2)."""
        return alpha < self.params.alpha_th2
