"""Q-learning agent: one design-space subset, one Q-table.

A :class:`QLearningAgent` owns an action subset (QP values, thread counts, or
frequencies), its Q-table, its empirical transition model, per-action and
per-(state, action) visit counters, and the learning-rate function of Eq. 3.
The multi-agent coordination (who acts when, chained exploitation, reward
distribution) lives in :mod:`repro.core.mamut`; the agent itself only knows
how to pick actions for a given phase and how to apply the Q update.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.constants import DEFAULT_GAMMA
from repro.core.actions import ActionSet
from repro.core.learning_rate import LearningRateFunction, LearningRateParameters
from repro.core.phases import Phase
from repro.core.qtable import QTable
from repro.core.states import StateSpace, SystemState
from repro.core.transitions import TransitionModel
from repro.errors import LearningError

__all__ = ["QLearningAgent"]


class QLearningAgent:
    """A single tabular Q-learning agent over one action subset.

    Parameters
    ----------
    name:
        Agent name (``"qp"``, ``"threads"``, ``"dvfs"``, or anything else for
        custom agents); used in schedules and diagnostics.
    actions:
        The agent's action subset.
    gamma:
        Discount factor of the Q update (paper: 0.6).
    learning_rate_params:
        Constants of Eq. 3 and the phase thresholds.
    seed:
        Seed of the agent's private random generator (exploration order).
    exploration_epsilon:
        Once every action of a state has been tried at least once, the
        exploration phase keeps picking the least-tried action only with this
        probability and otherwise acts greedily while continuing to update
        counts and Q-values.  This keeps exploration converging (the counts
        that drive Eq. 3 still grow) without the controller behaving as a
        uniform-random policy for hundreds of frames, which would contradict
        the run-time traces the paper reports (Fig. 5).  Set to 1.0 for pure
        least-tried exploration.
    state_space:
        When given, the agent's Q-table uses the dense array mode addressed
        by the space's integer state encoding (see
        :class:`~repro.core.qtable.QTable`); every state handed to the agent
        must then belong to the space.  Values are identical either way —
        the array mode just makes lookups and fleet-batched updates O(1).
    """

    def __init__(
        self,
        name: str,
        actions: ActionSet,
        gamma: float = DEFAULT_GAMMA,
        learning_rate_params: LearningRateParameters | None = None,
        seed: int = 0,
        exploration_epsilon: float = 0.25,
        state_space: StateSpace | None = None,
    ) -> None:
        if not 0.0 <= gamma < 1.0:
            raise LearningError(f"gamma must be in [0, 1), got {gamma}")
        if not 0.0 <= exploration_epsilon <= 1.0:
            raise LearningError(
                f"exploration_epsilon must be in [0, 1], got {exploration_epsilon}"
            )
        self.name = name
        self.actions = actions
        self.gamma = float(gamma)
        self.exploration_epsilon = float(exploration_epsilon)
        self.learning_rate = LearningRateFunction(learning_rate_params)
        self.q_table = QTable(num_actions=len(actions), state_space=state_space)
        self.transitions = TransitionModel(num_actions=len(actions))
        self._rng = np.random.default_rng(seed)

        #: Num(s, a): how often each (state, action) pair has been taken.
        self._state_action_counts: Dict[Tuple[SystemState, int], int] = defaultdict(int)
        #: Num(a): how often each action has been taken overall (any state).
        self._action_counts: Dict[int, int] = {a: 0 for a in actions.indices()}
        # Caches over the counters, so the per-activation hot path (Eq. 3 and
        # the phase test, which only need extremes of the counters) is O(1)
        # instead of O(actions) / O(peers * actions).  ``None`` marks the
        # running min as stale (recomputed lazily on the next read).
        self._min_action_count: int | None = 0
        #: max_a Num(s, a) per state — the visit count whose Eq. 3 learning
        #: rate is the *smallest* over the state's actions.
        self._state_max_counts: Dict[SystemState, int] = {}

    # -- counters ------------------------------------------------------------------

    def state_action_count(self, state: SystemState, action: int) -> int:
        """``Num(s, a)`` for this agent."""
        return self._state_action_counts.get((state, action), 0)

    def action_count(self, action: int) -> int:
        """``Num(a)``: total times this agent has taken the given action."""
        return self._action_counts[action]

    def min_action_count(self) -> int:
        """``min_a Num(a)`` — the least-tried action count of this agent.

        This is the quantity peers plug into the second term of Eq. 3.  The
        running minimum is cached and only recomputed after an update bumped
        a least-tried action (peers read it on every one of their
        activations, so the naive O(actions) min was a per-frame cost).
        """
        if self._min_action_count is None:
            self._min_action_count = min(self._action_counts.values())
        return self._min_action_count

    def max_state_count(self, state: SystemState) -> int:
        """``max_a Num(s, a)`` — the most-tried action count in ``state``."""
        return self._state_max_counts.get(state, 0)

    def known_states(self) -> set[SystemState]:
        """States in which this agent has taken at least one action."""
        return {state for state, _ in self._state_action_counts}

    # -- learning rate / phase --------------------------------------------------------

    def alpha(self, state: SystemState, action: int, peer_min_counts: Sequence[int]) -> float:
        """Learning rate (Eq. 3) of a (state, action) pair."""
        return self.learning_rate.alpha(
            self.state_action_count(state, action), peer_min_counts
        )

    def phase(self, state: SystemState, peer_min_counts: Sequence[int]) -> Phase:
        """Learning phase of this agent for ``state``.

        A state leaves pure exploration once the learning rate of a
        state-action pair in it drops below ``alpha_th1``, and enters
        exploitation once a pair drops below ``alpha_th2`` (Sec. IV-A/IV-C).
        Both conditions also require the peers' action coverage through the
        second term of Eq. 3: as long as another agent still has untried
        actions, the learning rate cannot fall below the thresholds.  A state
        never seen before is in EXPLORATION by construction; phases are
        re-evaluated on every activation, so a state can fall back to
        exploration when the peer statistics change.

        The smallest per-action learning rate is evaluated directly at the
        state's most-tried action count instead of recomputing Eq. 3 for
        every action: the own-visit term is non-increasing in ``Num(s, a)``
        and the peer term is the same for all actions, and IEEE addition,
        division and the ``min(1, .)`` clamp are monotone, so the alpha of
        the max-count action is bitwise the minimum of the per-action alphas
        (``tests/test_core_agent.py`` pins this against the brute force).
        """
        best = self.learning_rate.alpha(self.max_state_count(state), peer_min_counts)
        if self.learning_rate.below_exploitation_threshold(best):
            return Phase.EXPLOITATION
        if self.learning_rate.below_exploration_threshold(best):
            return Phase.EXPLORATION_EXPLOITATION
        return Phase.EXPLORATION

    # -- action selection ---------------------------------------------------------------

    def select_exploration_action(self, state: SystemState, current: int | None = None) -> int:
        """Exploration action for ``state``.

        With probability ``exploration_epsilon`` a random action is drawn,
        biased towards the least-tried actions of the state so that coverage
        keeps improving; otherwise the agent acts greedily on what it has
        learned so far (preferring the currently applied action on ties).
        Because unvisited Q-values default to 0 while constraint-violating
        states earn negative rewards, the greedy branch itself keeps probing
        alternative actions whenever the current operating point is poor, so
        the full subset still gets covered without the controller behaving as
        a uniform-random policy for long stretches (which would contradict
        the run-time traces of the paper's Fig. 5).
        """
        if self._rng.random() < self.exploration_epsilon:
            counts = [self.state_action_count(state, a) for a in self.actions.indices()]
            min_count = min(counts)
            candidates = [
                a for a, c in zip(self.actions.indices(), counts) if c == min_count
            ]
            return int(self._rng.choice(candidates))
        return self.select_greedy_action(state, current=current)

    def select_greedy_action(self, state: SystemState, current: int | None = None) -> int:
        """Greedy action with respect to this agent's own Q-table.

        Ties are resolved in favour of ``current`` (the action already
        applied) when it belongs to the argmax set — the controller should
        not jump to an arbitrary operating point when several actions look
        equally good, which is common before a state has been learned —
        and uniformly at random otherwise.
        """
        values = self.q_table.action_values(state)
        best_value = max(values)
        candidates = [a for a, v in enumerate(values) if v == best_value]
        if current is not None and current in candidates:
            return current
        return int(self._rng.choice(candidates))

    def select_action(self, state: SystemState, phase: Phase) -> int:
        """Select an action according to the given phase.

        EXPLOITATION selection normally goes through the chained expected-Q
        policy implemented by the coordinator (Algorithm 1); calling this
        method in that phase falls back to the agent's own greedy policy,
        which is also the paper's fallback when peers are not ready yet.
        """
        if phase is Phase.EXPLORATION:
            return self.select_exploration_action(state)
        return self.select_greedy_action(state)

    # -- learning ---------------------------------------------------------------------------

    def update(
        self,
        state: SystemState,
        action: int,
        reward: float,
        next_state: SystemState,
        peer_min_counts: Sequence[int],
    ) -> float:
        """Apply one Q-learning update and record the transition.

        Returns the learning rate used, which callers can log or test
        against.  The counters are incremented *before* computing the
        learning rate, so the very first update of a pair uses
        ``beta / 1 + ...`` exactly as Eq. 3 prescribes.
        """
        action = int(action)
        if not 0 <= action < len(self.actions):
            raise LearningError(
                f"action index {action} out of range [0, {len(self.actions)})"
            )

        pair_count = self._state_action_counts[(state, action)] + 1
        self._state_action_counts[(state, action)] = pair_count
        if pair_count > self._state_max_counts.get(state, 0):
            self._state_max_counts[state] = pair_count
        previous = self._action_counts[action]
        self._action_counts[action] = previous + 1
        if self._min_action_count is not None and previous == self._min_action_count:
            # A least-tried action was bumped; the min may have risen.
            self._min_action_count = None
        self.transitions.record(state, action, next_state)

        alpha = self.alpha(state, action, peer_min_counts)
        target = reward + self.gamma * self.q_table.max_value(next_state)
        self.q_table.update_towards(state, action, target, alpha)
        return alpha

    def rebuild_count_caches(self) -> None:
        """Recompute the counter caches from the raw counter dicts.

        Callers that write ``_action_counts`` / ``_state_action_counts``
        directly (persistence restore, tests poking internals) must call
        this afterwards, or :meth:`min_action_count` and :meth:`phase` would
        read stale cached extremes.
        """
        self._min_action_count = None
        self._state_max_counts = {}
        for (state, _), count in self._state_action_counts.items():
            if count > self._state_max_counts.get(state, 0):
                self._state_max_counts[state] = count

    # -- diagnostics ------------------------------------------------------------------------

    def summary(self) -> dict[str, float | int | str]:
        """Small diagnostic snapshot used by examples and reports."""
        return {
            "name": self.name,
            "actions": len(self.actions),
            "visited_states": len(self.known_states()),
            "q_entries": len(self.q_table),
            "min_action_count": self.min_action_count(),
        }
