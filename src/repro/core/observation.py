"""Observations: the raw quantities the agents see after each frame.

The environment exposes exactly the four quantities listed in the paper's
Fig. 1 and Sec. III-C: throughput (FPS), video quality (PSNR), output bitrate
and package power.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Sequence

from repro.errors import LearningError

__all__ = ["Observation", "average_observations"]


@dataclasses.dataclass(frozen=True)
class Observation:
    """Raw per-frame measurements observed by every agent.

    Attributes
    ----------
    fps:
        Instantaneous throughput of the session (frames per second).
    psnr_db:
        PSNR of the frame just encoded.
    bitrate_mbps:
        Output bitrate in Mbit/s at the delivery frame rate.
    power_w:
        Package power of the server while the frame was encoded.
    """

    fps: float
    psnr_db: float
    bitrate_mbps: float
    power_w: float

    def __post_init__(self) -> None:
        if self.fps < 0:
            raise LearningError(f"fps must be >= 0, got {self.fps}")
        if self.bitrate_mbps < 0:
            raise LearningError(f"bitrate_mbps must be >= 0, got {self.bitrate_mbps}")
        if self.power_w < 0:
            raise LearningError(f"power_w must be >= 0, got {self.power_w}")


def average_observations(observations: Sequence[Observation] | Iterable[Observation]) -> Observation:
    """Average a group of observations component-wise.

    The paper uses this for frames in which no agent acts ("NULL" slots of
    Fig. 3): the next state presented to the learning update is the average
    of the states observed during those frames, so that agents learn about
    each other's behaviour rather than about frame-to-frame content noise.

    The four components are accumulated in one pass over the input, in
    iteration order — the same left-to-right IEEE summation (starting from
    0.0) the four separate ``sum`` calls used to perform, so results are
    bitwise unchanged.  Running sums maintained incrementally in that order
    (as the batch engine's struct-of-arrays observation windows do) divide
    to the identical averages.
    """
    fps = psnr_db = bitrate_mbps = power_w = 0.0
    n = 0
    for o in observations:
        fps += o.fps
        psnr_db += o.psnr_db
        bitrate_mbps += o.bitrate_mbps
        power_w += o.power_w
        n += 1
    if n == 0:
        raise LearningError("cannot average an empty list of observations")
    return Observation(
        fps=fps / n,
        psnr_db=psnr_db / n,
        bitrate_mbps=bitrate_mbps / n,
        power_w=power_w / n,
    )
