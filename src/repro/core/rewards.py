"""Reward functions (paper Sec. III-D).

Four reward terms are defined, one per observed quantity:

* **Throughput** (Eq. 1): ``-4`` below the FPS target; ``1/(FPS - (target-1))``
  otherwise — maximal (1.0) exactly at the target and decaying above it, so
  the agents do not waste resources over-achieving.
* **PSNR** (Eq. 2): ``-4`` outside the acceptable 30-50 dB range;
  ``a·e^(PSNR/50) - b`` inside, with ``a`` and ``b`` fixed so the reward is 0
  at 30 dB and 1 at 50 dB.
* **Bitrate** and **power**: pure constraints — ``-4`` when the user's
  bandwidth or the server power cap is violated, ``0`` otherwise.

The total reward used for the Q update is the (optionally weighted) sum of
the four terms.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.constants import (
    DEFAULT_BANDWIDTH_MBPS,
    DEFAULT_POWER_CAP_W,
    PSNR_MAX_DB,
    PSNR_MIN_DB,
    TARGET_FPS,
)
from repro.core.observation import Observation
from repro.errors import ConfigurationError

__all__ = ["RewardConfig", "RewardBreakdown", "RewardFunction"]

#: Penalty applied when an objective/constraint is violated (paper uses -4).
VIOLATION_PENALTY: float = -4.0


@dataclasses.dataclass(frozen=True)
class RewardConfig:
    """Targets and constraints shaping the reward.

    Attributes
    ----------
    fps_target:
        Real-time throughput target (24 FPS in the paper).
    psnr_min_db, psnr_max_db:
        Acceptable PSNR range for 8-bit lossy content (30-50 dB).
    bandwidth_mbps:
        The user's available bandwidth; bitrates above it are penalised.
    power_cap_w:
        Server power cap; package power at or above it is penalised.
    fps_weight, psnr_weight, bitrate_weight, power_weight:
        Weights of the four terms in the total reward (all 1.0 by default).
    """

    fps_target: float = TARGET_FPS
    psnr_min_db: float = PSNR_MIN_DB
    psnr_max_db: float = PSNR_MAX_DB
    bandwidth_mbps: float = DEFAULT_BANDWIDTH_MBPS
    power_cap_w: float = DEFAULT_POWER_CAP_W
    fps_weight: float = 1.0
    psnr_weight: float = 1.0
    bitrate_weight: float = 1.0
    power_weight: float = 1.0

    def __post_init__(self) -> None:
        if self.fps_target <= 0:
            raise ConfigurationError(f"fps_target must be positive, got {self.fps_target}")
        if self.psnr_min_db >= self.psnr_max_db:
            raise ConfigurationError("psnr_min_db must be below psnr_max_db")
        if self.bandwidth_mbps <= 0:
            raise ConfigurationError(
                f"bandwidth_mbps must be positive, got {self.bandwidth_mbps}"
            )
        if self.power_cap_w <= 0:
            raise ConfigurationError(
                f"power_cap_w must be positive, got {self.power_cap_w}"
            )


@dataclasses.dataclass(frozen=True)
class RewardBreakdown:
    """The four reward terms and their weighted total."""

    fps: float
    psnr: float
    bitrate: float
    power: float
    total: float


class RewardFunction:
    """Computes the reward terms of Sec. III-D for an observation."""

    def __init__(self, config: RewardConfig | None = None) -> None:
        self.config = config if config is not None else RewardConfig()
        # Constants of Eq. 2, chosen so the PSNR reward is 0 at psnr_min and
        # 1 at psnr_max (the paper states 0 at 30 dB and 1 at 50 dB).
        scale = self.config.psnr_max_db
        e_min = math.exp(self.config.psnr_min_db / scale)
        e_max = math.exp(self.config.psnr_max_db / scale)
        self._psnr_a = 1.0 / (e_max - e_min)
        self._psnr_b = self._psnr_a * e_min

    # -- individual terms -------------------------------------------------------

    def fps_reward(self, fps: float) -> float:
        """Throughput reward, Eq. 1."""
        target = self.config.fps_target
        if fps < target:
            return VIOLATION_PENALTY
        return 1.0 / (fps - (target - 1.0))

    def psnr_reward(self, psnr_db: float) -> float:
        """Video-quality reward, Eq. 2."""
        cfg = self.config
        if psnr_db < cfg.psnr_min_db or psnr_db > cfg.psnr_max_db:
            return VIOLATION_PENALTY
        return self._psnr_a * math.exp(psnr_db / cfg.psnr_max_db) - self._psnr_b

    def bitrate_reward(self, bitrate_mbps: float) -> float:
        """Compression-constraint reward: penalise bandwidth violations."""
        return VIOLATION_PENALTY if bitrate_mbps > self.config.bandwidth_mbps else 0.0

    def power_reward(self, power_w: float) -> float:
        """Power-constraint reward: penalise power-cap violations."""
        return VIOLATION_PENALTY if power_w >= self.config.power_cap_w else 0.0

    # -- aggregate ---------------------------------------------------------------

    def breakdown(self, observation: Observation) -> RewardBreakdown:
        """All four reward terms plus the weighted total for an observation."""
        cfg = self.config
        fps = self.fps_reward(observation.fps)
        psnr = self.psnr_reward(observation.psnr_db)
        bitrate = self.bitrate_reward(observation.bitrate_mbps)
        power = self.power_reward(observation.power_w)
        total = (
            cfg.fps_weight * fps
            + cfg.psnr_weight * psnr
            + cfg.bitrate_weight * bitrate
            + cfg.power_weight * power
        )
        return RewardBreakdown(fps=fps, psnr=psnr, bitrate=bitrate, power=power, total=total)

    def total(self, observation: Observation) -> float:
        """Weighted total reward for an observation."""
        return self.breakdown(observation).total

    # -- batch entry points -----------------------------------------------------

    def total_batch(
        self,
        fps: np.ndarray,
        psnr_db: np.ndarray,
        bitrate_mbps: np.ndarray,
        power_w: np.ndarray,
        exact: bool = False,
    ) -> np.ndarray:
        """Vectorized :meth:`total` over parallel observation arrays.

        The penalty branches and the FPS/bitrate/power terms match the scalar
        path exactly.  By default the in-range PSNR term goes through
        ``np.exp``, whose SIMD kernels may differ from ``math.exp`` in the
        last ULP on some platforms — treat the result as equal to the scalar
        reward to ~1e-15 relative.  With ``exact=True`` the exponential of
        each in-range element is evaluated through ``math.exp`` instead
        (everything around it stays vectorized; IEEE elementwise arithmetic
        is identical either way), making the result *bitwise* equal to the
        scalar :meth:`total` — the batch stepping engine relies on this for
        its seed-for-seed Q-table equivalence.
        """
        cfg = self.config
        fps = np.asarray(fps)
        psnr_db = np.asarray(psnr_db)
        bitrate_mbps = np.asarray(bitrate_mbps)
        power_w = np.asarray(power_w)

        denom = fps - (cfg.fps_target - 1.0)
        with np.errstate(divide="ignore"):
            above = 1.0 / denom
        fps_r = np.where(fps < cfg.fps_target, VIOLATION_PENALTY, above)

        in_range = (psnr_db >= cfg.psnr_min_db) & (psnr_db <= cfg.psnr_max_db)
        scaled = psnr_db / cfg.psnr_max_db
        if exact:
            exp_term = np.zeros_like(scaled)
            if in_range.any():
                exp_term[in_range] = [math.exp(v) for v in scaled[in_range]]
        else:
            exp_term = np.exp(scaled)
        psnr_r = np.where(
            in_range,
            self._psnr_a * exp_term - self._psnr_b,
            VIOLATION_PENALTY,
        )

        bitrate_r = np.where(
            bitrate_mbps > cfg.bandwidth_mbps, VIOLATION_PENALTY, 0.0
        )
        power_r = np.where(power_w >= cfg.power_cap_w, VIOLATION_PENALTY, 0.0)

        return (
            cfg.fps_weight * fps_r
            + cfg.psnr_weight * psnr_r
            + cfg.bitrate_weight * bitrate_r
            + cfg.power_weight * power_r
        )
