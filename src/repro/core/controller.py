"""Controller interface shared by MAMUT and the baseline approaches.

A *controller* manages exactly one transcoding session: once per frame the
session asks it for a :class:`Decision` (QP, threads, frequency), handing it
the :class:`~repro.core.observation.Observation` produced by the previous
frame.  MAMUT, the mono-agent Q-learning baseline, the heuristic baseline and
the static baseline all implement this interface, which is what lets the
experiment runner compare them on identical scenarios.
"""

from __future__ import annotations

import abc
import dataclasses
from typing import Optional

from repro.core.observation import Observation
from repro.errors import ConfigurationError
from repro.platform.dvfs import DvfsPolicy

__all__ = ["Decision", "Controller"]


@dataclasses.dataclass(frozen=True)
class Decision:
    """Configuration applied to the next frame of a session.

    Attributes
    ----------
    qp:
        Quantization Parameter for the encoder.
    threads:
        Number of WPP threads to encode the frame with.
    frequency_ghz:
        Operating frequency of the session's cores.
    """

    qp: int
    threads: int
    frequency_ghz: float

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ConfigurationError(f"threads must be >= 1, got {self.threads}")
        if self.frequency_ghz <= 0:
            raise ConfigurationError(
                f"frequency_ghz must be positive, got {self.frequency_ghz}"
            )


class Controller(abc.ABC):
    """Run-time manager of a single transcoding session."""

    #: How this controller's frequency decisions are applied to the package.
    #: Learning controllers use per-core DVFS; the heuristic baseline applies
    #: its frequency chip-wide (see repro.platform.dvfs.DvfsPolicy).
    dvfs_policy: DvfsPolicy = DvfsPolicy.PER_CORE

    @abc.abstractmethod
    def decide(self, frame_index: int, observation: Optional[Observation]) -> Decision:
        """Choose the configuration for frame ``frame_index``.

        Parameters
        ----------
        frame_index:
            Index of the frame about to be transcoded.
        observation:
            Measurements produced by the previous frame, or ``None`` for the
            very first frame of the session.
        """

    def reset(self) -> None:
        """Forget per-video transient state (called between videos).

        Learned knowledge (Q-tables, transition counts) survives a reset so
        that a controller keeps improving across the videos of a Scenario II
        batch; only the per-frame bookkeeping is cleared.  The default is a
        no-op.
        """

    @property
    def name(self) -> str:
        """Human-readable controller name (defaults to the class name)."""
        return type(self).__name__
