"""Persistence of learned knowledge (Q-tables, counters, transitions).

The paper's results reflect agents that have already learned their
environment.  This module lets a controller's learned state be snapshotted to
plain JSON-serialisable dictionaries, written to disk, and restored into a
fresh controller — which enables pre-training once and reusing the knowledge
across experiments (see :mod:`repro.manager.pretrain`).

Snapshots cover, per agent: the Q-table, the per-(state, action) and
per-action visit counters, and the empirical transition counts.  States are
serialised as their 4-tuple of bin indices.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

from repro.core.agent import QLearningAgent
from repro.core.states import SystemState
from repro.errors import LearningError

__all__ = [
    "snapshot_agent",
    "restore_agent",
    "snapshot_agents",
    "restore_agents",
    "snapshot_controller",
    "restore_controller",
    "snapshot_session",
    "restore_session_state",
    "save_snapshot",
    "load_snapshot",
]

#: Format version stored in every snapshot file.
SNAPSHOT_VERSION = 1


def _state_key(state: SystemState) -> str:
    return ",".join(str(v) for v in state.as_tuple())


def _state_from_key(key: str) -> SystemState:
    parts = [int(v) for v in key.split(",")]
    if len(parts) != 4:
        raise LearningError(f"malformed state key {key!r}")
    return SystemState(*parts)


def snapshot_agent(agent: QLearningAgent) -> dict[str, Any]:
    """Serialise one agent's learned state into a JSON-compatible dict."""
    q_values = {
        f"{_state_key(state)}|{action}": value
        for (state, action), value in agent.q_table.items()
    }
    state_action_counts = {
        f"{_state_key(state)}|{action}": agent.state_action_count(state, action)
        for state in agent.known_states()
        for action in agent.actions.indices()
        if agent.state_action_count(state, action) > 0
    }
    transitions: dict[str, dict[str, int]] = {}
    for state, action in agent.transitions.visited_pairs():
        pair_key = f"{_state_key(state)}|{action}"
        counts = {}
        for next_state, probability in agent.transitions.distribution(state, action).items():
            counts[_state_key(next_state)] = agent.transitions.count(state, action, next_state)
        transitions[pair_key] = counts
    return {
        "name": agent.name,
        "num_actions": len(agent.actions),
        "action_values": list(agent.actions.values),
        "q_values": q_values,
        "state_action_counts": state_action_counts,
        "action_counts": {str(a): agent.action_count(a) for a in agent.actions.indices()},
        "transitions": transitions,
    }


def restore_agent(agent: QLearningAgent, snapshot: Mapping[str, Any]) -> None:
    """Load a snapshot produced by :func:`snapshot_agent` into ``agent``.

    The agent must have the same number of actions as the snapshot; the
    action *values* are compared too and a mismatch raises, because Q-values
    indexed against a different action set would be silently wrong.
    """
    if int(snapshot["num_actions"]) != len(agent.actions):
        raise LearningError(
            f"snapshot has {snapshot['num_actions']} actions, "
            f"agent {agent.name!r} has {len(agent.actions)}"
        )
    snapshot_values = [tuple(v) if isinstance(v, list) else v for v in snapshot["action_values"]]
    agent_values = [
        tuple(v) if isinstance(v, (list, tuple)) else v for v in agent.actions.values
    ]
    if list(snapshot_values) != list(agent_values):
        raise LearningError(
            f"snapshot action values {snapshot_values!r} do not match "
            f"agent {agent.name!r} action values {agent_values!r}"
        )

    for key, value in snapshot["q_values"].items():
        state_key, action = key.rsplit("|", 1)
        agent.q_table.set(_state_from_key(state_key), int(action), float(value))

    for key, count in snapshot["state_action_counts"].items():
        state_key, action = key.rsplit("|", 1)
        agent._state_action_counts[(_state_from_key(state_key), int(action))] = int(count)

    for action, count in snapshot["action_counts"].items():
        agent._action_counts[int(action)] = int(count)
    # The counters were written behind the agent's back; its cached extremes
    # (running min action count, per-state max counts) must be rebuilt.
    agent.rebuild_count_caches()

    for pair_key, next_counts in snapshot["transitions"].items():
        state_key, action = pair_key.rsplit("|", 1)
        state = _state_from_key(state_key)
        for next_state_key, count in next_counts.items():
            next_state = _state_from_key(next_state_key)
            for _ in range(int(count)):
                agent.transitions.record(state, int(action), next_state)


def snapshot_agents(agents: Mapping[str, QLearningAgent]) -> dict[str, Any]:
    """Serialise a named collection of agents (e.g. a MAMUT controller's)."""
    return {
        "version": SNAPSHOT_VERSION,
        "agents": {name: snapshot_agent(agent) for name, agent in agents.items()},
    }


def restore_agents(agents: Mapping[str, QLearningAgent], snapshot: Mapping[str, Any]) -> None:
    """Restore a collection snapshot into matching agents (by name)."""
    if int(snapshot.get("version", -1)) != SNAPSHOT_VERSION:
        raise LearningError(
            f"unsupported snapshot version {snapshot.get('version')!r}"
        )
    stored = snapshot["agents"]
    missing = set(stored) - set(agents)
    if missing:
        raise LearningError(f"snapshot contains unknown agents: {sorted(missing)}")
    for name, agent_snapshot in stored.items():
        restore_agent(agents[name], agent_snapshot)


def snapshot_controller(controller: Any) -> Mapping[str, Any] | None:
    """Snapshot a controller's learned state, if it carries any.

    Controllers that expose an ``agents`` name-to-:class:`QLearningAgent`
    mapping (MAMUT) are snapshotted with :func:`snapshot_agents`; for
    anything else (static, heuristic) there is nothing to carry and ``None``
    is returned.  This is the capture half of cluster-level session
    migration: when a server crashes, the snapshot travels with the retried
    request so learning survives onto the replacement server.
    """
    agents = getattr(controller, "agents", None)
    if not isinstance(agents, Mapping) or not agents:
        return None
    if not all(isinstance(agent, QLearningAgent) for agent in agents.values()):
        return None
    return snapshot_agents(agents)


def restore_controller(controller: Any, snapshot: Mapping[str, Any] | None) -> bool:
    """Best-effort restore of :func:`snapshot_controller` output.

    Returns True when the snapshot was loaded into the controller's agents.
    A ``None`` snapshot, a controller without agents, or a structural
    mismatch (different agent names or action sets — e.g. the retry was
    dispatched under a brownout ``degraded_factory``) returns False and the
    migrated session learns from scratch, which is always safe.  A mismatch
    detected partway may leave earlier agents of the collection restored;
    that is harmless — a restored Q-table is just an initialization — and
    deterministic, so engine equivalence is unaffected.
    """
    if snapshot is None:
        return False
    agents = getattr(controller, "agents", None)
    if not isinstance(agents, Mapping) or not agents:
        return False
    try:
        restore_agents(agents, snapshot)
    except LearningError:
        return False
    return True


def snapshot_session(
    session: Any, *, checkpoint_interval: int | None = None
) -> dict[str, Any]:
    """Snapshot a transcoding session for crash salvage / migration.

    Extends :func:`snapshot_controller` with *progress* state: which video
    the session was in and — when frame-level checkpointing is on — the
    last checkpointed frame of that video.  ``resume_frame`` is the largest
    multiple of ``checkpoint_interval`` at or below the session's current
    frame (0 when checkpointing is off: the classic replay-from-video-start
    behaviour), and ``recomputed_frames`` is the work between the
    checkpoint and the crash point that a retry must redo.  Both are pure
    functions of the session's frame index, so the scalar and batch engines
    — which agree on every frame index — produce identical snapshots.
    """
    frame = int(session.frame_index)
    if checkpoint_interval is not None and checkpoint_interval > 0:
        resume_frame = frame - frame % checkpoint_interval
    else:
        resume_frame = 0
    return {
        "version": SNAPSHOT_VERSION,
        "controller": snapshot_controller(session.controller),
        "video_index": int(session.video_index),
        "resume_frame": resume_frame,
        "recomputed_frames": frame - resume_frame,
    }


def restore_session_state(controller: Any, snapshot: Mapping[str, Any] | None) -> bool:
    """Restore the controller half of a :func:`snapshot_session` snapshot.

    Progress (``resume_frame``) is the caller's to apply — the cluster
    layer constructs the replacement session at the checkpointed frame —
    so this helper only rehydrates learned state, with
    :func:`restore_controller`'s best-effort semantics.
    """
    if snapshot is None:
        return False
    return restore_controller(controller, snapshot.get("controller"))


def save_snapshot(snapshot: Mapping[str, Any], path: str | Path) -> Path:
    """Write a snapshot dictionary to a JSON file and return its path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(snapshot, handle)
    return path


def load_snapshot(path: str | Path) -> dict[str, Any]:
    """Read a snapshot dictionary from a JSON file."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)
