"""Empirical state-transition model (paper Sec. IV-A).

Because the environment is stochastic (content changes, other agents, other
users), applying action ``a`` in state ``s`` does not always lead to the same
next state.  Each agent therefore records every observed transition
``s --a--> s'`` and estimates::

    P(s --a--> s') = Num(s --a--> s') / Num(s, a)

These probabilities drive the expected-Q computation of Algorithm 1.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Mapping, Tuple

from repro.core.states import SystemState
from repro.errors import LearningError

__all__ = ["TransitionModel"]


class TransitionModel:
    """Counts and probabilities of observed state transitions per action."""

    def __init__(self, num_actions: int) -> None:
        if num_actions < 1:
            raise LearningError(f"num_actions must be >= 1, got {num_actions}")
        self.num_actions = int(num_actions)
        self._counts: Dict[Tuple[SystemState, int], Dict[SystemState, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self._totals: Dict[Tuple[SystemState, int], int] = defaultdict(int)

    # -- recording ----------------------------------------------------------------

    def record(self, state: SystemState, action: int, next_state: SystemState) -> None:
        """Record one observed transition ``state --action--> next_state``."""
        self._check_action(action)
        self._counts[(state, action)][next_state] += 1
        self._totals[(state, action)] += 1

    # -- queries -------------------------------------------------------------------

    def count(self, state: SystemState, action: int, next_state: SystemState) -> int:
        """Number of times ``state --action--> next_state`` was observed."""
        self._check_action(action)
        return self._counts.get((state, action), {}).get(next_state, 0)

    def total(self, state: SystemState, action: int) -> int:
        """Number of times ``action`` was taken in ``state``."""
        self._check_action(action)
        return self._totals.get((state, action), 0)

    def probability(
        self, state: SystemState, action: int, next_state: SystemState
    ) -> float:
        """Estimated ``P(state --action--> next_state)`` (0 if never observed)."""
        total = self.total(state, action)
        if total == 0:
            return 0.0
        return self.count(state, action, next_state) / total

    def distribution(self, state: SystemState, action: int) -> Mapping[SystemState, float]:
        """Full next-state distribution for ``(state, action)``.

        Returns an empty mapping when the pair has never been tried.
        """
        total = self.total(state, action)
        if total == 0:
            return {}
        return {
            next_state: count / total
            for next_state, count in self._counts[(state, action)].items()
        }

    def expected_value(
        self, state: SystemState, action: int, value_of_state
    ) -> float:
        """Expectation of ``value_of_state(s')`` under the next-state distribution.

        ``value_of_state`` is a callable mapping a state to a float.  Returns
        0.0 when the (state, action) pair has no recorded transitions.
        """
        distribution = self.distribution(state, action)
        return sum(p * value_of_state(s) for s, p in distribution.items())

    def visited_pairs(self) -> set[tuple[SystemState, int]]:
        """All (state, action) pairs with at least one recorded transition."""
        return set(self._totals)

    def _check_action(self, action: int) -> None:
        if not 0 <= action < self.num_actions:
            raise LearningError(
                f"action index {action} out of range [0, {self.num_actions})"
            )
