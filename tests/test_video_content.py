"""Unit tests for repro.video.content."""

from __future__ import annotations

import pytest

from repro.errors import VideoError
from repro.video.content import ContentModel, ContentProfile, FrameContent


class TestContentProfile:
    def test_defaults_are_valid(self):
        profile = ContentProfile()
        assert profile.complexity == pytest.approx(1.0)
        assert 0.0 <= profile.motion <= 1.0

    def test_rejects_non_positive_complexity(self):
        with pytest.raises(VideoError):
            ContentProfile(complexity=0.0)
        with pytest.raises(VideoError):
            ContentProfile(complexity=-1.0)

    def test_rejects_motion_out_of_range(self):
        with pytest.raises(VideoError):
            ContentProfile(motion=1.5)
        with pytest.raises(VideoError):
            ContentProfile(motion=-0.1)

    def test_rejects_negative_variability(self):
        with pytest.raises(VideoError):
            ContentProfile(variability=-0.01)

    def test_rejects_invalid_scene_change_rate(self):
        with pytest.raises(VideoError):
            ContentProfile(scene_change_rate=1.5)


class TestContentModel:
    def test_same_seed_same_stream(self):
        a = ContentModel(seed=42).generate(100)
        b = ContentModel(seed=42).generate(100)
        assert a == b

    def test_different_seeds_differ(self):
        a = ContentModel(seed=1).generate(100)
        b = ContentModel(seed=2).generate(100)
        assert a != b

    def test_reset_rewinds_the_stream(self):
        model = ContentModel(seed=7)
        first = model.generate(50)
        model.reset()
        second = model.generate(50)
        assert first == second

    def test_complexity_and_motion_stay_in_range(self):
        model = ContentModel(ContentProfile(variability=0.2, motion=0.9), seed=3)
        for content in model.generate(500):
            assert 0.4 <= content.complexity <= 2.0
            assert 0.0 <= content.motion <= 1.0

    def test_zero_variability_keeps_complexity_constant(self):
        profile = ContentProfile(complexity=1.2, variability=0.0, scene_change_rate=0.0)
        contents = ContentModel(profile, seed=0).generate(50)
        assert all(c.complexity == pytest.approx(1.2) for c in contents)
        assert not any(c.scene_change for c in contents)

    def test_scene_changes_occur_with_high_rate(self):
        profile = ContentProfile(scene_change_rate=0.5)
        contents = ContentModel(profile, seed=0).generate(200)
        assert sum(1 for c in contents if c.scene_change) > 50

    def test_mean_complexity_tracks_profile(self):
        profile = ContentProfile(complexity=1.4, variability=0.05, scene_change_rate=0.0)
        contents = ContentModel(profile, seed=5).generate(2000)
        mean = sum(c.complexity for c in contents) / len(contents)
        assert mean == pytest.approx(1.4, abs=0.15)

    def test_generate_negative_raises(self):
        with pytest.raises(VideoError):
            ContentModel().generate(-1)

    def test_generate_zero_returns_empty(self):
        assert ContentModel().generate(0) == []

    def test_frame_content_is_immutable(self):
        content = FrameContent(complexity=1.0, motion=0.5)
        with pytest.raises(Exception):
            content.complexity = 2.0  # type: ignore[misc]
