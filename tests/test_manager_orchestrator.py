"""Unit tests for repro.manager.orchestrator."""

from __future__ import annotations

import pytest

from repro.baselines.heuristic import HeuristicController
from repro.baselines.static import StaticController
from repro.errors import ScenarioError
from repro.manager.orchestrator import Orchestrator
from repro.manager.session import TranscodingSession
from repro.platform.dvfs import DvfsPolicy
from repro.platform.server import MulticoreServer
from repro.core.mamut import MamutController
from repro.video.catalog import make_sequence
from repro.video.request import TranscodingRequest


def session(user_id="u0", name="Kimono", num_frames=10, controller=None, threads=4):
    video = make_sequence(name, num_frames=num_frames, seed=hash(user_id) % 1000)
    request = TranscodingRequest(user_id=user_id, sequence=video)
    return TranscodingSession(
        request=request,
        controller=controller if controller is not None else StaticController(32, threads, 3.2),
    )


class TestOrchestrator:
    def test_single_session_run(self):
        result = Orchestrator([session(num_frames=12)]).run()
        assert result.steps == 12
        assert len(result.records_by_session["u0"]) == 12
        assert len(result.power_samples) == 12
        assert all(sample.active_sessions == 1 for sample in result.power_samples)

    def test_multi_session_run_until_all_finish(self):
        sessions = [
            session("a", "Kimono", num_frames=6),
            session("b", "BQMall", num_frames=10),
        ]
        result = Orchestrator(sessions).run()
        assert result.steps == 10
        assert len(result.records_by_session["a"]) == 6
        assert len(result.records_by_session["b"]) == 10
        # After session `a` finishes, only one session remains active.
        assert result.power_samples[-1].active_sessions == 1

    def test_max_steps_truncates_the_run(self):
        result = Orchestrator([session(num_frames=50)]).run(max_steps=5)
        assert result.steps == 5
        assert len(result.records_by_session["u0"]) == 5

    def test_duplicate_session_ids_rejected(self):
        with pytest.raises(ScenarioError):
            Orchestrator([session("x"), session("x")])

    def test_empty_session_list_rejected(self):
        with pytest.raises(ScenarioError):
            Orchestrator([])

    def test_summary_has_all_sessions(self):
        sessions = [session("a", num_frames=8), session("b", "BQMall", num_frames=8)]
        summary = Orchestrator(sessions).run().summary()
        assert set(summary.sessions) == {"a", "b"}
        assert summary.mean_power_w > 0
        assert summary.duration_s > 0

    def test_power_recorded_in_meter(self):
        orchestrator = Orchestrator([session(num_frames=10)])
        orchestrator.run()
        assert orchestrator.meter.energy_joules > 0

    def test_chip_wide_controller_switches_server_policy(self):
        server = MulticoreServer()
        assert server.dvfs_policy is DvfsPolicy.PER_CORE
        Orchestrator([session(controller=HeuristicController())], server=server)
        assert server.dvfs_policy is DvfsPolicy.CHIP_WIDE

    def test_per_core_controllers_keep_server_policy(self):
        server = MulticoreServer()
        Orchestrator([session(controller=MamutController())], server=server)
        assert server.dvfs_policy is DvfsPolicy.PER_CORE

    def test_contention_reduces_throughput(self):
        """Running many heavy sessions must reduce per-session FPS compared to
        running one session alone at the same configuration."""
        alone = Orchestrator([session("solo", "Cactus", 10, threads=12)]).run()
        crowd = Orchestrator(
            [session(f"s{i}", "Cactus", 10, threads=12) for i in range(4)]
        ).run()
        fps_alone = alone.summary().sessions["solo"].mean_fps
        fps_crowded = crowd.summary().sessions["s0"].mean_fps
        assert fps_crowded < fps_alone

    def test_all_records_flattening(self):
        sessions = [session("a", num_frames=5), session("b", "BQMall", num_frames=5)]
        result = Orchestrator(sessions).run()
        assert len(result.all_records()) == 10
