"""Unit tests for repro.manager.orchestrator."""

from __future__ import annotations

import pytest

from repro.baselines.heuristic import HeuristicController
from repro.baselines.static import StaticController
from repro.errors import ScenarioError
from repro.manager.orchestrator import Orchestrator
from repro.manager.session import TranscodingSession
from repro.platform.dvfs import DvfsPolicy
from repro.platform.server import MulticoreServer
from repro.core.mamut import MamutController
from repro.video.catalog import make_sequence
from repro.video.request import TranscodingRequest


def session(user_id="u0", name="Kimono", num_frames=10, controller=None, threads=4):
    video = make_sequence(name, num_frames=num_frames, seed=hash(user_id) % 1000)
    request = TranscodingRequest(user_id=user_id, sequence=video)
    return TranscodingSession(
        request=request,
        controller=controller if controller is not None else StaticController(32, threads, 3.2),
    )


class TestOrchestrator:
    def test_single_session_run(self):
        result = Orchestrator([session(num_frames=12)]).run()
        assert result.steps == 12
        assert len(result.records_by_session["u0"]) == 12
        assert len(result.power_samples) == 12
        assert all(sample.active_sessions == 1 for sample in result.power_samples)

    def test_multi_session_run_until_all_finish(self):
        sessions = [
            session("a", "Kimono", num_frames=6),
            session("b", "BQMall", num_frames=10),
        ]
        result = Orchestrator(sessions).run()
        assert result.steps == 10
        assert len(result.records_by_session["a"]) == 6
        assert len(result.records_by_session["b"]) == 10
        # After session `a` finishes, only one session remains active.
        assert result.power_samples[-1].active_sessions == 1

    def test_max_steps_truncates_the_run(self):
        result = Orchestrator([session(num_frames=50)]).run(max_steps=5)
        assert result.steps == 5
        assert len(result.records_by_session["u0"]) == 5

    def test_duplicate_session_ids_rejected(self):
        with pytest.raises(ScenarioError):
            Orchestrator([session("x"), session("x")])

    def test_empty_orchestrator_idles(self):
        # A session-less orchestrator is valid (the cluster layer attaches
        # sessions later); run() terminates immediately with no records.
        orchestrator = Orchestrator()
        result = orchestrator.run()
        assert result.steps == 0
        assert result.records_by_session == {}
        assert result.power_samples == []
        # An empty run summarises to zeros instead of raising.
        summary = result.summary()
        assert summary.sessions == {}
        assert summary.mean_power_w == 0.0
        assert summary.qos_violation_pct == 0.0

    def test_idle_step_samples_idle_power(self):
        orchestrator = Orchestrator()
        sample = orchestrator.idle_step(step=3)
        assert sample.step == 3
        assert sample.active_sessions == 0
        assert sample.power_w > 0  # base + idle-core power
        assert orchestrator.meter.energy_joules > 0

    def test_summary_has_all_sessions(self):
        sessions = [session("a", num_frames=8), session("b", "BQMall", num_frames=8)]
        summary = Orchestrator(sessions).run().summary()
        assert set(summary.sessions) == {"a", "b"}
        assert summary.mean_power_w > 0
        assert summary.duration_s > 0

    def test_power_recorded_in_meter(self):
        orchestrator = Orchestrator([session(num_frames=10)])
        orchestrator.run()
        assert orchestrator.meter.energy_joules > 0

    def test_chip_wide_controller_switches_server_policy(self):
        server = MulticoreServer()
        assert server.dvfs_policy is DvfsPolicy.PER_CORE
        Orchestrator([session(controller=HeuristicController())], server=server)
        assert server.dvfs_policy is DvfsPolicy.CHIP_WIDE

    def test_per_core_controllers_keep_server_policy(self):
        server = MulticoreServer()
        Orchestrator([session(controller=MamutController())], server=server)
        assert server.dvfs_policy is DvfsPolicy.PER_CORE

    def test_contention_reduces_throughput(self):
        """Running many heavy sessions must reduce per-session FPS compared to
        running one session alone at the same configuration."""
        alone = Orchestrator([session("solo", "Cactus", 10, threads=12)]).run()
        crowd = Orchestrator(
            [session(f"s{i}", "Cactus", 10, threads=12) for i in range(4)]
        ).run()
        fps_alone = alone.summary().sessions["solo"].mean_fps
        fps_crowded = crowd.summary().sessions["s0"].mean_fps
        assert fps_crowded < fps_alone

    def test_all_records_flattening(self):
        sessions = [session("a", num_frames=5), session("b", "BQMall", num_frames=5)]
        result = Orchestrator(sessions).run()
        assert len(result.all_records()) == 10


class TestDynamicSessions:
    def test_add_session_before_run(self):
        orchestrator = Orchestrator()
        orchestrator.add_session(session("a", num_frames=4))
        result = orchestrator.run()
        assert result.steps == 4
        assert len(result.records_by_session["a"]) == 4

    def test_add_session_duplicate_id_rejected(self):
        orchestrator = Orchestrator([session("a")])
        with pytest.raises(ScenarioError):
            orchestrator.add_session(session("a"))

    def test_add_session_chip_wide_switches_policy(self):
        server = MulticoreServer()
        orchestrator = Orchestrator(server=server)
        assert server.dvfs_policy is DvfsPolicy.PER_CORE
        orchestrator.add_session(session(controller=HeuristicController()))
        assert server.dvfs_policy is DvfsPolicy.CHIP_WIDE

    def test_mid_run_join_extends_the_run(self):
        """A session joining mid-run is served from the next step on, and
        the run continues until the late joiner's playlist drains."""
        orchestrator = Orchestrator([session("early", num_frames=4)])
        samples = []
        for step in range(3):
            samples.append(orchestrator.run_step(step))
        orchestrator.add_session(session("late", "BQMall", num_frames=6))
        step = 3
        while True:
            sample = orchestrator.run_step(step)
            if sample is None:
                break
            samples.append(sample)
            step += 1

        records_early = [r for r in orchestrator.sessions[0].records]
        records_late = [r for r in orchestrator.sessions[1].records]
        assert len(records_early) == 4
        assert len(records_late) == 6
        # early runs alone for steps 0-2, both overlap at step 3, late runs
        # alone for steps 4-8.
        assert [s.active_sessions for s in samples] == [1, 1, 1, 2, 1, 1, 1, 1, 1]

    def test_staggered_lifetimes_keep_metrics_consistent(self):
        """Sessions finishing at different steps and joining mid-run must
        leave power samples and per-session records mutually consistent."""
        orchestrator = Orchestrator(
            [session("s0", "Kimono", num_frames=5), session("s1", "BQMall", num_frames=9)]
        )
        samples = []
        joined = False
        step = 0
        while True:
            if step == 6 and not joined:
                orchestrator.add_session(session("s2", "RaceHorses", num_frames=5))
                joined = True
            sample = orchestrator.run_step(step)
            if sample is None:
                break
            samples.append(sample)
            step += 1

        records = {s.session_id: list(s.records) for s in orchestrator.sessions}
        assert {k: len(v) for k, v in records.items()} == {"s0": 5, "s1": 9, "s2": 5}
        # Every step's active_sessions equals the number of sessions that
        # produced a frame record in that step, and total frames match.
        frames_per_step: dict[int, int] = {}
        for i, sample in enumerate(samples):
            frames_per_step[i] = sample.active_sessions
        assert sum(frames_per_step.values()) == sum(len(v) for v in records.values())
        # Per-session steps are contiguous (0..n-1 internally) and each
        # session's record count never exceeds the number of steps it saw.
        for session_id, recs in records.items():
            assert [r.step for r in recs] == list(range(len(recs)))
        # The power trace is strictly positive throughout.
        assert all(sample.power_w > 0 for sample in samples)
