"""Elementwise equivalence of the batch model entry points vs. the scalar ones.

The vectorized stepping engine's seed-for-seed guarantee rests on the batch
methods producing *bitwise identical* doubles; these property tests pin that
down model by model over randomized inputs (including bin edges and
operating-point grid values, where off-by-one-ULP bugs would hide).  The
reward batch is the one documented exception: its in-range PSNR term goes
through ``np.exp``, so it is compared to tight tolerance instead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.observation import Observation
from repro.core.rewards import RewardFunction
from repro.core.states import StateSpace, SystemState
from repro.errors import EncodingError, PlatformError
from repro.hevc.complexity import ComplexityModel, ComplexityModelParameters
from repro.hevc.params import EncoderConfig, Preset
from repro.hevc.rd_model import RateDistortionModel, RdModelParameters
from repro.hevc.wpp import WppModel
from repro.platform.power import PowerModel, PowerModelParameters, VoltageTable
from repro.video.content import FrameContent
from repro.video.sequence import Frame

RNG = np.random.default_rng(20260726)
N = 400


def random_inputs(n=N):
    qp = RNG.integers(0, 52, size=n)
    complexity = RNG.uniform(0.4, 2.0, size=n)
    motion = RNG.uniform(0.0, 1.0, size=n)
    scene = RNG.random(n) < 0.15
    presets = [list(Preset)[i] for i in RNG.integers(0, len(Preset), size=n)]
    dims = [(1920, 1080), (832, 480)]
    wh = [dims[i] for i in RNG.integers(0, 2, size=n)]
    threads = RNG.integers(1, 21, size=n)
    freq = RNG.uniform(1.2, 3.2, size=n)
    return qp, complexity, motion, scene, presets, wh, threads, freq


def make_frames(qp, complexity, motion, scene, wh):
    return [
        Frame(
            index=i,
            width=wh[i][0],
            height=wh[i][1],
            content=FrameContent(
                complexity=float(complexity[i]),
                motion=float(motion[i]),
                scene_change=bool(scene[i]),
            ),
        )
        for i in range(len(qp))
    ]


class TestRdModelBatch:
    def setup_method(self):
        self.model = RateDistortionModel()
        (
            self.qp,
            self.complexity,
            self.motion,
            self.scene,
            self.presets,
            self.wh,
            _,
            _,
        ) = random_inputs()
        self.frames = make_frames(
            self.qp, self.complexity, self.motion, self.scene, self.wh
        )
        self.configs = [
            EncoderConfig(qp=int(q), threads=1, preset=p)
            for q, p in zip(self.qp, self.presets)
        ]

    def test_psnr_batch_bitwise_equals_scalar(self):
        batch = self.model.psnr_db_batch(
            self.qp,
            self.complexity,
            self.motion,
            np.array([p.quality_gain_db for p in self.presets]),
        )
        scalar = [
            self.model.psnr_db(f, c) for f, c in zip(self.frames, self.configs)
        ]
        assert batch.tolist() == scalar

    def test_bits_per_pixel_batch_bitwise_equals_scalar(self):
        batch = self.model.bits_per_pixel_batch(
            self.qp,
            self.complexity,
            self.motion,
            self.scene,
            np.array([p.compression_gain for p in self.presets]),
        )
        scalar = [
            self.model.bits_per_pixel(f, c)
            for f, c in zip(self.frames, self.configs)
        ]
        assert batch.tolist() == scalar

    def test_bitrate_batch_bitwise_equals_scalar(self):
        pixels = np.array([w * h for w, h in self.wh])
        batch = self.model.bitrate_mbps_batch(
            self.qp,
            self.complexity,
            self.motion,
            self.scene,
            pixels,
            24.0,
            np.array([p.compression_gain for p in self.presets]),
        )
        scalar = [
            self.model.bitrate_mbps(f, c, 24.0)
            for f, c in zip(self.frames, self.configs)
        ]
        assert batch.tolist() == scalar

    def test_custom_params_shared_table(self):
        model = RateDistortionModel(
            RdModelParameters(ref_qp=28, qp_per_rate_halving=5.5)
        )
        qp = np.arange(0, 52)
        frames = make_frames(
            qp, np.ones(52), np.zeros(52), np.zeros(52, bool), [(832, 480)] * 52
        )
        batch = model.bits_per_pixel_batch(
            qp, np.ones(52), np.zeros(52), np.zeros(52, bool)
        )
        scalar = [
            model.bits_per_pixel(f, EncoderConfig(qp=int(q), threads=1))
            for f, q in zip(frames, qp)
        ]
        assert batch.tolist() == scalar

    def test_qp_out_of_range_rejected(self):
        with pytest.raises(EncodingError):
            self.model.psnr_db_batch(np.array([52]), 1.0, 0.0)


class TestComplexityModelBatch:
    def setup_method(self):
        self.model = ComplexityModel()
        (
            self.qp,
            self.complexity,
            self.motion,
            self.scene,
            self.presets,
            self.wh,
            _,
            self.freq,
        ) = random_inputs()
        self.frames = make_frames(
            self.qp, self.complexity, self.motion, self.scene, self.wh
        )
        self.configs = [
            EncoderConfig(qp=int(q), threads=1, preset=p)
            for q, p in zip(self.qp, self.presets)
        ]
        self.pixels = np.array([w * h for w, h in self.wh])
        self.effort = np.array([p.effort_factor for p in self.presets])

    def test_encode_cycles_batch_bitwise_equals_scalar(self):
        batch = self.model.encode_cycles_batch(
            self.qp, self.pixels, self.complexity, self.motion, self.scene,
            self.effort,
        )
        scalar = [
            self.model.encode_cycles(f, c)
            for f, c in zip(self.frames, self.configs)
        ]
        assert batch.tolist() == scalar

    def test_decode_cycles_batch_bitwise_equals_scalar(self):
        batch = self.model.decode_cycles_batch(self.pixels, self.complexity)
        scalar = [self.model.decode_cycles(f) for f in self.frames]
        assert batch.tolist() == scalar

    def test_encode_time_batch_bitwise_equals_scalar(self):
        speedup = RNG.uniform(1.0, 10.0, size=N)
        batch = self.model.encode_time_seconds_batch(
            self.qp, self.pixels, self.complexity, self.motion, self.scene,
            self.freq, speedup, self.effort,
        )
        scalar = [
            self.model.encode_time_seconds(
                f, c, float(fr), float(sp)
            )
            for f, c, fr, sp in zip(self.frames, self.configs, self.freq, speedup)
        ]
        assert batch.tolist() == scalar

    def test_custom_params_shared_table(self):
        model = ComplexityModel(
            ComplexityModelParameters(qp_sensitivity=0.05, ref_qp=26)
        )
        qp = np.arange(0, 52)
        frames = make_frames(
            qp, np.ones(52), np.zeros(52), np.zeros(52, bool), [(832, 480)] * 52
        )
        batch = model.encode_cycles_batch(
            qp,
            np.full(52, 832 * 480),
            np.ones(52),
            np.zeros(52),
            np.zeros(52, bool),
        )
        scalar = [
            model.encode_cycles(f, EncoderConfig(qp=int(q), threads=1))
            for f, q in zip(frames, qp)
        ]
        assert batch.tolist() == scalar

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            self.model.encode_time_seconds_batch(
                np.array([32]), np.array([100]), np.array([1.0]),
                np.array([0.0]), np.array([False]),
                np.array([0.0]), np.array([1.0]),
            )


class TestWppModelBatch:
    def test_speedup_and_efficiency_bitwise_equal_scalar(self):
        model = WppModel()
        cases = [
            (t, w, h)
            for t in range(1, 21)
            for (w, h) in ((1920, 1080), (832, 480), (640, 360))
        ]
        threads = np.array([t for t, _, _ in cases])
        width = np.array([w for _, w, _ in cases])
        height = np.array([h for _, _, h in cases])
        batch_speedup = model.speedup_batch(threads, width, height)
        batch_eff = model.efficiency_batch(threads, width, height)
        scalar_speedup = [model.speedup(t, w, h) for t, w, h in cases]
        scalar_eff = [model.efficiency(t, w, h) for t, w, h in cases]
        assert batch_speedup.tolist() == scalar_speedup
        assert batch_eff.tolist() == scalar_eff

    def test_wpp_disabled_is_unity(self):
        model = WppModel()
        result = model.speedup_batch(
            np.array([4, 8]), np.array([1920, 1920]), np.array([1080, 1080]),
            wpp=np.array([False, True]),
        )
        assert result[0] == 1.0
        assert result[1] == model.speedup(8, 1920, 1080)

    def test_invalid_threads_rejected(self):
        with pytest.raises(EncodingError):
            WppModel().speedup_batch(
                np.array([0]), np.array([1920]), np.array([1080])
            )


class TestPowerModelBatch:
    def test_voltage_batch_bitwise_equals_scalar(self):
        table = VoltageTable()
        grid = [f for f, _ in VoltageTable._DEFAULT_POINTS]
        freqs = np.concatenate(
            [np.array(grid), RNG.uniform(0.8, 3.6, size=200)]
        )
        batch = table.voltage_batch(freqs)
        scalar = [table.voltage(float(f)) for f in freqs]
        assert batch.tolist() == scalar
        rel = table.relative_dynamic_batch(freqs)
        scalar_rel = [table.relative_dynamic(float(f)) for f in freqs]
        assert rel.tolist() == scalar_rel

    def test_busy_core_power_batch_bitwise_equals_scalar(self):
        model = PowerModel()
        freqs = RNG.uniform(1.2, 3.2, size=200)
        activity = RNG.uniform(0.0, 1.0, size=200)
        smt = RNG.integers(1, 3, size=200)
        batch = model.busy_core_power_batch(freqs, activity, smt)
        scalar = [
            model.busy_core_power(float(f), float(a), int(s))
            for f, a, s in zip(freqs, activity, smt)
        ]
        assert batch.tolist() == scalar

    def test_idle_core_power_batch_bitwise_equals_scalar(self):
        model = PowerModel(PowerModelParameters(idle_activity_fraction=0.5))
        freqs = RNG.uniform(1.2, 3.2, size=100)
        batch = model.idle_core_power_batch(freqs)
        scalar = [model.idle_core_power(float(f)) for f in freqs]
        assert batch.tolist() == scalar

    def test_invalid_activity_rejected(self):
        with pytest.raises(PlatformError):
            PowerModel().busy_core_power_batch(
                np.array([3.2]), np.array([1.5])
            )


class TestStateSpaceBatch:
    def test_discretize_batch_matches_scalar_including_edges(self):
        space = StateSpace()
        # Random values plus every bin edge exactly (ties are where
        # searchsorted sides go wrong).
        fps = np.concatenate(
            [
                RNG.uniform(0.0, 40.0, size=300),
                np.array([space.fps_target, *space.fps_edges]),
            ]
        )
        n = len(fps)
        psnr = np.concatenate(
            [
                RNG.uniform(20.0, 60.0, size=n - len(space.psnr_edges)),
                np.array(space.psnr_edges),
            ]
        )
        bitrate = np.concatenate(
            [
                RNG.uniform(0.0, 10.0, size=n - len(space.bitrate_edges_mbps)),
                np.array(space.bitrate_edges_mbps),
            ]
        )
        power = np.concatenate(
            [
                RNG.uniform(50.0, 150.0, size=n - 1),
                np.array([space.power_cap_w]),
            ]
        )
        bins = space.discretize_batch(fps, psnr, bitrate, power)
        assert bins.shape == (n, 4)
        for i in range(n):
            observation = Observation(
                fps=float(fps[i]),
                psnr_db=float(psnr[i]),
                bitrate_mbps=float(bitrate[i]),
                power_w=float(power[i]),
            )
            assert SystemState(*bins[i].tolist()) == space.discretize(observation)


class TestRewardFunctionBatch:
    def test_total_batch_matches_scalar(self):
        fn = RewardFunction()
        cfg = fn.config
        fps = np.concatenate(
            [RNG.uniform(5.0, 40.0, size=200), np.array([cfg.fps_target])]
        )
        n = len(fps)
        psnr = RNG.uniform(20.0, 60.0, size=n)
        bitrate = RNG.uniform(0.0, 10.0, size=n)
        power = RNG.uniform(50.0, 150.0, size=n)
        batch = fn.total_batch(fps, psnr, bitrate, power)
        for i in range(n):
            scalar = fn.total(
                Observation(
                    fps=float(fps[i]),
                    psnr_db=float(psnr[i]),
                    bitrate_mbps=float(bitrate[i]),
                    power_w=float(power[i]),
                )
            )
            # np.exp in the PSNR term may differ from math.exp by 1 ULP.
            assert batch[i] == pytest.approx(scalar, rel=1e-12, abs=1e-12)

    def test_penalty_branches_are_exact(self):
        fn = RewardFunction()
        cfg = fn.config
        # Below-target FPS, out-of-range PSNR, violated bitrate and power:
        # every term takes its penalty branch, no transcendentals involved.
        batch = fn.total_batch(
            np.array([cfg.fps_target - 1.0]),
            np.array([cfg.psnr_max_db + 5.0]),
            np.array([cfg.bandwidth_mbps + 1.0]),
            np.array([cfg.power_cap_w]),
        )
        scalar = fn.total(
            Observation(
                fps=cfg.fps_target - 1.0,
                psnr_db=cfg.psnr_max_db + 5.0,
                bitrate_mbps=cfg.bandwidth_mbps + 1.0,
                power_w=cfg.power_cap_w,
            )
        )
        assert batch[0] == scalar
