"""Unit tests for repro.core.states (paper Sec. III-C)."""

from __future__ import annotations

import pytest

from repro.core.observation import Observation
from repro.core.states import StateSpace, SystemState
from repro.errors import ConfigurationError


@pytest.fixture
def space() -> StateSpace:
    return StateSpace()


def obs(fps=25.0, psnr=36.0, bitrate=4.0, power=80.0) -> Observation:
    return Observation(fps=fps, psnr_db=psnr, bitrate_mbps=bitrate, power_w=power)


class TestFpsBins:
    def test_paper_bins(self, space):
        """FPS states: <24, <26, <28, <30, >=30 (Sec. III-C)."""
        assert space.num_fps_bins == 5
        assert space.fps_bin(10.0) == 0
        assert space.fps_bin(23.99) == 0
        assert space.fps_bin(24.0) == 1
        assert space.fps_bin(25.9) == 1
        assert space.fps_bin(26.0) == 2
        assert space.fps_bin(28.0) == 3
        assert space.fps_bin(30.0) == 4
        assert space.fps_bin(100.0) == 4


class TestPsnrBins:
    def test_paper_bins(self, space):
        """PSNR states: <=30, <=35, <=40, <=45, <=50, >50 dB (Sec. III-C)."""
        assert space.num_psnr_bins == 6
        assert space.psnr_bin(28.0) == 0
        assert space.psnr_bin(30.0) == 0
        assert space.psnr_bin(33.0) == 1
        assert space.psnr_bin(38.0) == 2
        assert space.psnr_bin(43.0) == 3
        assert space.psnr_bin(48.0) == 4
        assert space.psnr_bin(51.0) == 5


class TestBitrateBins:
    def test_paper_bins(self, space):
        """Bitrate states: <3, 3-6, >6 Mb/s (Sec. III-C)."""
        assert space.num_bitrate_bins == 3
        assert space.bitrate_bin(1.0) == 0
        assert space.bitrate_bin(3.0) == 0
        assert space.bitrate_bin(4.5) == 1
        assert space.bitrate_bin(6.0) == 1
        assert space.bitrate_bin(8.0) == 2


class TestPowerBins:
    def test_cap_split(self, space):
        assert space.num_power_bins == 2
        assert space.power_bin(space.power_cap_w - 1.0) == 0
        assert space.power_bin(space.power_cap_w) == 1
        assert space.power_bin(space.power_cap_w + 10.0) == 1


class TestDiscretize:
    def test_discretize_produces_consistent_state(self, space):
        state = space.discretize(obs(fps=27.0, psnr=42.0, bitrate=7.0, power=130.0))
        assert state == SystemState(fps_bin=2, psnr_bin=3, bitrate_bin=2, power_bin=1)

    def test_state_is_hashable_and_ordered(self, space):
        a = space.discretize(obs())
        b = space.discretize(obs())
        assert a == b
        assert hash(a) == hash(b)
        assert a.as_tuple() == (a.fps_bin, a.psnr_bin, a.bitrate_bin, a.power_bin)

    def test_size_and_enumeration(self, space):
        states = list(space.states())
        assert len(states) == space.size == 5 * 6 * 3 * 2
        assert len(set(states)) == space.size

    def test_every_observation_maps_into_the_space(self, space):
        for fps in (0.0, 24.0, 29.0, 60.0):
            for psnr in (10.0, 33.0, 49.0, 60.0):
                for bitrate in (0.0, 5.0, 50.0):
                    for power in (10.0, 200.0):
                        state = space.discretize(obs(fps, psnr, bitrate, power))
                        assert 0 <= state.fps_bin < space.num_fps_bins
                        assert 0 <= state.psnr_bin < space.num_psnr_bins
                        assert 0 <= state.bitrate_bin < space.num_bitrate_bins
                        assert 0 <= state.power_bin < space.num_power_bins


class TestValidation:
    def test_invalid_configurations_rejected(self):
        with pytest.raises(ConfigurationError):
            StateSpace(fps_target=0.0)
        with pytest.raises(ConfigurationError):
            StateSpace(power_cap_w=0.0)
        with pytest.raises(ConfigurationError):
            StateSpace(fps_margins=(4.0, 2.0))
        with pytest.raises(ConfigurationError):
            StateSpace(psnr_edges=(40.0, 30.0))
        with pytest.raises(ConfigurationError):
            StateSpace(bitrate_edges_mbps=(6.0, 3.0))


class TestDenseStateEncoding:
    def test_index_round_trips_over_the_whole_space(self, space):
        seen = set()
        for state in space.states():
            index = space.state_index(state)
            assert 0 <= index < space.size
            assert space.index_to_state(index) == state
            seen.add(index)
        assert len(seen) == space.size

    def test_enumeration_order_matches_indices(self, space):
        """states() iterates exactly in state_index order."""
        indices = [space.state_index(s) for s in space.states()]
        assert indices == list(range(space.size))

    def test_batch_indices_match_scalar(self, space):
        import numpy as np

        observations = [
            obs(fps=f, psnr=p, bitrate=b, power=w)
            for f in (10.0, 24.0, 27.0, 40.0)
            for p in (29.0, 41.0, 55.0)
            for b in (1.0, 7.0)
            for w in (80.0, 150.0)
        ]
        bins = space.discretize_batch(
            np.array([o.fps for o in observations]),
            np.array([o.psnr_db for o in observations]),
            np.array([o.bitrate_mbps for o in observations]),
            np.array([o.power_w for o in observations]),
        )
        batch = space.state_index_batch(bins)
        scalar = [space.state_index(space.discretize(o)) for o in observations]
        assert batch.tolist() == scalar

    def test_out_of_range_state_rejected(self, space):
        with pytest.raises(ConfigurationError):
            space.state_index(SystemState(space.num_fps_bins, 0, 0, 0))
        with pytest.raises(ConfigurationError):
            space.state_index(SystemState(0, 0, 0, -1))

    def test_out_of_range_index_rejected(self, space):
        with pytest.raises(ConfigurationError):
            space.index_to_state(space.size)
        with pytest.raises(ConfigurationError):
            space.index_to_state(-1)
