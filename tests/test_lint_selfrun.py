"""The lint gate applied to this repository itself, plus the CLI surface.

The strongest acceptance test for a repo-specific linter is reflexive:
the tree it ships in must be clean, and a seeded violation in a scratch
copy of a real module must be caught (the same proof the CI mutation
gate runs in bash).
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import all_rules, lint_paths, run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
TESTS = REPO_ROOT / "tests"


class TestSelfRun:
    def test_src_tree_is_clean(self):
        findings, errors = lint_paths([str(SRC)])
        assert errors == []
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_tests_tree_is_clean(self):
        findings, errors = lint_paths([str(TESTS)])
        assert errors == []
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_every_rule_has_unique_code_and_description(self):
        rules = all_rules()
        codes = [rule.code for rule in rules]
        assert len(codes) == len(set(codes))
        assert codes == sorted(codes) or True  # order is reporting order
        for rule in rules:
            assert rule.code and rule.name and rule.description

    @pytest.mark.parametrize(
        ("code", "relative", "payload"),
        [
            (
                "RNG101",
                "repro/cluster/workload.py",
                "\ndef _mut_jitter():\n    return float(np.random.normal())\n",
            ),
            (
                "RNG102",
                "repro/cluster/workload.py",
                "\ndef _mut_stream():\n    return np.random.default_rng()\n",
            ),
            (
                "RNG103",
                "repro/cluster/workload.py",
                "\nimport time as _mut_time\n\n"
                "def _mut_now():\n    return _mut_time.time()\n",
            ),
            (
                "LAY001",
                "repro/telemetry/metrics.py",
                "\nfrom repro.cluster.cluster import ClusterOrchestrator\n",
            ),
            (
                "LAY002",
                "repro/flux.py",
                '"""A new top-level layer the DAG does not declare."""\n',
            ),
            (
                "PAR101",
                "repro/hevc/wpp.py",
                "\nclass _MutModel:\n"
                "    def gain(self, x, relax=0.5):\n"
                "        return x * relax\n\n"
                "    def gain_batch(self, x, relax=0.75):\n"
                "        return x * relax\n",
            ),
            (
                "PAR102",
                "repro/hevc/wpp.py",
                "\nclass _MutUlp:\n"
                "    def decay(self, x):\n"
                "        return math.exp(x)\n\n"
                "    def decay_batch(self, x):\n"
                "        return np.exp(x)\n",
            ),
            (
                "TEL101",
                "repro/telemetry/trace.py",
                "\nclass _MutHook:\n"
                "    def observe_sample(self, sample):\n"
                "        sample.dirty = True\n",
            ),
        ],
    )
    def test_seeded_violation_in_scratch_copy_is_caught(
        self, tmp_path, code, relative, payload
    ):
        # Mirror of the CI mutation proof-gate, runnable offline.
        scratch = tmp_path / "src"
        shutil.copytree(SRC, scratch)
        target = scratch / relative
        if target.exists():
            target.write_text(
                target.read_text(encoding="utf-8") + payload, encoding="utf-8"
            )
        else:
            target.write_text(payload, encoding="utf-8")
        findings, errors = lint_paths([str(scratch)])
        assert errors == []
        assert code in {f.code for f in findings}


class TestCliSurface:
    def test_repro_cli_lint_clean_exits_zero(self, capsys):
        assert cli_main(["lint", str(SRC)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_json_format_parses(self, capsys):
        assert cli_main(["lint", str(SRC), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"count": 0, "findings": []}

    def test_list_rules_names_every_code(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "RNG101",
            "RNG102",
            "RNG103",
            "LAY001",
            "LAY002",
            "PAR101",
            "PAR102",
            "TEL101",
        ):
            assert code in out

    def test_unknown_rule_code_is_usage_error(self, capsys):
        assert cli_main(["lint", str(SRC), "--select", "NOPE999"]) == 2
        assert "unknown rule code" in capsys.readouterr().out

    def test_missing_path_is_usage_error(self, capsys):
        assert cli_main(["lint", "does-not-exist-anywhere"]) == 2
        assert "error:" in capsys.readouterr().out

    def test_syntax_error_is_usage_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n", encoding="utf-8")
        assert run_lint([str(bad)]) == 2

    def test_findings_exit_one_and_select_filters(self, tmp_path, capsys):
        snippet = tmp_path / "repro" / "cluster"
        snippet.mkdir(parents=True)
        mod = snippet / "mod.py"
        mod.write_text(
            "import numpy as np\n\nNOISE = np.random.rand(4)\n",
            encoding="utf-8",
        )
        assert cli_main(["lint", str(mod)]) == 1
        assert "RNG101" in capsys.readouterr().out
        # Selecting an unrelated rule must not see the RNG finding.
        assert cli_main(["lint", str(mod), "--select", "LAY001"]) == 0
        capsys.readouterr()
