"""Telemetry subsystem: tracing, metrics, profiler, and the no-op contract.

The load-bearing guarantees pinned here:

* **Lifecycle completeness** — every workload arrival ends in exactly one
  terminal span (served / rejected / dropped / abandoned), and the terminal
  counts reconcile with the :class:`~repro.metrics.cluster.ClusterSummary`
  admission ledger.
* **Seed-neutrality** — enabling any telemetry component changes nothing
  about the simulation: summaries are identical with telemetry on and off,
  and the scalar and batch engines emit the *same* span stream.
* **Determinism** — histograms use fixed bucket edges and the Prometheus
  rendering is byte-stable across identical runs.
* **Disabled mode is a no-op** — ``telemetry=None``, a default config and
  the shared disabled hub all produce bitwise-identical results.
"""

from __future__ import annotations

import json
import logging
import math
from collections import Counter as TallyCounter

import pytest

from repro.cluster import (
    CapacityThreshold,
    ClusterOrchestrator,
    FlashCrowdTraffic,
    WorkloadGenerator,
)
from repro.errors import ConfigurationError
from repro.manager.factories import static_factory
from repro.telemetry import (
    TERMINAL_KINDS,
    Counter,
    Gauge,
    Histogram,
    JsonlTraceSink,
    ListTraceSink,
    MetricsRegistry,
    NULL_PROFILER,
    NULL_REGISTRY,
    NULL_TRACER,
    RequestTracer,
    StepProfiler,
    Telemetry,
    TelemetryConfig,
    TimeSeriesRecorder,
    configure_logging,
    resolve_telemetry,
)
from repro.telemetry.metrics import QUEUE_WAIT_EDGES

SEED = 0
DURATION = 30


def make_cluster(seed: int = SEED) -> ClusterOrchestrator:
    """A flash-crowd scenario that exercises every terminal outcome.

    With this seed the run produces admitted, rejected, dropped *and*
    abandoned requests (asserted below), so one trace covers the whole
    lifecycle state machine.
    """
    workload = WorkloadGenerator(
        FlashCrowdTraffic(0.3, peak_multiplier=6.0, start=8, duration=10),
        seed=seed,
        frames_per_video=12,
        patience_steps=8,
    )
    return ClusterOrchestrator(
        2,
        workload,
        admission=CapacityThreshold(max_sessions_per_server=3, max_queue=5),
        controller_factory=static_factory(qp=32, threads=4, frequency_ghz=3.2),
        seed=seed,
    )


def run_traced(engine_seed: int = SEED, **config_kwargs):
    sink = config_kwargs.pop("sink", None) or ListTraceSink()
    cluster = make_cluster(engine_seed)
    result = cluster.run(
        DURATION,
        telemetry=TelemetryConfig(trace_sink=sink, **config_kwargs),
    )
    return cluster, result.summary(), sink


# -- request-lifecycle tracing -------------------------------------------------------


class TestTraceCompleteness:
    def test_scenario_exercises_every_terminal_outcome(self):
        _, summary, _ = run_traced()
        assert summary.admitted > 0
        assert summary.rejected > 0
        assert summary.dropped > 0
        assert summary.abandoned > 0

    def test_every_arrival_has_exactly_one_terminal_span(self):
        _, summary, sink = run_traced()
        arrivals = [span["request"] for span in sink.by_kind("arrival")]
        assert len(arrivals) == len(set(arrivals)) == summary.arrivals

        terminals = TallyCounter(
            span["request"] for span in sink.terminal_spans()
        )
        assert set(terminals) == set(arrivals)
        assert all(count == 1 for count in terminals.values())

    def test_terminal_counts_reconcile_with_summary_ledger(self):
        _, summary, sink = run_traced()
        by_kind = TallyCounter(span["kind"] for span in sink.terminal_spans())
        assert by_kind["served"] == summary.admitted
        assert by_kind["rejected"] == summary.rejected
        assert by_kind["dropped"] == summary.dropped
        assert by_kind["abandoned"] == summary.abandoned
        assert sum(by_kind.values()) == summary.arrivals

    def test_dispatched_spans_cover_exactly_the_admitted_requests(self):
        _, summary, sink = run_traced()
        dispatched = sink.by_kind("dispatched")
        assert len(dispatched) == summary.admitted
        served = {span["request"] for span in sink.by_kind("served")}
        assert {span["request"] for span in dispatched} == served

    def test_span_ordering_within_one_lifecycle(self):
        _, _, sink = run_traced()
        order = {
            "arrival": 0,
            "queued": 1,
            "rejected": 2,
            "dropped": 2,
            "abandoned": 2,
            "dispatched": 2,
            "video_complete": 3,
            "served": 4,
        }
        requests = {span["request"] for span in sink.by_kind("arrival")}
        for request_id in requests:
            spans = sink.for_request(request_id)
            assert spans[0]["kind"] == "arrival"
            assert spans[-1]["kind"] in TERMINAL_KINDS
            ranks = [order[span["kind"]] for span in spans]
            assert ranks == sorted(ranks), spans
            steps = [span["step"] for span in spans]
            assert steps == sorted(steps), spans

    def test_queue_waits_are_consistent(self):
        _, summary, sink = run_traced()
        waits = [span["wait_steps"] for span in sink.by_kind("dispatched")]
        assert all(w >= 0 for w in waits)
        assert max(waits) == summary.max_queue_wait_steps
        assert sum(waits) / len(waits) == pytest.approx(
            summary.mean_queue_wait_steps
        )

    def test_scalar_and_batch_engines_emit_identical_traces(self):
        streams = {}
        for engine in ("scalar", "batch"):
            sink = ListTraceSink()
            cluster = make_cluster()
            cluster.engine = engine
            cluster.run(DURATION, telemetry=TelemetryConfig(trace_sink=sink))
            streams[engine] = sink.spans
        assert streams["scalar"] == streams["batch"]


class TestTraceSinks:
    def test_jsonl_sink_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        cluster = make_cluster()
        result = cluster.run(
            DURATION, telemetry=TelemetryConfig(trace_path=str(path))
        )
        summary = result.summary()
        spans = [
            json.loads(line) for line in path.read_text().splitlines()
        ]
        assert spans, "the traced run must emit spans"
        assert cluster.telemetry.tracer.emitted == len(spans)
        for span in spans:
            assert set(span) >= {"kind", "step", "request"}
        terminals = [s for s in spans if s["kind"] in TERMINAL_KINDS]
        assert len(terminals) == summary.arrivals

    def test_jsonl_sink_is_lazy(self, tmp_path):
        path = tmp_path / "never.jsonl"
        sink = JsonlTraceSink(str(path))
        sink.close()
        assert not path.exists()

    def test_jsonl_sink_flushes_periodically(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlTraceSink(str(path), flush_every=3)
        for step in range(3):
            sink.write({"kind": "queued", "step": step, "request": "u"})
        # The third write crossed flush_every: all three lines are on disk
        # even though the sink is still open.
        assert len(path.read_text().splitlines()) == 3
        sink.write({"kind": "queued", "step": 3, "request": "u"})
        sink.flush()  # explicit flush pushes the partial batch
        assert len(path.read_text().splitlines()) == 4
        sink.close()

    def test_jsonl_sink_is_a_context_manager(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceSink(str(path)) as sink:
            sink.write({"kind": "queued", "step": 0, "request": "u"})
        # Leaving the block closed (and therefore flushed) the file.
        assert sink._handle is None
        assert len(path.read_text().splitlines()) == 1

    def test_jsonl_sink_rejects_bad_flush_every(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlTraceSink(str(tmp_path / "x.jsonl"), flush_every=0)

    def test_tracer_counts_emitted_spans(self):
        sink = ListTraceSink()
        tracer = RequestTracer(sink)
        tracer.emit("arrival", 3, "u1", frames=12)
        assert tracer.emitted == sink.count == 1
        assert sink.spans[0] == {
            "kind": "arrival", "step": 3, "request": "u1", "frames": 12,
        }


# -- metrics registry ----------------------------------------------------------------


class TestMetrics:
    def test_counter_monotonicity(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.inc(-2)
        assert gauge.value == 3.0

    def test_histogram_buckets_are_upper_bounds(self):
        hist = Histogram("h", edges=(1.0, 2.0, 4.0))
        for value in (0.0, 1.0, 1.5, 4.0, 99.0):
            hist.observe(value)
        assert hist.bucket_counts() == {1.0: 2, 2.0: 3, 4.0: 4, float("inf"): 5}
        assert hist.count == 5
        assert hist.sum == pytest.approx(105.5)

    def test_histogram_edges_are_frozen_and_validated(self):
        with pytest.raises(ValueError):
            Histogram("h", edges=())
        with pytest.raises(ValueError):
            Histogram("h", edges=(1.0, 1.0))

    def test_quantile_returns_exact_edge_on_cumulative_boundary(self):
        # 4 observations <= 1, 4 more in (1, 2]: the 0.5 rank lands exactly
        # on the first bucket's cumulative count, so the quantile is the
        # bucket's upper edge EXACTLY — no interpolation drift.
        hist = Histogram("h", edges=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.0, 1.0, 1.5, 1.5, 2.0, 2.0):
            hist.observe(value)
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(1.0) == 2.0

    def test_quantile_interpolates_within_a_bucket(self):
        hist = Histogram("h", edges=(0.0, 4.0))
        for value in (2.0, 2.0, 2.0, 2.0):
            hist.observe(value)
        # All mass in (0, 4]: the median interpolates to the bucket middle.
        assert hist.quantile(0.5) == 2.0
        # The first bucket anchors at min(0, edge), never below zero.
        hist2 = Histogram("h2", edges=(4.0,))
        hist2.observe(1.0)
        assert 0.0 <= hist2.quantile(0.25) <= 4.0

    def test_quantile_edge_cases(self):
        hist = Histogram("h", edges=(1.0, 2.0))
        assert math.isnan(hist.quantile(0.5))  # empty histogram
        hist.observe(99.0)  # overflow bucket
        assert hist.quantile(0.99) == 2.0  # clamps to the last finite edge
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_registry_rejects_kind_mismatch(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")
        with pytest.raises(ValueError):
            registry.histogram("x", edges=(1.0,))

    def test_registry_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", labels={"class": "HR"})
        b = registry.counter("hits", labels={"class": "HR"})
        c = registry.counter("hits", labels={"class": "LR"})
        assert a is b and a is not c

    def test_histogram_determinism_across_identical_runs(self):
        """Same seed, same workload → byte-identical Prometheus output."""
        renders = []
        for _ in range(2):
            cluster = make_cluster()
            cluster.run(DURATION, telemetry=TelemetryConfig(metrics=True))
            renders.append(cluster.telemetry.metrics.to_prometheus())
        assert renders[0] == renders[1]
        assert 'le="+Inf"' in renders[0]

    def test_cluster_publishes_the_admission_ledger(self):
        cluster = make_cluster()
        summary = cluster.run(
            DURATION, telemetry=TelemetryConfig(metrics=True)
        ).summary()
        snapshot = cluster.telemetry.metrics.scalar_snapshot()
        assert snapshot["repro_arrivals_total"] == summary.arrivals
        assert snapshot["repro_admitted_total"] == summary.admitted
        assert snapshot["repro_rejected_total"] == summary.rejected
        assert snapshot["repro_dropped_total"] == summary.dropped
        wait_hist = next(
            m
            for m in cluster.telemetry.metrics.collect()
            if m.name == "repro_queue_wait_steps"
        )
        assert wait_hist.edges == QUEUE_WAIT_EDGES
        assert wait_hist.count == summary.admitted

    def test_prometheus_export_file(self, tmp_path):
        path = tmp_path / "metrics.prom"
        cluster = make_cluster()
        cluster.run(DURATION, telemetry=TelemetryConfig(metrics_path=str(path)))
        text = path.read_text()
        assert "# TYPE repro_arrivals_total counter" in text
        assert "# TYPE repro_queue_length gauge" in text
        assert "# TYPE repro_queue_wait_steps histogram" in text
        assert "repro_queue_wait_steps_count" in text

    def test_time_series_recorder(self):
        cluster = make_cluster()
        result = cluster.run(
            DURATION, telemetry=TelemetryConfig(metrics=True, record_series=True)
        )
        recorder = cluster.telemetry.recorder
        assert isinstance(recorder, TimeSeriesRecorder)
        assert len(recorder.steps) == result.summary().steps
        arrivals = recorder.series("repro_arrivals_total")
        assert arrivals == sorted(arrivals), "counters are monotone"
        assert arrivals[-1] == result.summary().arrivals
        data = recorder.to_dict()
        assert set(data) == {"steps", "series"}
        assert len(data["series"]["repro_queue_length"]) == len(data["steps"])


# -- step profiler -------------------------------------------------------------------


class TestProfiler:
    def test_batch_engine_phase_attribution(self):
        cluster = make_cluster()
        cluster.run(DURATION, telemetry=TelemetryConfig(profile=True))
        report = cluster.telemetry.profiler.report()
        phases = {phase["name"] for phase in report["phases"]}
        assert {"gather", "evaluate", "scatter"} <= phases
        assert report["steps"] > 0
        assert report["steps_per_s"] > 0
        assert all(p["calls"] > 0 and p["total_s"] >= 0 for p in report["phases"])
        assert sum(p["share"] for p in report["phases"]) == pytest.approx(1.0)

    def test_scalar_engine_phase_attribution(self):
        cluster = make_cluster()
        cluster.engine = "scalar"
        cluster.run(DURATION, telemetry=TelemetryConfig(profile=True))
        phases = {
            p["name"] for p in cluster.telemetry.profiler.report()["phases"]
        }
        assert {"decide", "allocate", "execute"} <= phases

    def test_null_profiler_reports_nothing(self):
        assert not NULL_PROFILER.enabled
        with NULL_PROFILER.phase("anything"):
            pass
        report = NULL_PROFILER.report()
        assert report["steps"] == 0 and report["phases"] == []

    def test_step_profiler_counts(self):
        profiler = StepProfiler()
        with profiler.phase("a"):
            pass
        with profiler.phase("a"):
            pass
        profiler.count_step()
        report = profiler.report()
        assert report["steps"] == 1
        (phase,) = report["phases"]
        assert phase["name"] == "a" and phase["calls"] == 2


# -- disabled mode is a no-op --------------------------------------------------------


class TestDisabledMode:
    def test_disabled_spellings_are_bitwise_identical(self):
        """None, a default config, and the shared hub all change nothing."""
        summaries = []
        for telemetry in (None, TelemetryConfig(), Telemetry.disabled()):
            cluster = make_cluster()
            summaries.append(cluster.run(DURATION, telemetry=telemetry).summary())
        assert summaries[0] == summaries[1] == summaries[2]

    def test_enabling_telemetry_is_seed_neutral(self):
        """Full observability changes nothing about the simulation."""
        baseline = make_cluster().run(DURATION).summary()
        cluster = make_cluster()
        observed = cluster.run(
            DURATION,
            telemetry=TelemetryConfig(
                trace_sink=ListTraceSink(),
                metrics=True,
                profile=True,
                record_series=True,
            ),
        ).summary()
        assert observed == baseline

    def test_seed_neutral_on_scalar_engine_too(self):
        baseline_cluster = make_cluster()
        baseline_cluster.engine = "scalar"
        baseline = baseline_cluster.run(DURATION).summary()
        traced_cluster = make_cluster()
        traced_cluster.engine = "scalar"
        traced = traced_cluster.run(
            DURATION,
            telemetry=TelemetryConfig(trace_sink=ListTraceSink(), metrics=True),
        ).summary()
        assert traced == baseline

    def test_null_objects_expose_disabled_flags(self):
        assert not NULL_TRACER.enabled
        assert not NULL_REGISTRY.enabled
        assert not NULL_PROFILER.enabled
        assert not Telemetry.disabled().enabled
        NULL_TRACER.emit("arrival", 0, "u1")
        assert NULL_TRACER.emitted == 0
        assert NULL_REGISTRY.counter("x") is NULL_REGISTRY.gauge("y")
        assert NULL_REGISTRY.to_prometheus() == ""

    def test_resolve_telemetry_contract(self):
        assert resolve_telemetry(None) is Telemetry.disabled()
        assert resolve_telemetry(TelemetryConfig()) is Telemetry.disabled()
        hub = TelemetryConfig(metrics=True).build()
        assert resolve_telemetry(hub) is hub
        with pytest.raises(TypeError):
            resolve_telemetry("yes please")

    def test_finalize_is_idempotent(self, tmp_path):
        path = tmp_path / "metrics.prom"
        hub = TelemetryConfig(metrics_path=str(path)).build()
        hub.metrics.counter("repro_x_total").inc()
        hub.finalize()
        first = path.read_text()
        hub.metrics.counter("repro_x_total").inc()
        hub.finalize()
        assert path.read_text() == first
        Telemetry.disabled().finalize()  # never raises, never writes


# -- logging setup -------------------------------------------------------------------


class TestLogging:
    def test_configure_logging_is_idempotent(self):
        configure_logging("info")
        logger = logging.getLogger("repro")
        handlers = list(logger.handlers)
        configure_logging("debug")
        assert logger.handlers == handlers
        assert logger.level == logging.DEBUG
        assert not logger.propagate

    def test_unknown_level_is_rejected(self):
        with pytest.raises(ValueError):
            configure_logging("loud")


# -- output-path validation ----------------------------------------------------------


class TestOutputPathValidation:
    """Bad ``--trace-out``/``--metrics-out`` paths fail at run *start*.

    Telemetry sinks open lazily and metrics flush at ``finalize()``; without
    up-front validation a typo'd directory would burn the whole run before
    raising.  ``TelemetryConfig.build()`` therefore validates both paths
    eagerly — and side-effect free (no file is created by the check).
    """

    def test_missing_parent_directory_is_rejected(self, tmp_path):
        bad = tmp_path / "no" / "such" / "dir" / "trace.jsonl"
        with pytest.raises(ConfigurationError, match="trace_path"):
            TelemetryConfig(trace_path=str(bad)).build()
        with pytest.raises(ConfigurationError, match="metrics_path"):
            TelemetryConfig(metrics_path=str(bad)).build()

    def test_directory_target_is_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="is a directory"):
            TelemetryConfig(trace_path=str(tmp_path)).build()

    def test_validation_creates_nothing(self, tmp_path):
        target = tmp_path / "trace.jsonl"
        hub = TelemetryConfig(trace_path=str(target)).build()
        assert not target.exists()  # sink stays lazy; check left no droppings
        hub.finalize()

    def test_valid_paths_build_and_write(self, tmp_path):
        hub = TelemetryConfig(
            trace_path=str(tmp_path / "trace.jsonl"),
            metrics_path=str(tmp_path / "metrics.prom"),
        ).build()
        hub.metrics.counter("repro_ok_total").inc()
        hub.finalize()
        assert (tmp_path / "metrics.prom").exists()

    def test_disabled_config_skips_validation(self):
        # No outputs requested: nothing to validate, never raises.
        assert not TelemetryConfig().build().enabled
