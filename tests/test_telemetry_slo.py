"""Online SLO engine (repro.telemetry.slo).

Pins the objective math (rolling windows, error budgets, burn rates), the
gauge and breach-span surfaces, the ``TelemetryConfig.slo`` wiring, and —
the load-bearing contract — that SLO evaluation is observe-only: a run
with objectives enabled is bitwise identical to a bare run, on both
stepping engines.
"""

from __future__ import annotations

import pytest

from repro.cluster import (
    CapacityThreshold,
    ClusterOrchestrator,
    FlashCrowdTraffic,
    WorkloadGenerator,
)
from repro.errors import ConfigurationError
from repro.manager.factories import static_factory
from repro.telemetry import (
    ListTraceSink,
    MetricsRegistry,
    QueueWaitObjective,
    RequestTracer,
    ShedRateObjective,
    SloEngine,
    TelemetryConfig,
    ViolationRateObjective,
)

WINDOW = 4


def make_engine(objective, registry=None, tracer=None):
    return SloEngine(
        [objective],
        metrics=registry if registry is not None else MetricsRegistry(),
        tracer=tracer if tracer is not None else RequestTracer(ListTraceSink()),
    )


def feed(engine, step, *, waits=(), arrivals=0, rejected=0, dropped=0,
         failed=0, frames=0, violations=0, all_waits=None):
    """One observe_step call with cumulative bookkeeping handled for tests."""
    engine.observe_step(
        step,
        queue_waits=all_waits if all_waits is not None else list(waits),
        arrivals=arrivals,
        rejected_total=rejected,
        dropped=dropped,
        failed_total=failed,
        frames=frames,
        violations=violations,
    )


class TestObjectiveValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            QueueWaitObjective(name="")
        with pytest.raises(ConfigurationError):
            QueueWaitObjective(name="w", window_steps=0)
        with pytest.raises(ConfigurationError):
            QueueWaitObjective(name="w", error_budget_pct=0.0)
        with pytest.raises(ConfigurationError):
            QueueWaitObjective(name="w", error_budget_pct=150.0)
        with pytest.raises(ConfigurationError):
            QueueWaitObjective(name="w", quantile=1.5)

    def test_rejects_duplicate_names(self):
        with pytest.raises(ConfigurationError):
            SloEngine([ShedRateObjective(name="x"), QueueWaitObjective(name="x")])

    def test_config_rejects_non_objectives(self):
        with pytest.raises(ConfigurationError):
            TelemetryConfig(slo=("not-an-objective",)).build()


class TestObjectiveMath:
    def test_shed_rate_over_window(self):
        objective = ShedRateObjective(
            name="shed", max_pct=25.0, window_steps=2, error_budget_pct=50.0
        )
        engine = make_engine(objective)
        feed(engine, 0, arrivals=4, rejected=1)  # 25% — at threshold, healthy
        assert engine.report()[0]["last_value"] == 25.0
        assert engine.report()[0]["breach_steps"] == 0
        feed(engine, 1, arrivals=4, rejected=4)  # window: 4 shed / 8 arrivals
        assert engine.report()[0]["last_value"] == 50.0
        assert engine.report()[0]["breach_steps"] == 1
        # Window slides: the old healthy step falls out.
        feed(engine, 2, arrivals=4, rejected=4)
        assert engine.report()[0]["last_value"] == pytest.approx(37.5)

    def test_shed_rate_idle_window_reads_zero(self):
        engine = make_engine(ShedRateObjective(name="shed", max_pct=1.0))
        feed(engine, 0)
        report = engine.report()[0]
        assert report["last_value"] == 0.0 and report["breach_steps"] == 0

    def test_violation_rate_over_window(self):
        objective = ViolationRateObjective(
            name="qos", max_pct=10.0, window_steps=8, error_budget_pct=50.0
        )
        engine = make_engine(objective)
        feed(engine, 0, frames=90, violations=0)
        feed(engine, 1, frames=10, violations=20)
        # 20 violations over 100 frames = 20% > 10%
        report = engine.report()[0]
        assert report["last_value"] == 20.0
        assert report["breach_steps"] == 1

    def test_queue_wait_quantile_uses_histogram(self):
        objective = QueueWaitObjective(
            name="wait", max_steps=2.0, quantile=0.5, window_steps=4,
            error_budget_pct=50.0,
        )
        engine = make_engine(objective)
        waits = [0, 0, 0, 0]
        feed(engine, 0, all_waits=waits)
        assert engine.report()[0]["last_value"] == 0.0
        waits += [8, 8, 8, 8, 8]
        feed(engine, 1, all_waits=waits)
        # Median of {0 x4, 8 x5} interpolates into the (4, 8] bucket.
        report = engine.report()[0]
        assert report["last_value"] > 2.0
        assert report["breach_steps"] == 1

    def test_queue_wait_empty_window_is_healthy(self):
        engine = make_engine(QueueWaitObjective(name="wait", max_steps=0.5))
        feed(engine, 0, all_waits=[])
        assert engine.report()[0]["breach_steps"] == 0


class TestBudgetAndBurn:
    def objective(self):
        # 50% budget over a window of 2: breaching every step burns at 2x.
        return ShedRateObjective(
            name="shed", max_pct=10.0, window_steps=2, error_budget_pct=50.0
        )

    def test_budget_consumption_and_health(self):
        engine = make_engine(self.objective())
        for step in range(4):  # shed 100% of arrivals every step
            feed(engine, step, arrivals=2, rejected=2 * (step + 1))
        report = engine.report()[0]
        assert report["steps"] == 4
        assert report["breach_steps"] == 4
        # 4 breach steps vs an allowance of 0.5 * 4 = 2 -> 200% consumed.
        assert report["budget_consumed_pct"] == 200.0
        assert report["max_burn_rate"] == 2.0
        assert not report["healthy"]

    def test_within_budget_is_healthy(self):
        engine = make_engine(self.objective())
        feed(engine, 0, arrivals=2, rejected=2)   # breach
        # Step 1 sheds nothing new, but the window still sees step 0's
        # shed (2/4 = 50%): sustained-pressure smoothing works both ways.
        feed(engine, 1, arrivals=2, rejected=2)
        feed(engine, 2, arrivals=2, rejected=2)   # window clear: healthy
        feed(engine, 3, arrivals=2, rejected=2)   # healthy
        report = engine.report()[0]
        assert report["breach_steps"] == 2
        assert report["budget_consumed_pct"] == 100.0
        assert report["healthy"]


class TestSurfaces:
    def test_gauges_published_with_slo_label(self):
        registry = MetricsRegistry()
        engine = make_engine(
            ShedRateObjective(name="shed", max_pct=10.0), registry=registry
        )
        feed(engine, 0, arrivals=1, rejected=1)
        snapshot = registry.scalar_snapshot()
        for gauge in ("repro_slo_value", "repro_slo_breached",
                      "repro_slo_burn_rate", "repro_slo_budget_consumed_pct"):
            assert f'{gauge}{{slo="shed"}}' in snapshot
        assert snapshot['repro_slo_value{slo="shed"}'] == 100.0
        assert snapshot['repro_slo_breached{slo="shed"}'] == 1.0

    def test_breach_span_on_entry_only(self):
        sink = ListTraceSink()
        engine = make_engine(
            ShedRateObjective(name="shed", max_pct=10.0, window_steps=1),
            tracer=RequestTracer(sink),
        )
        feed(engine, 0, arrivals=1, rejected=1)   # enter breach
        feed(engine, 1, arrivals=1, rejected=2)   # still breached: no new span
        feed(engine, 2, arrivals=1, rejected=2)   # recover
        feed(engine, 3, arrivals=1, rejected=3)   # re-enter breach
        breaches = sink.by_kind("slo_breach")
        assert [span["step"] for span in breaches] == [0, 3]
        span = breaches[0]
        assert span["request"] == "slo-shed"
        assert span["slo"] == "shed"
        assert span["value"] == 100.0
        assert span["threshold"] == 10.0

    def test_report_carries_objective_description(self):
        engine = make_engine(QueueWaitObjective(name="w", max_steps=4.0))
        report = engine.report()[0]
        assert "p95 queue wait" in report["objective"]
        assert report["threshold"] == 4.0


# -- cluster wiring ------------------------------------------------------------------


def make_cluster(seed: int = 0, engine: str = "scalar") -> ClusterOrchestrator:
    workload = WorkloadGenerator(
        FlashCrowdTraffic(0.3, peak_multiplier=6.0, start=8, duration=10),
        seed=seed,
        frames_per_video=12,
        patience_steps=8,
    )
    return ClusterOrchestrator(
        2,
        workload,
        admission=CapacityThreshold(max_sessions_per_server=3, max_queue=5),
        controller_factory=static_factory(qp=32, threads=4, frequency_ghz=3.2),
        seed=seed,
        engine=engine,
    )


OBJECTIVES = (
    QueueWaitObjective(name="wait", max_steps=2.0, window_steps=8,
                       error_budget_pct=10.0),
    ShedRateObjective(name="shed", max_pct=5.0, window_steps=8,
                      error_budget_pct=10.0),
    ViolationRateObjective(name="qos", max_pct=25.0, window_steps=8,
                           error_budget_pct=10.0),
)


class TestClusterWiring:
    @pytest.mark.parametrize("engine", ["scalar", "batch"])
    def test_slo_runs_are_bitwise_identical(self, engine):
        bare = make_cluster(engine=engine).run(30)
        instrumented = make_cluster(engine=engine).run(
            30, telemetry=TelemetryConfig(slo=OBJECTIVES)
        )
        assert bare.summary().to_dict() == instrumented.summary().to_dict()
        assert bare.queue_waits == instrumented.queue_waits
        assert bare.records_by_server == instrumented.records_by_server
        assert bare.fleet_trace == instrumented.fleet_trace

    def test_slo_config_implies_metrics_registry(self):
        telemetry = TelemetryConfig(slo=OBJECTIVES).build()
        assert telemetry.metrics.enabled
        assert telemetry.slo is not None
        assert telemetry.enabled

    def test_engine_judges_every_step_and_reports(self):
        cluster = make_cluster()
        result = cluster.run(30, telemetry=TelemetryConfig(slo=OBJECTIVES))
        info = cluster.telemetry.summary()
        assert "slo" in info
        report = {row["name"]: row for row in info["slo"]}
        assert set(report) == {"wait", "shed", "qos"}
        # Every step was judged, including the drain tail.
        assert all(row["steps"] == result.steps for row in report.values())
        # The flash-crowd scenario sheds far more than 5% — the objective
        # must notice.
        assert report["shed"]["breach_steps"] > 0
        assert not report["shed"]["healthy"]

    def test_breach_spans_interleave_with_request_spans(self):
        sink = ListTraceSink()
        cluster = make_cluster()
        cluster.run(
            30, telemetry=TelemetryConfig(trace_sink=sink, slo=OBJECTIVES)
        )
        breaches = sink.by_kind("slo_breach")
        assert breaches
        assert all(span["request"].startswith("slo-") for span in breaches)

    def test_recorder_sees_slo_gauges(self):
        cluster = make_cluster()
        cluster.run(
            30,
            telemetry=TelemetryConfig(slo=OBJECTIVES, record_series=True),
        )
        recorder = cluster.telemetry.recorder
        series = recorder.series('repro_slo_breached{slo="shed"}')
        assert len(series) == len(recorder.steps)
        assert max(series) == 1.0  # the breach is visible step-by-step

    def test_deterministic_report_across_identical_runs(self):
        def report():
            cluster = make_cluster()
            cluster.run(30, telemetry=TelemetryConfig(slo=OBJECTIVES))
            return cluster.telemetry.summary()["slo"]

        assert report() == report()
