"""Unit tests for repro.core.learning_rate (paper Eq. 3)."""

from __future__ import annotations

import pytest

from repro.core.learning_rate import LearningRateFunction, LearningRateParameters
from repro.errors import ConfigurationError


class TestLearningRateParameters:
    def test_paper_defaults(self):
        params = LearningRateParameters()
        assert params.beta == pytest.approx(0.3)
        assert params.beta_prime == pytest.approx(0.2)
        assert params.alpha_th1 == pytest.approx(0.1)
        assert params.alpha_th2 == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LearningRateParameters(beta=0.0)
        with pytest.raises(ConfigurationError):
            LearningRateParameters(beta_prime=-0.1)
        with pytest.raises(ConfigurationError):
            LearningRateParameters(alpha_th1=0.05, alpha_th2=0.1)


class TestAlpha:
    def test_equation_three(self):
        """alpha = beta/Num(s,a) + beta'/(1 + sum_j min_a Num_j(a))."""
        function = LearningRateFunction()
        assert function.alpha(3, [2, 5]) == pytest.approx(0.3 / 3 + 0.2 / (1 + 7))

    def test_first_visit_is_clamped_to_one(self):
        function = LearningRateFunction()
        assert function.alpha(0, []) <= 1.0

    def test_decreases_with_own_visits(self):
        function = LearningRateFunction()
        values = [function.alpha(n, [3, 3]) for n in (1, 2, 5, 20)]
        assert values == sorted(values, reverse=True)

    def test_decreases_with_peer_coverage(self):
        """The second term keeps alpha high until the peers have tried all
        their actions (paper Sec. IV-B)."""
        function = LearningRateFunction()
        uncovered = function.alpha(10, [0, 0])
        covered = function.alpha(10, [5, 5])
        assert uncovered > covered
        assert uncovered >= 0.2  # beta'/(1+0) alone keeps it at 0.2

    def test_mono_agent_has_no_peer_term(self):
        function = LearningRateFunction(LearningRateParameters(beta_prime=0.0))
        assert function.alpha(3, []) == pytest.approx(0.1)

    def test_thresholds(self):
        function = LearningRateFunction()
        assert function.below_exploration_threshold(0.09)
        assert not function.below_exploration_threshold(0.11)
        assert function.below_exploitation_threshold(0.049)
        assert not function.below_exploitation_threshold(0.051)

    def test_validation(self):
        function = LearningRateFunction()
        with pytest.raises(ConfigurationError):
            function.alpha(-1, [])
        with pytest.raises(ConfigurationError):
            function.alpha(1, [-2])
