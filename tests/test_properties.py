"""Property-based tests (hypothesis) for core invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.observation import Observation, average_observations
from repro.core.qtable import QTable
from repro.core.rewards import RewardFunction
from repro.core.states import StateSpace, SystemState
from repro.core.transitions import TransitionModel
from repro.hevc.complexity import ComplexityModel
from repro.hevc.params import EncoderConfig
from repro.hevc.rd_model import RateDistortionModel
from repro.hevc.wpp import WppModel
from repro.platform.power import PowerModel, VoltageTable
from repro.platform.topology import CpuTopology
from repro.video.content import FrameContent
from repro.video.sequence import Frame


# -- strategies -----------------------------------------------------------------

qp_values = st.integers(min_value=0, max_value=51)
complexities = st.floats(min_value=0.4, max_value=2.0, allow_nan=False)
motions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
frequencies = st.floats(min_value=1.2, max_value=3.2, allow_nan=False)
observations = st.builds(
    Observation,
    fps=st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
    psnr_db=st.floats(min_value=0.0, max_value=80.0, allow_nan=False),
    bitrate_mbps=st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    power_w=st.floats(min_value=0.0, max_value=500.0, allow_nan=False),
)


def frame_from(complexity: float, motion: float, scene_change: bool = False) -> Frame:
    return Frame(
        index=0,
        width=1920,
        height=1080,
        content=FrameContent(complexity=complexity, motion=motion, scene_change=scene_change),
    )


# -- RD / complexity models -------------------------------------------------------

@given(qp=st.integers(min_value=0, max_value=50), complexity=complexities, motion=motions)
@settings(max_examples=80)
def test_psnr_monotonically_decreases_with_qp(qp, complexity, motion):
    model = RateDistortionModel()
    frame = frame_from(complexity, motion)
    low = model.psnr_db(frame, EncoderConfig(qp=qp, threads=1))
    high = model.psnr_db(frame, EncoderConfig(qp=qp + 1, threads=1))
    assert high <= low + 1e-9


@given(qp=st.integers(min_value=0, max_value=50), complexity=complexities, motion=motions)
@settings(max_examples=80)
def test_bitrate_monotonically_decreases_with_qp(qp, complexity, motion):
    model = RateDistortionModel()
    frame = frame_from(complexity, motion)
    low = model.frame_bits(frame, EncoderConfig(qp=qp, threads=1))
    high = model.frame_bits(frame, EncoderConfig(qp=qp + 1, threads=1))
    assert high <= low


@given(qp=qp_values, complexity=complexities, motion=motions, scene=st.booleans())
@settings(max_examples=80)
def test_encode_cycles_are_positive_and_finite(qp, complexity, motion, scene):
    model = ComplexityModel()
    cycles = model.encode_cycles(frame_from(complexity, motion, scene), EncoderConfig(qp=qp, threads=1))
    assert cycles > 0
    assert math.isfinite(cycles)


@given(
    threads=st.integers(min_value=1, max_value=32),
    width=st.sampled_from([832, 1280, 1920, 3840]),
    height=st.sampled_from([480, 720, 1080, 2160]),
)
@settings(max_examples=100)
def test_wpp_speedup_bounds(threads, width, height):
    model = WppModel()
    speedup = model.speedup(threads, width, height)
    assert 1.0 <= speedup <= threads + 1e-9
    assert speedup <= model.ctu_rows(height) + 1e-9


# -- platform ---------------------------------------------------------------------

@given(frequency=frequencies)
@settings(max_examples=60)
def test_voltage_and_dynamic_scale_bounded(frequency):
    table = VoltageTable()
    assert 0.0 < table.relative_voltage(frequency) <= 1.0
    assert 0.0 < table.relative_dynamic(frequency) <= 1.0


@given(
    frequency=frequencies,
    activity=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    smt=st.integers(min_value=1, max_value=2),
)
@settings(max_examples=60)
def test_core_power_positive_and_bounded(frequency, activity, smt):
    model = PowerModel()
    power = model.busy_core_power(frequency, activity, smt)
    assert 0.0 < power < 20.0


@given(threads=st.integers(min_value=0, max_value=128))
@settings(max_examples=60)
def test_topology_capacity_and_scale_invariants(threads):
    topology = CpuTopology()
    capacity = topology.effective_capacity(threads)
    assert 0.0 <= capacity <= topology.hardware_threads
    scale = topology.contention_scale(threads)
    assert 0.0 < scale <= 1.0
    if threads <= topology.physical_cores:
        assert scale == 1.0


# -- state space / rewards ----------------------------------------------------------

@given(observation=observations)
@settings(max_examples=100)
def test_discretization_always_lands_in_the_state_space(observation):
    space = StateSpace()
    state = space.discretize(observation)
    assert 0 <= state.fps_bin < space.num_fps_bins
    assert 0 <= state.psnr_bin < space.num_psnr_bins
    assert 0 <= state.bitrate_bin < space.num_bitrate_bins
    assert 0 <= state.power_bin < space.num_power_bins


@given(observation=observations)
@settings(max_examples=100)
def test_reward_terms_are_bounded(observation):
    rewards = RewardFunction()
    breakdown = rewards.breakdown(observation)
    for term in (breakdown.fps, breakdown.psnr, breakdown.bitrate, breakdown.power):
        assert -4.0 <= term <= 1.0
    assert -16.0 <= breakdown.total <= 4.0


@given(st.lists(observations, min_size=1, max_size=20))
@settings(max_examples=60)
def test_average_observation_stays_within_the_component_ranges(batch):
    averaged = average_observations(batch)
    for attribute in ("fps", "psnr_db", "bitrate_mbps", "power_w"):
        values = [getattr(o, attribute) for o in batch]
        assert min(values) - 1e-9 <= getattr(averaged, attribute) <= max(values) + 1e-9


# -- tabular learning ------------------------------------------------------------------

@given(
    initial=st.floats(min_value=-10, max_value=10, allow_nan=False),
    target=st.floats(min_value=-10, max_value=10, allow_nan=False),
    alpha=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
)
@settings(max_examples=100)
def test_q_update_moves_towards_the_target(initial, target, alpha):
    table = QTable(num_actions=1)
    state = SystemState(0, 0, 0, 0)
    table.set(state, 0, initial)
    new_value = table.update_towards(state, 0, target, alpha)
    assert abs(new_value - target) <= abs(initial - target) + 1e-9


@given(
    transitions=st.lists(
        st.integers(min_value=0, max_value=4), min_size=1, max_size=50
    )
)
@settings(max_examples=60)
def test_transition_probabilities_form_a_distribution(transitions):
    model = TransitionModel(num_actions=1)
    source = SystemState(0, 0, 0, 0)
    for target_bin in transitions:
        model.record(source, 0, SystemState(target_bin, 0, 0, 0))
    distribution = model.distribution(source, 0)
    assert sum(distribution.values()) == pytest.approx(1.0)
    assert all(0.0 < p <= 1.0 for p in distribution.values())


import pytest  # noqa: E402  (used by approx above)
