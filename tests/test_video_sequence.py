"""Unit tests for repro.video.sequence."""

from __future__ import annotations

import pytest

from repro.constants import HR_RESOLUTION, LR_RESOLUTION
from repro.errors import VideoError
from repro.video.content import ContentProfile
from repro.video.sequence import Frame, ResolutionClass, VideoSequence
from repro.video.content import FrameContent


class TestResolutionClass:
    def test_dimensions(self):
        assert ResolutionClass.HR.dimensions == HR_RESOLUTION
        assert ResolutionClass.LR.dimensions == LR_RESOLUTION

    def test_from_exact_dimensions(self):
        assert ResolutionClass.from_dimensions(1920, 1080) is ResolutionClass.HR
        assert ResolutionClass.from_dimensions(832, 480) is ResolutionClass.LR

    def test_from_nearby_dimensions(self):
        assert ResolutionClass.from_dimensions(1280, 720) is ResolutionClass.LR
        assert ResolutionClass.from_dimensions(2560, 1440) is ResolutionClass.HR


class TestFrame:
    def test_properties(self):
        frame = Frame(
            index=3,
            width=1920,
            height=1080,
            content=FrameContent(complexity=1.2, motion=0.6, scene_change=True),
        )
        assert frame.pixels == 1920 * 1080
        assert frame.complexity == pytest.approx(1.2)
        assert frame.motion == pytest.approx(0.6)
        assert frame.is_scene_change is True


class TestVideoSequence:
    def make(self, **kwargs) -> VideoSequence:
        defaults = dict(
            name="test", width=1920, height=1080, frame_rate=24.0, num_frames=30, seed=0
        )
        defaults.update(kwargs)
        return VideoSequence(**defaults)

    def test_length_and_iteration(self):
        sequence = self.make(num_frames=25)
        assert len(sequence) == 25
        assert len(list(sequence)) == 25
        assert sequence[0].index == 0
        assert sequence[24].index == 24

    def test_frames_are_resolution_consistent(self):
        sequence = self.make()
        assert all(f.width == 1920 and f.height == 1080 for f in sequence)

    def test_resolution_class(self):
        assert self.make().resolution_class is ResolutionClass.HR
        assert self.make(width=832, height=480).resolution_class is ResolutionClass.LR

    def test_duration(self):
        sequence = self.make(num_frames=48, frame_rate=24.0)
        assert sequence.duration_seconds == pytest.approx(2.0)

    def test_reproducible_with_seed(self):
        a = self.make(seed=11)
        b = self.make(seed=11)
        assert [f.complexity for f in a] == [f.complexity for f in b]

    def test_different_seed_changes_content(self):
        a = self.make(seed=1, profile=ContentProfile(variability=0.1))
        b = self.make(seed=2, profile=ContentProfile(variability=0.1))
        assert [f.complexity for f in a] != [f.complexity for f in b]

    def test_mean_statistics(self):
        sequence = self.make(profile=ContentProfile(complexity=1.3, variability=0.0))
        assert sequence.mean_complexity == pytest.approx(1.3)
        assert 0.0 <= sequence.mean_motion <= 1.0

    def test_invalid_resolution_raises(self):
        with pytest.raises(VideoError):
            self.make(width=0)
        with pytest.raises(VideoError):
            self.make(height=-1)

    def test_invalid_frame_rate_raises(self):
        with pytest.raises(VideoError):
            self.make(frame_rate=0)

    def test_invalid_num_frames_raises(self):
        with pytest.raises(VideoError):
            self.make(num_frames=0)

    def test_frames_property_is_a_copy_view(self):
        sequence = self.make()
        frames = sequence.frames
        assert isinstance(frames, tuple)
        assert len(frames) == len(sequence)
