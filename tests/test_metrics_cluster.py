"""Unit tests for repro.metrics.cluster aggregation."""

from __future__ import annotations

import pytest

from repro.metrics.cluster import ClusterSummary, summarize_cluster
from repro.metrics.records import FleetSample, FrameRecord, PowerSample, ScalingEvent
from repro.video.sequence import ResolutionClass


def record(session_id, step, fps, target_fps=24.0):
    return FrameRecord(
        session_id=session_id,
        step=step,
        video_name="Synthetic",
        frame_index=step,
        resolution_class=ResolutionClass.HR,
        qp=32,
        threads=4,
        frequency_ghz=3.2,
        fps=fps,
        psnr_db=40.0,
        bitrate_mbps=4.0,
        encode_time_s=1.0 / max(fps, 1e-6),
        power_w=80.0,
        target_fps=target_fps,
    )


def sample(step, power_w, active, duration_s=0.04):
    return PowerSample(
        step=step, power_w=power_w, duration_s=duration_s, active_sessions=active
    )


def fleet_sample(
    step,
    live,
    *,
    dispatchable=None,
    warming=0,
    draining=0,
    queue=0,
    frames=0,
    violations=0,
):
    return FleetSample(
        step=step,
        live_servers=live,
        dispatchable_servers=dispatchable if dispatchable is not None else live,
        warming_servers=warming,
        draining_servers=draining,
        queue_length=queue,
        arrivals=0,
        active_sessions=0,
        frames=frames,
        qos_violations=violations,
    )


class TestSummarizeCluster:
    def test_two_server_aggregation(self):
        records_a = {"u0": [record("u0", 0, fps=30.0), record("u0", 1, fps=20.0)]}
        records_b = {}
        samples_a = [sample(0, 100.0, 1), sample(1, 100.0, 1)]
        samples_b = [sample(0, 20.0, 0), sample(1, 20.0, 0)]

        summary = summarize_cluster(
            [records_a, records_b],
            [samples_a, samples_b],
            arrivals=4,
            admitted=1,
            rejected=2,
            abandoned=1,
            queue_waits=[0],
            steps=2,
        )

        assert summary.num_servers == 2
        assert summary.frames == 2
        assert summary.rejection_rate == pytest.approx(0.5)
        assert summary.fleet_mean_power_w == pytest.approx(120.0)
        assert summary.mean_active_sessions == pytest.approx(1.0)
        assert summary.watts_per_session == pytest.approx(120.0)
        assert summary.qos_violation_pct == pytest.approx(50.0)  # 20 fps < 24
        assert summary.mean_fps == pytest.approx(25.0)

        busy, idle = summary.servers
        assert busy.utilization == pytest.approx(1.0)
        assert busy.sessions_served == 1
        assert idle.utilization == 0.0
        assert idle.sessions_served == 0
        assert idle.mean_power_w == pytest.approx(20.0)

    def test_queue_wait_statistics(self):
        summary = summarize_cluster(
            [{}],
            [[sample(0, 10.0, 0)]],
            arrivals=3,
            admitted=3,
            rejected=0,
            abandoned=0,
            queue_waits=[0, 2, 4],
            steps=1,
        )
        assert summary.mean_queue_wait_steps == pytest.approx(2.0)
        assert summary.max_queue_wait_steps == 4

    def test_empty_run(self):
        summary = summarize_cluster(
            [{}, {}],
            [[], []],
            arrivals=0,
            admitted=0,
            rejected=0,
            abandoned=0,
            queue_waits=[],
            steps=0,
        )
        assert summary.rejection_rate == 0.0
        assert summary.fleet_mean_power_w == 0.0
        assert summary.watts_per_session == 0.0
        assert summary.mean_fps == 0.0

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            summarize_cluster(
                [{}],
                [[], []],
                arrivals=0,
                admitted=0,
                rejected=0,
                abandoned=0,
                queue_waits=[],
                steps=0,
            )

    def test_late_commissioned_server_aligns_by_sample_step(self):
        # Server 1 joins at step 1: per-step fleet power must sum by the
        # samples' step field, not by list position.
        samples_a = [sample(0, 100.0, 1), sample(1, 100.0, 1)]
        samples_b = [sample(1, 20.0, 0)]
        summary = summarize_cluster(
            [{}, {}],
            [samples_a, samples_b],
            arrivals=0,
            admitted=0,
            rejected=0,
            abandoned=0,
            queue_waits=[],
            steps=2,
        )
        # Step 0: 100 W; step 1: 120 W.
        assert summary.fleet_mean_power_w == pytest.approx(110.0)


class TestElasticityMetrics:
    def summarize(self, **kwargs):
        return summarize_cluster(
            [{}],
            [[sample(0, 10.0, 0)]],
            arrivals=0,
            admitted=0,
            rejected=0,
            abandoned=0,
            queue_waits=[],
            steps=4,
            **kwargs,
        )

    def test_defaults_without_a_trace(self):
        summary = self.summarize()
        assert summary.scale_up_events == 0
        assert summary.mean_fleet_size == pytest.approx(1.0)
        assert summary.peak_fleet_size == 1
        assert summary.transient_steps == 0

    def test_scaling_event_counters(self):
        events = [
            ScalingEvent(2, "up", 2, 1, 3, "ReactiveThreshold", "queue"),
            ScalingEvent(9, "down", 1, 3, 2, "ReactiveThreshold", "idle"),
        ]
        summary = self.summarize(scaling_events=events)
        assert summary.scale_up_events == 1
        assert summary.scale_down_events == 1
        assert summary.servers_added == 2
        assert summary.servers_removed == 1

    def test_fleet_trace_aggregates(self):
        trace = [
            fleet_sample(0, 1, queue=0, frames=4),
            fleet_sample(1, 2, warming=1, queue=3, frames=4, violations=2),
            fleet_sample(2, 2, queue=1, frames=6, violations=1),
            fleet_sample(3, 3, draining=1, queue=1, frames=6, violations=1),
        ]
        summary = self.summarize(fleet_trace=trace)
        assert summary.mean_fleet_size == pytest.approx(2.0)
        assert summary.peak_fleet_size == 3
        assert summary.mean_queue_length == pytest.approx(1.25)
        assert summary.transient_steps == 2
        assert summary.transient_mean_queue_length == pytest.approx(2.0)
        # 3 violations over 10 frames during the two transient steps.
        assert summary.transient_qos_violation_pct == pytest.approx(30.0)


class TestSummarySerialization:
    def summarize(self):
        return summarize_cluster(
            [{"u0": [record("u0", s, 25.0) for s in range(4)]}, {}],
            [[sample(s, 80.0, 1) for s in range(4)], [sample(s, 20.0, 0) for s in range(4)]],
            arrivals=5,
            admitted=1,
            rejected=2,
            abandoned=1,
            dropped=1,
            queue_waits=[0, 3],
            steps=4,
            scaling_events=[ScalingEvent(2, "up", 1, 1, 2, "ReactiveThreshold", "queue")],
            fleet_trace=[fleet_sample(s, 2, queue=s % 2, frames=1) for s in range(4)],
            degraded_sessions=1,
            brownout_steps=2,
        )

    def test_to_dict_is_json_ready(self):
        import json

        data = self.summarize().to_dict()
        assert json.loads(json.dumps(data)) == data
        assert isinstance(data["servers"], list)
        assert data["servers"][0]["server_index"] == 0
        assert data["arrivals"] == 5

    def test_round_trip(self):
        summary = self.summarize()
        assert ClusterSummary.from_dict(summary.to_dict()) == summary

    def test_from_dict_ignores_unknown_keys(self):
        """Benchmark payloads carry derived extras next to the summary fields."""
        data = self.summarize().to_dict()
        data["mean_psnr_db"] = 36.2
        data["servers"][0]["favourite_colour"] = "green"
        summary = ClusterSummary.from_dict(data)
        assert summary == self.summarize()

    def test_pre_domain_payloads_still_load(self):
        """Summary artifacts written before failure domains existed load
        with the domain/checkpoint ledger at its zero defaults, so
        ``repro obs compare`` keeps working against archived baselines."""
        data = self.summarize().to_dict()
        for key in (
            "failed_domains",
            "recomputed_frames",
            "checkpoint_writes",
            "checkpoint_energy_j",
            "mean_available_domains",
        ):
            data.pop(key)
        summary = ClusterSummary.from_dict(data)
        assert summary == self.summarize()
        assert summary.failed_domains == 0
        assert summary.recomputed_frames == 0
        assert summary.checkpoint_writes == 0
        assert summary.checkpoint_energy_j == 0.0
        assert summary.mean_available_domains == 0.0
