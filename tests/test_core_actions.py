"""Unit tests for repro.core.actions (paper Sec. III-B)."""

from __future__ import annotations

import pytest

from repro.constants import DVFS_VALUES_GHZ, QP_VALUES
from repro.core.actions import (
    ActionSet,
    default_dvfs_actions,
    default_qp_actions,
    default_thread_actions,
)
from repro.errors import ConfigurationError
from repro.video.sequence import ResolutionClass


class TestActionSet:
    def test_container_protocol(self):
        actions = ActionSet("demo", (10, 20, 30))
        assert len(actions) == 3
        assert list(actions) == [10, 20, 30]
        assert 20 in actions
        assert actions[1] == 20
        assert actions.values == (10, 20, 30)

    def test_index_of(self):
        actions = ActionSet("demo", (10, 20, 30))
        assert actions.index_of(30) == 2
        with pytest.raises(ConfigurationError):
            actions.index_of(99)

    def test_clamp_index(self):
        actions = ActionSet("demo", (10, 20, 30))
        assert actions.clamp_index(-5) == 0
        assert actions.clamp_index(1) == 1
        assert actions.clamp_index(10) == 2

    def test_closest_index(self):
        actions = ActionSet("freq", (1.6, 2.3, 3.2))
        assert actions.closest_index(1.7) == 0
        assert actions.closest_index(2.6) == 1
        assert actions.closest_index(5.0) == 2

    def test_equality_and_hash(self):
        assert ActionSet("a", (1, 2)) == ActionSet("a", (1, 2))
        assert ActionSet("a", (1, 2)) != ActionSet("b", (1, 2))
        assert hash(ActionSet("a", (1, 2))) == hash(ActionSet("a", (1, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ActionSet("demo", ())

    def test_duplicates_rejected(self):
        with pytest.raises(ConfigurationError):
            ActionSet("demo", (1, 1, 2))


class TestDefaults:
    def test_qp_actions_match_paper(self):
        assert default_qp_actions().values == QP_VALUES == (22, 25, 27, 29, 32, 35, 37)

    def test_dvfs_actions_match_paper(self):
        assert default_dvfs_actions().values == DVFS_VALUES_GHZ == (1.6, 1.9, 2.3, 2.6, 2.9, 3.2)

    def test_hr_thread_actions_reach_twelve(self):
        actions = default_thread_actions(ResolutionClass.HR)
        assert actions.values == tuple(range(1, 13))

    def test_lr_thread_actions_reach_five(self):
        actions = default_thread_actions(ResolutionClass.LR)
        assert actions.values == tuple(range(1, 6))

    def test_explicit_max_threads(self):
        assert default_thread_actions(max_threads=3).values == (1, 2, 3)

    def test_missing_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            default_thread_actions()
        with pytest.raises(ConfigurationError):
            default_thread_actions(max_threads=0)
