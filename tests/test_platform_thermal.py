"""Unit tests for repro.platform.thermal."""

from __future__ import annotations

import pytest

from repro.errors import PlatformError
from repro.metrics.records import PowerSample
from repro.platform.thermal import ThermalModel, ThermalModelParameters, temperature_trace


class TestThermalModelParameters:
    def test_defaults_valid(self):
        ThermalModelParameters()

    def test_validation(self):
        with pytest.raises(PlatformError):
            ThermalModelParameters(thermal_resistance_c_per_w=0.0)
        with pytest.raises(PlatformError):
            ThermalModelParameters(time_constant_s=0.0)
        with pytest.raises(PlatformError):
            ThermalModelParameters(ambient_c=50.0, critical_temperature_c=45.0)


class TestThermalModel:
    def test_starts_at_ambient(self):
        model = ThermalModel()
        assert model.temperature_c == pytest.approx(model.params.ambient_c)

    def test_steady_state(self):
        model = ThermalModel()
        expected = model.params.ambient_c + model.params.thermal_resistance_c_per_w * 100.0
        assert model.steady_state_c(100.0) == pytest.approx(expected)

    def test_converges_to_steady_state(self):
        model = ThermalModel()
        for _ in range(200):
            model.step(100.0, 1.0)
        assert model.temperature_c == pytest.approx(model.steady_state_c(100.0), abs=0.1)

    def test_temperature_rises_under_load_and_falls_when_idle(self):
        model = ThermalModel()
        model.step(120.0, 10.0)
        hot = model.temperature_c
        assert hot > model.params.ambient_c
        model.step(0.0, 60.0)
        assert model.temperature_c < hot

    def test_monotone_in_power(self):
        low, high = ThermalModel(), ThermalModel()
        low.step(60.0, 30.0)
        high.step(120.0, 30.0)
        assert high.temperature_c > low.temperature_c

    def test_long_step_equals_many_short_steps(self):
        one_shot = ThermalModel()
        one_shot.step(100.0, 50.0)
        stepped = ThermalModel()
        for _ in range(50):
            stepped.step(100.0, 1.0)
        assert one_shot.temperature_c == pytest.approx(stepped.temperature_c, abs=1e-6)

    def test_headroom_and_throttling(self):
        model = ThermalModel(ThermalModelParameters(critical_temperature_c=60.0))
        assert model.headroom_c() > 0
        assert not model.is_throttling()
        for _ in range(100):
            model.step(200.0, 5.0)
        assert model.is_throttling()

    def test_reset(self):
        model = ThermalModel()
        model.step(100.0, 30.0)
        model.reset()
        assert model.temperature_c == pytest.approx(model.params.ambient_c)

    def test_validation(self):
        model = ThermalModel()
        with pytest.raises(PlatformError):
            model.step(-1.0, 1.0)
        with pytest.raises(PlatformError):
            model.step(1.0, -1.0)


class TestTemperatureTrace:
    def test_trace_from_power_samples(self):
        samples = [PowerSample(step=i, power_w=110.0, duration_s=0.05, active_sessions=2) for i in range(100)]
        trace = temperature_trace(samples)
        assert len(trace) == 100
        assert trace[-1] > trace[0]
        assert all(b >= a - 1e-9 for a, b in zip(trace, trace[1:]))
