"""Unit tests for the baseline controllers (heuristic, mono-agent, static)."""

from __future__ import annotations

import pytest

from repro.baselines.heuristic import HeuristicConfig, HeuristicController
from repro.baselines.monoagent import MonoAgentConfig, MonoAgentController
from repro.baselines.static import StaticController
from repro.core.observation import Observation
from repro.errors import ConfigurationError
from repro.platform.dvfs import DvfsPolicy


def obs(fps=25.0, psnr=36.0, bitrate=4.0, power=80.0) -> Observation:
    return Observation(fps=fps, psnr_db=psnr, bitrate_mbps=bitrate, power_w=power)


class TestStaticController:
    def test_constant_decision(self):
        controller = StaticController(qp=32, threads=6, frequency_ghz=2.9)
        first = controller.decide(0, None)
        later = controller.decide(100, obs(fps=5.0))
        assert first == later
        assert first.qp == 32 and first.threads == 6

    def test_default_policy_is_chip_wide(self):
        assert StaticController(32, 4, 3.2).dvfs_policy is DvfsPolicy.CHIP_WIDE

    def test_name(self):
        assert StaticController(32, 4, 3.2).name == "Static"


class TestHeuristicController:
    def drive(self, controller, observation, periods=1):
        """Apply `observation` for `periods` adjustment periods."""
        decision = controller.decide(0, None)
        frame = 1
        for _ in range(periods * controller.config.period):
            decision = controller.decide(frame, observation)
            frame += 1
        return decision

    def test_threads_increase_when_fps_is_low(self):
        controller = HeuristicController(HeuristicConfig(initial_threads=4))
        before = controller.decide(0, None).threads
        after = self.drive(controller, obs(fps=15.0, power=60.0), periods=1)
        assert after.threads == before + 1

    def test_threads_decrease_when_fps_is_comfortably_high(self):
        controller = HeuristicController(HeuristicConfig(initial_threads=6, fps_slack=1.0))
        after = self.drive(controller, obs(fps=40.0, power=60.0), periods=2)
        assert after.threads < 6

    def test_failed_increase_is_rolled_back(self):
        """Adding a thread that does not improve FPS is undone (saturation)."""
        controller = HeuristicController(HeuristicConfig(initial_threads=6))
        decision = self.drive(controller, obs(fps=15.0, power=60.0), periods=1)
        assert decision.threads == 7
        # FPS did not improve after the increase: the next adjustments roll it
        # back and hold off further increases for a while.
        decision = self.drive(controller, obs(fps=15.0, power=60.0), periods=2)
        assert decision.threads <= 7

    def test_qp_rises_on_bandwidth_violation(self):
        controller = HeuristicController(HeuristicConfig(initial_qp=27))
        decision = self.drive(controller, obs(bitrate=9.0), periods=2)
        assert decision.qp > 27

    def test_qp_drops_when_quality_is_low_and_bandwidth_allows(self):
        controller = HeuristicController(HeuristicConfig(initial_qp=37))
        decision = self.drive(controller, obs(psnr=31.0, bitrate=1.0), periods=2)
        assert decision.qp < 37

    def test_frequency_drops_when_power_cap_hit(self):
        controller = HeuristicController(HeuristicConfig(power_cap_w=100.0))
        decision = self.drive(controller, obs(power=105.0), periods=2)
        assert decision.frequency_ghz < 3.2

    def test_frequency_recovers_when_power_is_low(self):
        controller = HeuristicController(HeuristicConfig(power_cap_w=100.0))
        self.drive(controller, obs(power=105.0), periods=2)
        decision = self.drive(controller, obs(power=60.0), periods=3)
        assert decision.frequency_ghz == pytest.approx(3.2)

    def test_threads_never_exceed_max(self):
        controller = HeuristicController(HeuristicConfig(max_threads=5, initial_threads=5))
        decision = self.drive(controller, obs(fps=10.0), periods=10)
        assert decision.threads <= 5

    def test_chip_wide_policy(self):
        assert HeuristicController().dvfs_policy is DvfsPolicy.CHIP_WIDE

    def test_for_request_uses_resolution_limits(self, hr_request, lr_request):
        assert HeuristicConfig.for_request(hr_request).max_threads == 12
        assert HeuristicConfig.for_request(lr_request).max_threads == 5

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HeuristicConfig(period=0)
        with pytest.raises(ConfigurationError):
            HeuristicConfig(max_threads=0)
        with pytest.raises(ConfigurationError):
            HeuristicConfig(fps_target=0.0)

    def test_reset_keeps_operating_point(self):
        controller = HeuristicController(HeuristicConfig(initial_threads=4))
        self.drive(controller, obs(fps=15.0), periods=2)
        threads_before = controller.decide(12, obs(fps=15.0)).threads
        controller.reset()
        assert controller.decide(13, None).threads == threads_before


class TestMonoAgentController:
    def test_joint_action_space_is_the_cartesian_product(self):
        config = MonoAgentConfig()
        actions = config.joint_actions()
        assert len(actions) == len(config.qp_values) * len(config.thread_values) * len(
            config.frequency_values
        )

    def test_for_request_limits_threads(self, hr_request, lr_request):
        assert max(MonoAgentConfig.for_request(hr_request).thread_values) == 12
        assert max(MonoAgentConfig.for_request(lr_request).thread_values) == 5

    def test_initial_decision_prefers_capacity(self):
        controller = MonoAgentController()
        decision = controller.decide(0, None)
        assert decision.threads == max(controller.config.thread_values)
        assert decision.frequency_ghz == pytest.approx(max(controller.config.frequency_values))

    def test_decisions_come_from_the_joint_grid(self):
        controller = MonoAgentController(MonoAgentConfig(seed=3))
        valid = set(controller.agent.actions.values)
        controller.decide(0, None)
        for frame in range(1, 200):
            decision = controller.decide(frame, obs(fps=20.0 + frame % 15))
            assert (decision.qp, decision.threads, decision.frequency_ghz) in valid

    def test_learning_accumulates(self):
        controller = MonoAgentController()
        controller.decide(0, None)
        for frame in range(1, 300):
            controller.decide(frame, obs())
        assert len(controller.agent.q_table) > 0

    def test_reset_keeps_q_table(self):
        controller = MonoAgentController()
        controller.decide(0, None)
        for frame in range(1, 120):
            controller.decide(frame, obs())
        entries = len(controller.agent.q_table)
        controller.reset()
        assert len(controller.agent.q_table) == entries

    def test_acts_only_every_period(self):
        controller = MonoAgentController(MonoAgentConfig(period=6))
        controller.decide(0, None)
        decisions = set()
        for frame in range(1, 6):
            decisions.add(controller.decide(frame, obs(fps=10.0)))
        # Within one period the decision cannot change.
        assert len(decisions) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MonoAgentConfig(period=0)
        with pytest.raises(ConfigurationError):
            MonoAgentConfig(qp_values=())
