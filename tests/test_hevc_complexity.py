"""Unit tests for repro.hevc.complexity."""

from __future__ import annotations

import pytest

from repro.hevc.complexity import ComplexityModel
from repro.hevc.params import EncoderConfig, Preset
from repro.video.content import FrameContent
from repro.video.sequence import Frame


def frame_with(complexity=1.0, motion=0.4, scene_change=False, width=1920, height=1080):
    return Frame(
        index=0,
        width=width,
        height=height,
        content=FrameContent(complexity=complexity, motion=motion, scene_change=scene_change),
    )


@pytest.fixture
def model() -> ComplexityModel:
    return ComplexityModel()


class TestEncodeCycles:
    def test_lower_qp_costs_more(self, model):
        frame = frame_with()
        cycles = [
            model.encode_cycles(frame, EncoderConfig(qp=qp, threads=1))
            for qp in (22, 27, 32, 37)
        ]
        assert cycles == sorted(cycles, reverse=True)

    def test_cost_scales_with_pixels(self, model):
        config = EncoderConfig(qp=32, threads=1)
        hr = model.encode_cycles(frame_with(), config)
        lr = model.encode_cycles(frame_with(width=832, height=480), config)
        assert hr / lr == pytest.approx((1920 * 1080) / (832 * 480), rel=1e-6)

    def test_complex_content_costs_more(self, model):
        config = EncoderConfig(qp=32, threads=1)
        assert model.encode_cycles(frame_with(complexity=1.5), config) > model.encode_cycles(
            frame_with(complexity=0.8), config
        )

    def test_motion_costs_more(self, model):
        config = EncoderConfig(qp=32, threads=1)
        assert model.encode_cycles(frame_with(motion=0.9), config) > model.encode_cycles(
            frame_with(motion=0.1), config
        )

    def test_intra_frame_costs_more(self, model):
        config = EncoderConfig(qp=32, threads=1)
        assert model.encode_cycles(frame_with(scene_change=True), config) > model.encode_cycles(
            frame_with(scene_change=False), config
        )

    def test_slow_preset_costs_more(self, model):
        frame = frame_with()
        assert model.encode_cycles(
            frame, EncoderConfig(qp=32, threads=1, preset=Preset.SLOW)
        ) > model.encode_cycles(frame, EncoderConfig(qp=32, threads=1, preset=Preset.ULTRAFAST))

    def test_single_thread_hr_is_a_few_fps_at_max_frequency(self, model):
        """Calibration anchor from Fig. 2: ~4-7 FPS single-threaded at 3.2 GHz."""
        frame = frame_with()
        time_s = model.encode_time_seconds(frame, EncoderConfig(qp=27, threads=1), 3.2, 1.0)
        assert 3.0 <= 1.0 / time_s <= 8.0


class TestDecodeCycles:
    def test_decoding_is_orders_of_magnitude_cheaper(self, model):
        frame = frame_with()
        encode = model.encode_cycles(frame, EncoderConfig(qp=32, threads=1))
        decode = model.decode_cycles(frame)
        assert decode < encode / 20.0

    def test_decode_scales_with_resolution(self, model):
        assert model.decode_cycles(frame_with()) > model.decode_cycles(
            frame_with(width=832, height=480)
        )


class TestEncodeTime:
    def test_time_inverse_to_frequency(self, model):
        frame = frame_with()
        config = EncoderConfig(qp=32, threads=1)
        slow = model.encode_time_seconds(frame, config, 1.6, 1.0)
        fast = model.encode_time_seconds(frame, config, 3.2, 1.0)
        assert slow / fast == pytest.approx(2.0)

    def test_time_inverse_to_speedup(self, model):
        frame = frame_with()
        config = EncoderConfig(qp=32, threads=1)
        serial = model.encode_time_seconds(frame, config, 3.2, 1.0)
        parallel = model.encode_time_seconds(frame, config, 3.2, 4.0)
        assert serial / parallel == pytest.approx(4.0)

    def test_invalid_inputs_raise(self, model):
        frame = frame_with()
        config = EncoderConfig(qp=32, threads=1)
        with pytest.raises(ValueError):
            model.encode_time_seconds(frame, config, 0.0, 1.0)
        with pytest.raises(ValueError):
            model.encode_time_seconds(frame, config, 3.2, 0.0)
