"""Unit tests for repro.core.qtable."""

from __future__ import annotations

import pytest

from repro.core.qtable import QTable
from repro.core.states import SystemState
from repro.errors import LearningError


S0 = SystemState(0, 0, 0, 0)
S1 = SystemState(1, 2, 1, 0)


class TestQTable:
    def test_unvisited_entries_default_to_initial_value(self):
        table = QTable(num_actions=4, initial_value=0.5)
        assert table.get(S0, 0) == pytest.approx(0.5)
        assert len(table) == 0

    def test_set_and_get(self):
        table = QTable(num_actions=3)
        table.set(S0, 1, 2.5)
        assert table.get(S0, 1) == pytest.approx(2.5)
        assert len(table) == 1

    def test_update_towards(self):
        table = QTable(num_actions=2)
        new_value = table.update_towards(S0, 0, target=10.0, alpha=0.5)
        assert new_value == pytest.approx(5.0)
        assert table.get(S0, 0) == pytest.approx(5.0)
        table.update_towards(S0, 0, target=10.0, alpha=0.5)
        assert table.get(S0, 0) == pytest.approx(7.5)

    def test_update_with_invalid_alpha(self):
        table = QTable(num_actions=2)
        with pytest.raises(LearningError):
            table.update_towards(S0, 0, target=1.0, alpha=1.5)

    def test_max_value_and_best_action(self):
        table = QTable(num_actions=3)
        table.set(S0, 0, 1.0)
        table.set(S0, 2, 3.0)
        assert table.max_value(S0) == pytest.approx(3.0)
        assert table.best_action(S0) == 2

    def test_best_action_tie_resolves_to_lowest_index(self):
        table = QTable(num_actions=3)
        assert table.best_action(S0) == 0

    def test_action_values(self):
        table = QTable(num_actions=3)
        table.set(S1, 1, -2.0)
        assert table.action_values(S1) == [0.0, -2.0, 0.0]

    def test_visited_states(self):
        table = QTable(num_actions=2)
        table.set(S0, 0, 1.0)
        table.set(S1, 1, 2.0)
        assert table.visited_states() == {S0, S1}

    def test_to_dict_and_load(self):
        table = QTable(num_actions=2)
        table.set(S0, 1, 4.0)
        snapshot = table.to_dict()
        assert snapshot[(S0.as_tuple(), 1)] == pytest.approx(4.0)

        other = QTable(num_actions=2)
        other.load([((S0, 1), 4.0)])
        assert other.get(S0, 1) == pytest.approx(4.0)

    def test_invalid_action_index_rejected(self):
        table = QTable(num_actions=2)
        with pytest.raises(LearningError):
            table.get(S0, 2)
        with pytest.raises(LearningError):
            table.set(S0, -1, 1.0)

    def test_invalid_num_actions_rejected(self):
        with pytest.raises(LearningError):
            QTable(num_actions=0)


class TestArrayMode:
    """The dense (state_space-backed) storage behind the same API."""

    def dense(self, num_actions=3, initial_value=0.0):
        from repro.core.states import StateSpace

        return QTable(
            num_actions=num_actions,
            initial_value=initial_value,
            state_space=StateSpace(),
        )

    def test_defaults_and_set_get(self):
        table = self.dense(initial_value=0.5)
        assert table.dense
        assert table.get(S0, 0) == pytest.approx(0.5)
        assert len(table) == 0
        table.set(S1, 2, 3.0)
        assert table.get(S1, 2) == pytest.approx(3.0)
        assert table.get(S1, 0) == pytest.approx(0.5)
        assert len(table) == 1

    def test_matches_dict_mode_operation_for_operation(self):
        import numpy as np

        from repro.core.states import StateSpace

        space = StateSpace()
        dict_table = QTable(num_actions=4)
        array_table = QTable(num_actions=4, state_space=space)
        states = list(space.states())
        rng = np.random.default_rng(0)
        for _ in range(300):
            state = states[rng.integers(len(states))]
            action = int(rng.integers(4))
            op = rng.integers(3)
            if op == 0:
                value = float(rng.normal())
                dict_table.set(state, action, value)
                array_table.set(state, action, value)
            elif op == 1:
                target = float(rng.normal())
                alpha = float(rng.uniform())
                a = dict_table.update_towards(state, action, target, alpha)
                b = array_table.update_towards(state, action, target, alpha)
                assert a == b
            else:
                assert dict_table.get(state, action) == array_table.get(state, action)
                assert dict_table.max_value(state) == array_table.max_value(state)
                assert dict_table.best_action(state) == array_table.best_action(state)
                assert dict_table.action_values(state) == array_table.action_values(state)
        assert len(dict_table) == len(array_table)
        assert dict_table.to_dict() == array_table.to_dict()
        assert dict_table.visited_states() == array_table.visited_states()

    def test_items_round_trip_through_load(self):
        source = self.dense()
        source.set(S0, 0, 1.0)
        source.set(S1, 2, -2.0)
        restored = self.dense()
        restored.load(list(source.items()))
        assert restored.to_dict() == source.to_dict()

    def test_max_value_batch_matches_scalar(self):
        import numpy as np

        table = self.dense(num_actions=3)
        space = table.state_space
        table.set(S0, 1, 4.0)
        table.set(S1, 0, -1.0)
        indices = np.array(
            [space.state_index(S0), space.state_index(S1), space.size - 1]
        )
        batch = table.max_value_batch(indices)
        assert batch.tolist() == [
            table.max_value(S0),
            table.max_value(S1),
            table.max_value(space.index_to_state(space.size - 1)),
        ]

    def test_update_towards_batch_matches_scalar(self):
        import numpy as np

        scalar_table = self.dense(num_actions=3)
        batch_table = self.dense(num_actions=3)
        space = scalar_table.state_space
        states = [S0, S1, SystemState(2, 3, 1, 1)]
        actions = [0, 2, 1]
        targets = [1.0, -3.0, 0.5]
        alphas = [1.0, 0.25, 0.6]
        for s, a, t, al in zip(states, actions, targets, alphas):
            scalar_table.update_towards(s, a, t, al)
        new_values = batch_table.update_towards_batch(
            np.array([space.state_index(s) for s in states]),
            np.array(actions),
            np.array(targets),
            np.array(alphas),
        )
        assert batch_table.to_dict() == scalar_table.to_dict()
        assert new_values.tolist() == [
            scalar_table.get(s, a) for s, a in zip(states, actions)
        ]

    def test_batch_entry_points_require_array_mode(self):
        import numpy as np

        table = QTable(num_actions=2)
        with pytest.raises(LearningError):
            table.max_value_batch(np.array([0]))
        with pytest.raises(LearningError):
            table.update_towards_batch(
                np.array([0]), np.array([0]), np.array([0.0]), np.array([0.5])
            )

    def test_batch_update_validates_actions_and_alphas(self):
        import numpy as np

        table = self.dense(num_actions=2)
        with pytest.raises(LearningError):
            table.update_towards_batch(
                np.array([0]), np.array([2]), np.array([0.0]), np.array([0.5])
            )
        with pytest.raises(LearningError):
            table.update_towards_batch(
                np.array([0]), np.array([0]), np.array([0.0]), np.array([1.5])
            )

    def test_state_outside_the_space_rejected(self):
        from repro.errors import ConfigurationError

        table = self.dense()
        with pytest.raises(ConfigurationError):
            table.set(SystemState(99, 0, 0, 0), 0, 1.0)

    def test_lazy_growth_is_invisible(self):
        table = self.dense()
        space = table.state_space
        last = space.index_to_state(space.size - 1)
        assert table.max_value(last) == 0.0
        table.set(last, 0, 7.0)
        assert table.get(last, 0) == 7.0
        first = space.index_to_state(0)
        assert table.get(first, 0) == 0.0
