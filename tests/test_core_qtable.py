"""Unit tests for repro.core.qtable."""

from __future__ import annotations

import pytest

from repro.core.qtable import QTable
from repro.core.states import SystemState
from repro.errors import LearningError


S0 = SystemState(0, 0, 0, 0)
S1 = SystemState(1, 2, 1, 0)


class TestQTable:
    def test_unvisited_entries_default_to_initial_value(self):
        table = QTable(num_actions=4, initial_value=0.5)
        assert table.get(S0, 0) == pytest.approx(0.5)
        assert len(table) == 0

    def test_set_and_get(self):
        table = QTable(num_actions=3)
        table.set(S0, 1, 2.5)
        assert table.get(S0, 1) == pytest.approx(2.5)
        assert len(table) == 1

    def test_update_towards(self):
        table = QTable(num_actions=2)
        new_value = table.update_towards(S0, 0, target=10.0, alpha=0.5)
        assert new_value == pytest.approx(5.0)
        assert table.get(S0, 0) == pytest.approx(5.0)
        table.update_towards(S0, 0, target=10.0, alpha=0.5)
        assert table.get(S0, 0) == pytest.approx(7.5)

    def test_update_with_invalid_alpha(self):
        table = QTable(num_actions=2)
        with pytest.raises(LearningError):
            table.update_towards(S0, 0, target=1.0, alpha=1.5)

    def test_max_value_and_best_action(self):
        table = QTable(num_actions=3)
        table.set(S0, 0, 1.0)
        table.set(S0, 2, 3.0)
        assert table.max_value(S0) == pytest.approx(3.0)
        assert table.best_action(S0) == 2

    def test_best_action_tie_resolves_to_lowest_index(self):
        table = QTable(num_actions=3)
        assert table.best_action(S0) == 0

    def test_action_values(self):
        table = QTable(num_actions=3)
        table.set(S1, 1, -2.0)
        assert table.action_values(S1) == [0.0, -2.0, 0.0]

    def test_visited_states(self):
        table = QTable(num_actions=2)
        table.set(S0, 0, 1.0)
        table.set(S1, 1, 2.0)
        assert table.visited_states() == {S0, S1}

    def test_to_dict_and_load(self):
        table = QTable(num_actions=2)
        table.set(S0, 1, 4.0)
        snapshot = table.to_dict()
        assert snapshot[(S0.as_tuple(), 1)] == pytest.approx(4.0)

        other = QTable(num_actions=2)
        other.load([((S0, 1), 4.0)])
        assert other.get(S0, 1) == pytest.approx(4.0)

    def test_invalid_action_index_rejected(self):
        table = QTable(num_actions=2)
        with pytest.raises(LearningError):
            table.get(S0, 2)
        with pytest.raises(LearningError):
            table.set(S0, -1, 1.0)

    def test_invalid_num_actions_rejected(self):
        with pytest.raises(LearningError):
            QTable(num_actions=0)
