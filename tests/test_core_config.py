"""Unit tests for repro.core.config."""

from __future__ import annotations

import pytest

from repro.core.config import MamutConfig
from repro.core.actions import default_thread_actions
from repro.core.rewards import RewardConfig
from repro.core.states import StateSpace
from repro.errors import ConfigurationError
from repro.video.sequence import ResolutionClass


class TestMamutConfig:
    def test_defaults_fill_initial_values(self):
        config = MamutConfig()
        assert config.initial_qp in config.qp_actions
        assert config.initial_threads == config.thread_actions[len(config.thread_actions) - 1]
        assert config.initial_frequency_ghz == pytest.approx(3.2)
        assert config.schedule is not None

    def test_for_request_hr(self, hr_request):
        config = MamutConfig.for_request(hr_request, power_cap_w=110.0)
        assert len(config.thread_actions) == 12
        assert config.reward.power_cap_w == pytest.approx(110.0)
        assert config.state_space.power_cap_w == pytest.approx(110.0)
        assert config.reward.bandwidth_mbps == pytest.approx(hr_request.bandwidth_mbps)

    def test_for_request_lr(self, lr_request):
        config = MamutConfig.for_request(lr_request)
        assert len(config.thread_actions) == 5

    def test_invalid_gamma(self):
        with pytest.raises(ConfigurationError):
            MamutConfig(gamma=1.0)

    def test_invalid_epsilon(self):
        with pytest.raises(ConfigurationError):
            MamutConfig(exploration_epsilon=-0.1)

    def test_initial_values_must_belong_to_action_sets(self):
        with pytest.raises(ConfigurationError):
            MamutConfig(initial_qp=23)
        with pytest.raises(ConfigurationError):
            MamutConfig(initial_threads=99)
        with pytest.raises(ConfigurationError):
            MamutConfig(initial_frequency_ghz=2.0)

    def test_reward_and_state_space_must_agree(self):
        with pytest.raises(ConfigurationError):
            MamutConfig(reward=RewardConfig(fps_target=30.0), state_space=StateSpace(fps_target=24.0))
        with pytest.raises(ConfigurationError):
            MamutConfig(
                reward=RewardConfig(power_cap_w=100.0),
                state_space=StateSpace(power_cap_w=120.0),
            )

    def test_custom_thread_actions(self):
        config = MamutConfig(thread_actions=default_thread_actions(ResolutionClass.LR))
        assert config.initial_threads == 5
