"""Unit tests for repro.manager.scenario."""

from __future__ import annotations

import pytest

from repro.errors import ScenarioError
from repro.manager.scenario import SessionSpec, scenario_label, scenario_one, scenario_two
from repro.video.sequence import ResolutionClass


class TestScenarioOne:
    def test_counts_and_classes(self):
        specs = scenario_one(num_hr=2, num_lr=3, num_frames=50)
        assert len(specs) == 5
        hr = [s for s in specs if s.resolution_class is ResolutionClass.HR]
        lr = [s for s in specs if s.resolution_class is ResolutionClass.LR]
        assert len(hr) == 2 and len(lr) == 3

    def test_single_video_playlists(self):
        specs = scenario_one(1, 1, num_frames=40)
        assert all(len(spec.playlist) == 1 for spec in specs)
        assert all(spec.total_frames == 40 for spec in specs)

    def test_unique_user_ids(self):
        specs = scenario_one(3, 4, num_frames=10)
        ids = [spec.request.user_id for spec in specs]
        assert len(set(ids)) == len(ids)

    def test_different_users_get_different_content(self):
        specs = scenario_one(2, 0, num_frames=30)
        a, b = specs[0].playlist[0], specs[1].playlist[0]
        assert [f.complexity for f in a] != [f.complexity for f in b]

    def test_reproducible_with_seed(self):
        a = scenario_one(1, 1, num_frames=20, seed=5)
        b = scenario_one(1, 1, num_frames=20, seed=5)
        assert [f.complexity for f in a[0].playlist[0]] == [
            f.complexity for f in b[0].playlist[0]
        ]

    def test_validation(self):
        with pytest.raises(ScenarioError):
            scenario_one(0, 0)
        with pytest.raises(ScenarioError):
            scenario_one(1, 1, num_frames=0)
        with pytest.raises(ScenarioError):
            scenario_one(-1, 2)


class TestScenarioTwo:
    def test_playlist_length_is_one_plus_followers(self):
        specs = scenario_two(1, 1, followers=4, frames_per_video=30)
        assert all(len(spec.playlist) == 5 for spec in specs)
        assert all(spec.total_frames == 150 for spec in specs)

    def test_followers_share_the_resolution_class(self):
        specs = scenario_two(2, 2, followers=3, frames_per_video=20)
        for spec in specs:
            assert all(
                video.resolution_class is spec.resolution_class for video in spec.playlist
            )

    def test_reproducible_with_seed(self):
        a = scenario_two(1, 1, followers=2, frames_per_video=20, seed=9)
        b = scenario_two(1, 1, followers=2, frames_per_video=20, seed=9)
        assert [v.name for v in a[0].playlist] == [v.name for v in b[0].playlist]

    def test_zero_followers(self):
        specs = scenario_two(1, 0, followers=0, frames_per_video=25)
        assert len(specs[0].playlist) == 1

    def test_validation(self):
        with pytest.raises(ScenarioError):
            scenario_two(0, 0)
        with pytest.raises(ScenarioError):
            scenario_two(1, 1, followers=-1)
        with pytest.raises(ScenarioError):
            scenario_two(1, 1, frames_per_video=0)


class TestHelpers:
    def test_scenario_label(self):
        assert scenario_label(scenario_one(2, 3, num_frames=5)) == "2HR3LR"
        assert scenario_label(scenario_one(2, 0, num_frames=5)) == "2HR"
        assert scenario_label(scenario_one(0, 4, num_frames=5)) == "4LR"
        assert scenario_label([]) == "empty"

    def test_session_spec_requires_playlist(self):
        specs = scenario_one(1, 0, num_frames=5)
        with pytest.raises(ScenarioError):
            SessionSpec(request=specs[0].request, playlist=())
