"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.config import MamutConfig
from repro.core.mamut import MamutController
from repro.hevc.params import EncoderConfig, Preset
from repro.hevc.transcoder import Transcoder
from repro.platform.server import MulticoreServer
from repro.video.catalog import make_sequence
from repro.video.content import ContentProfile
from repro.video.request import TranscodingRequest
from repro.video.sequence import Frame, VideoSequence
from repro.video.content import FrameContent


@pytest.fixture
def hr_sequence() -> VideoSequence:
    """A short, reproducible HR (1080p) sequence."""
    return make_sequence("Cactus", num_frames=60, seed=1)


@pytest.fixture
def lr_sequence() -> VideoSequence:
    """A short, reproducible LR (832x480) sequence."""
    return make_sequence("BQMall", num_frames=60, seed=2)


@pytest.fixture
def hr_frame(hr_sequence: VideoSequence) -> Frame:
    """One frame of the HR sequence."""
    return hr_sequence[10]


@pytest.fixture
def lr_frame(lr_sequence: VideoSequence) -> Frame:
    """One frame of the LR sequence."""
    return lr_sequence[10]


@pytest.fixture
def plain_frame() -> Frame:
    """A synthetic 1080p frame with unit complexity and no motion quirks."""
    return Frame(
        index=0,
        width=1920,
        height=1080,
        content=FrameContent(complexity=1.0, motion=0.4, scene_change=False),
    )


@pytest.fixture
def hr_request(hr_sequence: VideoSequence) -> TranscodingRequest:
    """A transcoding request for the HR sequence."""
    return TranscodingRequest(user_id="user-hr", sequence=hr_sequence)


@pytest.fixture
def lr_request(lr_sequence: VideoSequence) -> TranscodingRequest:
    """A transcoding request for the LR sequence."""
    return TranscodingRequest(user_id="user-lr", sequence=lr_sequence)


@pytest.fixture
def ultrafast_config() -> EncoderConfig:
    """A mid-range ultrafast encoder configuration."""
    return EncoderConfig(qp=32, threads=8, preset=Preset.ULTRAFAST)


@pytest.fixture
def transcoder() -> Transcoder:
    """A default-calibrated transcoder."""
    return Transcoder()


@pytest.fixture
def server() -> MulticoreServer:
    """A default 16-core / 32-thread server."""
    return MulticoreServer()


@pytest.fixture
def mamut_controller(hr_request: TranscodingRequest) -> MamutController:
    """A MAMUT controller configured for the HR request."""
    return MamutController(MamutConfig.for_request(hr_request, seed=0))


@pytest.fixture
def flat_profile() -> ContentProfile:
    """A content profile with no variability (deterministic content)."""
    return ContentProfile(complexity=1.0, motion=0.4, variability=0.0, scene_change_rate=0.0)
