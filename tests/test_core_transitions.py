"""Unit tests for repro.core.transitions (paper Sec. IV-A)."""

from __future__ import annotations

import pytest

from repro.core.states import SystemState
from repro.core.transitions import TransitionModel
from repro.errors import LearningError


S0 = SystemState(0, 0, 0, 0)
S1 = SystemState(1, 0, 0, 0)
S2 = SystemState(2, 0, 0, 0)


class TestTransitionModel:
    def test_counts_and_probabilities(self):
        model = TransitionModel(num_actions=2)
        model.record(S0, 0, S1)
        model.record(S0, 0, S1)
        model.record(S0, 0, S2)
        assert model.total(S0, 0) == 3
        assert model.count(S0, 0, S1) == 2
        assert model.probability(S0, 0, S1) == pytest.approx(2 / 3)
        assert model.probability(S0, 0, S2) == pytest.approx(1 / 3)

    def test_probabilities_sum_to_one(self):
        model = TransitionModel(num_actions=1)
        for target in (S0, S1, S2, S1, S1):
            model.record(S0, 0, target)
        assert sum(model.distribution(S0, 0).values()) == pytest.approx(1.0)

    def test_unseen_pair_has_empty_distribution(self):
        model = TransitionModel(num_actions=2)
        assert model.distribution(S0, 1) == {}
        assert model.probability(S0, 1, S1) == 0.0
        assert model.total(S0, 1) == 0

    def test_expected_value(self):
        model = TransitionModel(num_actions=1)
        model.record(S0, 0, S1)
        model.record(S0, 0, S2)
        values = {S1: 10.0, S2: 20.0}
        assert model.expected_value(S0, 0, lambda s: values[s]) == pytest.approx(15.0)

    def test_expected_value_of_unseen_pair_is_zero(self):
        model = TransitionModel(num_actions=1)
        assert model.expected_value(S0, 0, lambda s: 100.0) == 0.0

    def test_visited_pairs(self):
        model = TransitionModel(num_actions=2)
        model.record(S0, 1, S1)
        model.record(S1, 0, S2)
        assert model.visited_pairs() == {(S0, 1), (S1, 0)}

    def test_invalid_action_rejected(self):
        model = TransitionModel(num_actions=2)
        with pytest.raises(LearningError):
            model.record(S0, 2, S1)
        with pytest.raises(LearningError):
            model.total(S0, -1)

    def test_invalid_num_actions_rejected(self):
        with pytest.raises(LearningError):
            TransitionModel(num_actions=0)
