"""Unit tests for repro.analysis (figure/table regeneration, small configs)."""

from __future__ import annotations

import pytest

from repro.analysis.figures import fig2_characterization, fig5_trace
from repro.analysis.tables import (
    default_factories,
    fig4_scenario_one_sweep,
    table1_threads_frequency,
    table2_scenario_two,
)
from repro.manager.factories import static_factory


class TestFig2:
    @pytest.fixture(scope="class")
    def points(self):
        return fig2_characterization(
            thread_counts=(1, 4, 10), qp_values=(22, 37), num_frames=12
        )

    def test_sweep_covers_all_configurations(self, points):
        assert len(points) == 6
        assert {(p.threads, p.qp) for p in points} == {
            (1, 22), (1, 37), (4, 22), (4, 37), (10, 22), (10, 37)
        }

    def test_fps_increases_with_threads(self, points):
        by_config = {(p.threads, p.qp): p for p in points}
        assert by_config[(10, 37)].fps > by_config[(4, 37)].fps > by_config[(1, 37)].fps

    def test_fps_increases_with_qp(self, points):
        by_config = {(p.threads, p.qp): p for p in points}
        assert by_config[(10, 37)].fps > by_config[(10, 22)].fps

    def test_psnr_and_bandwidth_decrease_with_qp(self, points):
        by_config = {(p.threads, p.qp): p for p in points}
        assert by_config[(1, 22)].psnr_db > by_config[(1, 37)].psnr_db
        assert by_config[(1, 22)].bandwidth_mbytes_per_s > by_config[(1, 37)].bandwidth_mbytes_per_s

    def test_power_increases_with_threads(self, points):
        by_config = {(p.threads, p.qp): p for p in points}
        assert by_config[(10, 22)].power_w > by_config[(1, 22)].power_w

    def test_values_match_paper_ranges(self, points):
        """Fig. 2 ranges: ~3-45 FPS, ~50-90 W, ~32-41 dB, <1.5 MBytes/s."""
        for point in points:
            assert 2.0 <= point.fps <= 50.0
            assert 45.0 <= point.power_w <= 95.0
            assert 30.0 <= point.psnr_db <= 43.0
            assert point.bandwidth_mbytes_per_s <= 1.6


class TestFig5:
    def test_trace_series_are_consistent(self):
        trace = fig5_trace(num_frames=120)
        assert set(trace) == {
            "frame", "fps", "psnr_db", "qp", "threads", "frequency_ghz", "power_w"
        }
        lengths = {len(series) for series in trace.values()}
        assert lengths == {120}
        assert trace["frame"] == [float(i) for i in range(120)]
        assert all(1 <= t <= 12 for t in trace["threads"])
        assert all(1.6 <= f <= 3.2 for f in trace["frequency_ghz"])
        assert all(22 <= q <= 37 for q in trace["qp"])


class TestTables:
    def test_default_factories_are_the_paper_comparison(self):
        assert set(default_factories()) == {"Heuristic", "MonoAgent", "MAMUT"}

    def test_fig4_rows_shape(self):
        rows = fig4_scenario_one_sweep(
            hr_counts=(1,),
            lr_counts=(1,),
            factories={"Static": static_factory(32, 6, 3.2)},
            num_frames=24,
            warmup_videos=0,
        )
        assert {(r.workload, r.controller) for r in rows} == {
            ("1HR", "Static"), ("1LR", "Static")
        }
        assert all(0.0 <= r.qos_violation_pct <= 100.0 for r in rows)
        assert all(r.power_w > 0 for r in rows)

    def test_table1_rows_shape(self):
        rows = table1_threads_frequency(
            factories={"Static": static_factory(32, 6, 2.9)},
            num_hr=1,
            num_lr=1,
            num_frames=24,
            warmup_videos=0,
        )
        assert {(r.controller, r.resolution_class) for r in rows} == {
            ("Static", "HR"), ("Static", "LR")
        }
        assert all(r.mean_threads == pytest.approx(6.0) for r in rows)
        assert all(r.mean_frequency_ghz == pytest.approx(2.9) for r in rows)

    def test_table2_rows_shape(self):
        rows = table2_scenario_two(
            mixes=((1, 1),),
            factories={"Static": static_factory(32, 6, 3.2)},
            followers=1,
            frames_per_video=24,
            warmup_videos=0,
        )
        assert len(rows) == 1
        row = rows[0]
        assert row.workload == "1HR1LR"
        assert row.power_w > 0
        assert row.mean_fps > 0
