"""Unit tests for repro.platform.dvfs."""

from __future__ import annotations

import pytest

from repro.errors import DvfsError
from repro.platform.dvfs import DEFAULT_AVAILABLE_FREQUENCIES_GHZ, DvfsDriver, DvfsPolicy
from repro.platform.topology import CpuTopology


@pytest.fixture
def driver() -> DvfsDriver:
    return DvfsDriver()


class TestDvfsDriver:
    def test_initial_frequency_is_lowest(self, driver):
        assert driver.get_frequency(0) == pytest.approx(driver.min_frequency_ghz)

    def test_available_frequencies_sorted(self, driver):
        freqs = driver.available_frequencies_ghz
        assert list(freqs) == sorted(freqs)
        assert driver.max_frequency_ghz == pytest.approx(3.2)
        assert driver.min_frequency_ghz == pytest.approx(1.2)

    def test_set_and_get_per_core(self, driver):
        driver.set_frequency(3, 2.9)
        assert driver.get_frequency(3) == pytest.approx(2.9)
        assert driver.get_frequency(4) == pytest.approx(driver.min_frequency_ghz)

    def test_set_all(self, driver):
        driver.set_all(2.3)
        assert all(f == pytest.approx(2.3) for f in driver.frequencies().values())

    def test_unsupported_frequency_rejected(self, driver):
        with pytest.raises(DvfsError):
            driver.set_frequency(0, 2.0)

    def test_unknown_core_rejected(self, driver):
        with pytest.raises(DvfsError):
            driver.set_frequency(99, 2.3)
        with pytest.raises(DvfsError):
            driver.get_frequency(-1)

    def test_closest_available(self, driver):
        assert driver.closest_available(2.0) == pytest.approx(1.9)
        assert driver.closest_available(3.5) == pytest.approx(3.2)
        with pytest.raises(DvfsError):
            driver.closest_available(0.0)

    def test_custom_topology_core_count(self):
        driver = DvfsDriver(topology=CpuTopology(sockets=1, cores_per_socket=4))
        assert len(driver.frequencies()) == 4

    def test_out_of_range_available_frequency_rejected(self):
        with pytest.raises(DvfsError):
            DvfsDriver(available_frequencies_ghz=(0.8, 1.6))

    def test_empty_frequency_list_rejected(self):
        with pytest.raises(DvfsError):
            DvfsDriver(available_frequencies_ghz=())

    def test_initial_frequency_override(self):
        driver = DvfsDriver(initial_frequency_ghz=3.2)
        assert driver.get_frequency(0) == pytest.approx(3.2)


class TestSysfsFacade:
    def test_read_current_frequency_in_khz(self, driver):
        driver.set_frequency(2, 2.6)
        value = driver.sysfs_read("/sys/devices/system/cpu/cpu2/cpufreq/scaling_cur_freq")
        assert value == str(int(2.6e6))

    def test_read_available_frequencies(self, driver):
        value = driver.sysfs_read(
            "/sys/devices/system/cpu/cpu0/cpufreq/scaling_available_frequencies"
        )
        assert value.split() == [
            str(int(f * 1e6)) for f in DEFAULT_AVAILABLE_FREQUENCIES_GHZ
        ]

    def test_write_setspeed(self, driver):
        driver.sysfs_write(
            "/sys/devices/system/cpu/cpu1/cpufreq/scaling_setspeed", str(int(2.9e6))
        )
        assert driver.get_frequency(1) == pytest.approx(2.9)

    def test_write_readonly_attribute_rejected(self, driver):
        with pytest.raises(DvfsError):
            driver.sysfs_write(
                "/sys/devices/system/cpu/cpu1/cpufreq/scaling_cur_freq", "1600000"
            )

    def test_malformed_paths_rejected(self, driver):
        with pytest.raises(DvfsError):
            driver.sysfs_read("/sys/devices/system/cpu/cpufreq/scaling_cur_freq")
        with pytest.raises(DvfsError):
            driver.sysfs_read("/sys/devices/system/cpu/cpuX/cpufreq/scaling_cur_freq")

    def test_malformed_value_rejected(self, driver):
        with pytest.raises(DvfsError):
            driver.sysfs_write(
                "/sys/devices/system/cpu/cpu0/cpufreq/scaling_setspeed", "fast"
            )

    def test_unknown_attribute_rejected(self, driver):
        with pytest.raises(DvfsError):
            driver.sysfs_read("/sys/devices/system/cpu/cpu0/cpufreq/energy_bias")


class TestDvfsPolicy:
    def test_policy_values(self):
        assert DvfsPolicy.PER_CORE.value == "per-core"
        assert DvfsPolicy.CHIP_WIDE.value == "chip-wide"
