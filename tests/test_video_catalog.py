"""Unit tests for repro.video.catalog."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import VideoError
from repro.video.catalog import (
    SEQUENCE_CATALOG,
    catalog_entries,
    hr_sequences,
    lr_sequences,
    make_sequence,
    random_sequence,
)
from repro.video.sequence import ResolutionClass


class TestCatalog:
    def test_catalog_contains_both_classes(self):
        assert len(hr_sequences()) >= 4
        assert len(lr_sequences()) >= 4

    def test_hr_and_lr_are_disjoint(self):
        assert not set(hr_sequences()) & set(lr_sequences())

    def test_every_entry_name_matches_key(self):
        for name, entry in SEQUENCE_CATALOG.items():
            assert entry.name == name

    def test_catalog_entries_filter(self):
        hr_entries = list(catalog_entries(ResolutionClass.HR))
        assert all(e.resolution_class is ResolutionClass.HR for e in hr_entries)
        assert len(list(catalog_entries())) == len(SEQUENCE_CATALOG)


class TestMakeSequence:
    def test_make_known_sequence(self):
        sequence = make_sequence("Kimono", num_frames=50, seed=3)
        assert sequence.name == "Kimono"
        assert len(sequence) == 50
        assert sequence.resolution_class is ResolutionClass.HR

    def test_lr_sequence_dimensions(self):
        sequence = make_sequence("RaceHorses", num_frames=20)
        assert (sequence.width, sequence.height) == (832, 480)

    def test_default_num_frames_from_catalog(self):
        sequence = make_sequence("Kimono")
        assert len(sequence) == SEQUENCE_CATALOG["Kimono"].num_frames

    def test_unknown_name_raises(self):
        with pytest.raises(VideoError, match="unknown sequence"):
            make_sequence("NotAVideo")

    def test_same_seed_reproducible(self):
        a = make_sequence("Cactus", num_frames=30, seed=9)
        b = make_sequence("Cactus", num_frames=30, seed=9)
        assert [f.complexity for f in a] == [f.complexity for f in b]


class TestRandomSequence:
    def test_respects_resolution_class(self):
        rng = np.random.default_rng(0)
        for _ in range(5):
            assert (
                random_sequence(ResolutionClass.HR, rng=rng).resolution_class
                is ResolutionClass.HR
            )
            assert (
                random_sequence(ResolutionClass.LR, rng=rng).resolution_class
                is ResolutionClass.LR
            )

    def test_integer_seed_is_reproducible(self):
        a = random_sequence(ResolutionClass.HR, rng=5, num_frames=20)
        b = random_sequence(ResolutionClass.HR, rng=5, num_frames=20)
        assert a.name == b.name
        assert [f.complexity for f in a] == [f.complexity for f in b]

    def test_num_frames_override(self):
        sequence = random_sequence(ResolutionClass.LR, rng=1, num_frames=17)
        assert len(sequence) == 17

    def test_draws_cover_multiple_names(self):
        rng = np.random.default_rng(123)
        names = {random_sequence(ResolutionClass.HR, rng=rng).name for _ in range(30)}
        assert len(names) > 1
