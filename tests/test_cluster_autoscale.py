"""Autoscaling: policy behavior, elastic orchestration, engine equivalence."""

from __future__ import annotations

import pytest

from repro.cluster import (
    AutoscaleDecision,
    AutoscaleSignals,
    CapacityThreshold,
    ClusterOrchestrator,
    ClusterSnapshot,
    DiurnalTraffic,
    FixedFleet,
    FlashCrowdTraffic,
    PoissonTraffic,
    PredictiveScaling,
    ReactiveThreshold,
    ServerSnapshot,
    TargetTracking,
    WorkloadGenerator,
)
from repro.errors import ClusterError
from repro.manager.factories import static_factory


def make_signals(
    *,
    step=0,
    active_per_server=(0, 0),
    queue_length=0,
    arrivals=0,
    warming=0,
    draining=0,
    last_power_w=40.0,
    idle_power_w=20.0,
    power_cap_w=None,
    min_servers=1,
    max_servers=None,
):
    servers = tuple(
        ServerSnapshot(
            server_index=i,
            active_sessions=active,
            last_power_w=last_power_w,
            sessions_dispatched=active,
            idle_power_w=idle_power_w,
            last_active_sessions=active,
        )
        for i, active in enumerate(active_per_server)
    )
    snapshot = ClusterSnapshot(
        step=step,
        servers=servers,
        queue_length=queue_length,
        power_cap_w=(
            power_cap_w if power_cap_w is not None else 100.0 * len(servers)
        ),
    )
    return AutoscaleSignals(
        step=step,
        snapshot=snapshot,
        arrivals=arrivals,
        provisioned_servers=len(servers) + warming,
        warming_servers=warming,
        draining_servers=draining,
        min_servers=min_servers,
        max_servers=max_servers,
    )


class TestFixedFleet:
    def test_never_resizes(self):
        policy = FixedFleet()
        signals = make_signals(active_per_server=(4, 4), queue_length=30)
        assert policy.decide(signals).target_servers == signals.provisioned_servers


class TestReactiveThreshold:
    def test_queue_backlog_sizes_the_scale_up(self):
        policy = ReactiveThreshold(scale_up_queue=4, sessions_per_server=4)
        decision = policy.decide(
            make_signals(active_per_server=(4, 4), queue_length=9)
        )
        # ceil(9 / 4) = 3 more servers on top of the 2 provisioned.
        assert decision.target_servers == 5

    def test_warming_servers_are_subtracted(self):
        policy = ReactiveThreshold(scale_up_queue=4, sessions_per_server=4)
        decision = policy.decide(
            make_signals(active_per_server=(4, 4), queue_length=9, warming=3)
        )
        assert decision.target_servers == 5  # 2 dispatchable + 3 warming

    def test_utilization_triggers_scale_up_without_queue(self):
        policy = ReactiveThreshold(
            scale_up_utilization=0.85, sessions_per_server=4
        )
        decision = policy.decide(make_signals(active_per_server=(4, 3)))
        assert decision.target_servers == 3

    def test_inside_hysteresis_band_holds(self):
        policy = ReactiveThreshold(
            scale_up_utilization=0.85,
            scale_down_utilization=0.35,
            sessions_per_server=4,
        )
        decision = policy.decide(make_signals(active_per_server=(2, 2)))
        assert decision.target_servers == 2

    def test_scale_down_needs_cooldown(self):
        policy = ReactiveThreshold(
            scale_down_utilization=0.35,
            sessions_per_server=4,
            scale_down_cooldown_steps=10,
        )
        early = policy.decide(make_signals(step=5, active_per_server=(1, 0)))
        assert early.target_servers == 2
        late = policy.decide(make_signals(step=10, active_per_server=(1, 0)))
        assert late.target_servers == 1

    def test_scale_up_resets_the_cooldown(self):
        policy = ReactiveThreshold(
            scale_up_queue=4,
            scale_down_utilization=0.35,
            sessions_per_server=4,
            scale_down_cooldown_steps=10,
        )
        policy.decide(make_signals(step=12, active_per_server=(4, 4), queue_length=8))
        held = policy.decide(make_signals(step=15, active_per_server=(1, 0)))
        assert held.target_servers == 2  # cooldown restarted at step 12

    def test_clamped_scale_up_does_not_reset_the_cooldown(self):
        # A fleet pinned at max_servers keeps "asking" to grow; those
        # clamped no-ops must not push the scale-down cooldown forward.
        policy = ReactiveThreshold(
            scale_up_queue=4,
            scale_down_utilization=0.35,
            sessions_per_server=4,
            scale_down_cooldown_steps=10,
        )
        pinned = policy.decide(
            make_signals(
                step=5, active_per_server=(4, 4), queue_length=9, max_servers=2
            )
        )
        assert pinned.target_servers == 2  # clamped at max_servers=2

        down = policy.decide(
            make_signals(step=10, active_per_server=(1, 0), max_servers=2)
        )
        assert down.target_servers == 1  # cooldown still counts from step 0

    def test_max_step_up_bounds_one_move(self):
        policy = ReactiveThreshold(
            scale_up_queue=4, sessions_per_server=4, max_step_up=2
        )
        decision = policy.decide(
            make_signals(active_per_server=(4, 4), queue_length=40)
        )
        assert decision.target_servers == 4

    def test_thresholds_validated(self):
        with pytest.raises(ClusterError):
            ReactiveThreshold(scale_up_utilization=0.5, scale_down_utilization=0.6)
        with pytest.raises(ClusterError):
            ReactiveThreshold(scale_up_queue=0)
        with pytest.raises(ClusterError):
            ReactiveThreshold(sessions_per_server=0)


class TestTargetTracking:
    def test_scales_up_above_deadband(self):
        policy = TargetTracking(target_power_fraction=0.5, deadband=0.1)
        # 2 servers at 90 W of a 200 W budget -> 90% >> 50% target.
        decision = policy.decide(
            make_signals(active_per_server=(3, 3), last_power_w=90.0)
        )
        assert decision.target_servers > 2

    def test_holds_inside_deadband(self):
        policy = TargetTracking(target_power_fraction=0.5, deadband=0.2)
        decision = policy.decide(
            make_signals(active_per_server=(2, 2), last_power_w=50.0)
        )
        assert decision.target_servers == 2

    def test_scales_down_when_cold_after_cooldown(self):
        policy = TargetTracking(
            target_power_fraction=0.6, scale_down_cooldown_steps=5
        )
        signals = make_signals(
            step=6, active_per_server=(1, 0, 0, 0), last_power_w=22.0
        )
        decision = policy.decide(signals)
        assert decision.target_servers < 4

    def test_parameters_validated(self):
        with pytest.raises(ClusterError):
            TargetTracking(target_power_fraction=0.0)
        with pytest.raises(ClusterError):
            TargetTracking(watts_per_session_estimate=-1.0)


class TestPredictiveScaling:
    def test_forecast_tracks_arrivals(self):
        policy = PredictiveScaling(alpha=0.5, service_steps=8, sessions_per_server=4)
        policy.decide(make_signals(step=0, arrivals=4))
        assert policy.rate_forecast == pytest.approx(4.0)
        policy.decide(make_signals(step=1, arrivals=0))
        assert policy.rate_forecast == pytest.approx(2.0)

    def test_ramp_grows_the_fleet(self):
        policy = PredictiveScaling(
            alpha=1.0, service_steps=16, sessions_per_server=4, headroom=1.0
        )
        decision = policy.decide(make_signals(step=0, arrivals=2))
        # 2/step * 16 steps = 32 sessions -> 8 servers.
        assert decision.target_servers == 8

    def test_occupancy_floor_blocks_premature_shrink(self):
        policy = PredictiveScaling(
            alpha=1.0,
            service_steps=16,
            sessions_per_server=4,
            headroom=1.0,
            scale_down_cooldown_steps=0,
            scale_down_slack=0,
        )
        # Forecast says 1 server, but 11 sessions are still running.
        decision = policy.decide(
            make_signals(step=20, arrivals=0, active_per_server=(4, 4, 3, 0))
        )
        assert decision.target_servers == 3

    def test_slack_blocks_single_server_shrink(self):
        policy = PredictiveScaling(
            alpha=1.0,
            service_steps=4,
            sessions_per_server=4,
            headroom=1.0,
            scale_down_cooldown_steps=0,
            scale_down_slack=1,
        )
        decision = policy.decide(
            make_signals(step=20, arrivals=1, active_per_server=(1, 0))
        )
        assert decision.target_servers == 2  # one-server excess is tolerated

    def test_parameters_validated(self):
        with pytest.raises(ClusterError):
            PredictiveScaling(alpha=0.0)
        with pytest.raises(ClusterError):
            PredictiveScaling(headroom=0.5)
        with pytest.raises(ClusterError):
            PredictiveScaling(service_steps=0)


def make_cluster(
    engine="batch",
    *,
    traffic,
    duration=None,
    servers=2,
    autoscaler=None,
    seed=3,
    frames_per_video=16,
    max_servers=8,
    warmup=2,
    max_queue=32,
):
    workload = WorkloadGenerator(
        traffic, seed=seed, frames_per_video=frames_per_video
    )
    return ClusterOrchestrator(
        servers,
        workload,
        admission=CapacityThreshold(max_sessions_per_server=4, max_queue=max_queue),
        controller_factory=static_factory(qp=32, threads=4, frequency_ghz=3.2),
        seed=seed,
        engine=engine,
        autoscaler=autoscaler,
        min_servers=1,
        max_servers=max_servers,
        provision_warmup_steps=warmup,
    )


def flash_traffic():
    return FlashCrowdTraffic(0.25, peak_multiplier=5.0, start=25, duration=20)


class TestElasticOrchestration:
    def run_flash(self, engine="batch"):
        cluster = make_cluster(
            engine,
            traffic=flash_traffic(),
            autoscaler=ReactiveThreshold(sessions_per_server=4),
        )
        return cluster.run(70)

    def test_fleet_grows_during_flash_crowd(self):
        result = self.run_flash()
        assert any(e.direction == "up" for e in result.scaling_events)
        sizes = [s.live_servers for s in result.fleet_trace]
        assert max(sizes) > 2
        # The commissioned servers actually served sessions.
        assert len(result.records_by_server) > 2
        assert any(records for records in result.records_by_server[2:])

    def test_fleet_shrinks_after_the_burst(self):
        result = self.run_flash()
        assert any(e.direction == "down" for e in result.scaling_events)
        # Decommissioned servers stop sampling: their trace is shorter.
        lengths = {len(trace) for trace in result.samples_by_server}
        assert len(lengths) > 1

    def test_warmup_delays_first_session(self):
        result = self.run_flash()
        warmup = 2
        ups = [e for e in result.scaling_events if e.direction == "up"]
        assert ups
        commissioned = result.samples_by_server[2:]
        for index, trace in enumerate(commissioned, start=2):
            if not trace:
                continue
            first_step = trace[0].step
            # Powered on from its commission step, but idle through the
            # warm-up: no session activity before ready.
            busy = [s.step for s in trace if s.active_sessions > 0]
            if busy:
                assert min(busy) >= first_step + warmup

    def test_drain_never_kills_admitted_sessions(self):
        result = self.run_flash()
        assert any(e.direction == "down" for e in result.scaling_events)
        for records in result.records_by_server:
            for session_id, session_records in records.items():
                assert len(session_records) == 16, session_id

    def test_provisioned_fleet_respects_the_band(self):
        result = self.run_flash()
        for sample in result.fleet_trace:
            provisioned = sample.dispatchable_servers + sample.warming_servers
            assert 1 <= provisioned <= 8

    def test_fleet_trace_covers_every_step(self):
        result = self.run_flash()
        assert [s.step for s in result.fleet_trace] == list(range(result.steps))

    def test_no_autoscaler_keeps_the_fleet_fixed(self):
        cluster = make_cluster(traffic=flash_traffic())
        result = cluster.run(70)
        assert result.scaling_events == ()
        assert {s.live_servers for s in result.fleet_trace} == {2}
        assert all(len(t) == result.steps for t in result.samples_by_server)

    def test_parameters_validated(self):
        workload = WorkloadGenerator(PoissonTraffic(0.5), seed=0)
        with pytest.raises(ClusterError):
            ClusterOrchestrator(2, workload, min_servers=0)
        with pytest.raises(ClusterError):
            ClusterOrchestrator(2, workload, min_servers=4, max_servers=2)
        with pytest.raises(ClusterError):
            ClusterOrchestrator(2, workload, provision_warmup_steps=-1)


class TestEngineEquivalenceUnderScaling:
    # The batch stepper is rebuilt on every fleet resize; these runs resize
    # repeatedly mid-run and must stay bitwise identical to the scalar path.

    def assert_identical(self, a, b):
        assert a.records_by_server == b.records_by_server
        assert a.samples_by_server == b.samples_by_server
        assert a.scaling_events == b.scaling_events
        assert a.fleet_trace == b.fleet_trace
        assert a.queue_waits == b.queue_waits
        assert (a.arrivals, a.admitted, a.rejected, a.abandoned, a.steps) == (
            b.arrivals,
            b.admitted,
            b.rejected,
            b.abandoned,
            b.steps,
        )
        assert a.summary() == b.summary()

    def test_grow_during_flash_crowd(self):
        results = [
            make_cluster(
                engine,
                traffic=flash_traffic(),
                autoscaler=ReactiveThreshold(sessions_per_server=4),
            ).run(70)
            for engine in ("scalar", "batch")
        ]
        assert any(e.direction == "up" for e in results[0].scaling_events)
        self.assert_identical(*results)

    def test_shrink_during_drain(self):
        # A long playlist keeps sessions alive into the drain tail; the
        # autoscaler may only shrink there.
        def build(engine):
            return make_cluster(
                engine,
                traffic=FlashCrowdTraffic(0.2, peak_multiplier=5.0, start=10, duration=10),
                autoscaler=ReactiveThreshold(
                    sessions_per_server=4, scale_down_cooldown_steps=5
                ),
                frames_per_video=40,
            )

        results = [build(engine).run(30) for engine in ("scalar", "batch")]
        drain_downs = [
            e
            for e in results[0].scaling_events
            if e.direction == "down" and e.step >= 30
        ]
        assert drain_downs, "expected the fleet to shrink during the drain tail"
        assert all(
            e.direction == "down"
            for e in results[0].scaling_events
            if e.step >= 30
        )
        self.assert_identical(*results)

    def test_predictive_policy_equivalence(self):
        results = [
            make_cluster(
                engine,
                traffic=DiurnalTraffic(0.6, amplitude=0.8, period=40),
                autoscaler=PredictiveScaling(
                    sessions_per_server=4, service_steps=16
                ),
            ).run(60)
            for engine in ("scalar", "batch")
        ]
        assert results[0].scaling_events
        self.assert_identical(*results)


class TestHysteresis:
    def test_noisy_diurnal_trace_does_not_flap(self):
        cluster = make_cluster(
            traffic=DiurnalTraffic(0.5, amplitude=0.6, period=50),
            autoscaler=ReactiveThreshold(
                sessions_per_server=4, scale_down_cooldown_steps=12
            ),
            max_servers=6,
        )
        result = cluster.run(150)
        events = result.scaling_events
        # The fleet follows the daily swing without thrashing: every
        # scale-down sits at least a cooldown after the previous resize,
        # and the total resize count stays far below one per step.
        for previous, event in zip(events, events[1:]):
            if event.direction == "down":
                assert event.step - previous.step >= 12
        # Three diurnal cycles plus the drain tail: a handful of resizes
        # per cycle is tracking; one per step would be flapping.
        assert len(events) <= 16
        down_then_up = [
            (a, b)
            for a, b in zip(events, events[1:])
            if a.direction == "down" and b.direction == "up"
        ]
        for down, up in down_then_up:
            assert up.step - down.step >= 5, "immediate down->up flap"


class TestAcceptanceCriterion:
    """ISSUE 3: reactive autoscaling beats both fixed sizings on a burst."""

    def run_fleet(self, servers, max_servers, autoscaler):
        cluster = make_cluster(
            traffic=FlashCrowdTraffic(0.25, peak_multiplier=5.0, start=40, duration=25),
            duration=None,
            servers=servers,
            autoscaler=autoscaler,
            max_servers=max_servers,
            max_queue=24,
        )
        return cluster.run(80).summary()

    def test_reactive_beats_fixed_mean_and_fixed_peak(self):
        mean_servers, peak_servers = 1, 8
        fixed_mean = self.run_fleet(mean_servers, mean_servers, None)
        fixed_peak = self.run_fleet(peak_servers, peak_servers, None)
        reactive = self.run_fleet(
            mean_servers,
            peak_servers,
            ReactiveThreshold(sessions_per_server=4),
        )
        # Strictly fewer abandoned requests than the mean-sized fleet...
        assert fixed_mean.abandoned > 0
        assert reactive.abandoned < fixed_mean.abandoned
        # ...at a strictly lower time-weighted fleet size than peak sizing.
        assert reactive.mean_fleet_size < fixed_peak.mean_fleet_size
        assert fixed_peak.mean_fleet_size == pytest.approx(peak_servers)
