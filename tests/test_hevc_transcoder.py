"""Unit tests for repro.hevc.transcoder."""

from __future__ import annotations

import pytest

from repro.hevc.params import EncoderConfig, Preset
from repro.hevc.transcoder import Transcoder


class TestTranscoder:
    def test_total_time_is_decode_plus_encode(self, transcoder, hr_frame):
        config = EncoderConfig(qp=32, threads=8)
        result = transcoder.transcode_frame(hr_frame, config, 3.2)
        assert result.total_time_s == pytest.approx(
            result.decoded.decode_time_s + result.encoded.encode_time_s
        )
        assert result.fps == pytest.approx(1.0 / result.total_time_s)

    def test_decode_overhead_is_small(self, transcoder, hr_frame):
        config = EncoderConfig(qp=32, threads=8)
        result = transcoder.transcode_frame(hr_frame, config, 3.2)
        assert result.decoded.decode_time_s < 0.15 * result.encoded.encode_time_s

    def test_convenience_properties(self, transcoder, hr_frame):
        config = EncoderConfig(qp=32, threads=8)
        result = transcoder.transcode_frame(hr_frame, config, 3.2)
        assert result.psnr_db == result.encoded.psnr_db
        assert result.bitrate_mbps == result.encoded.bitrate_mbps
        assert result.cycles == pytest.approx(result.decoded.cycles + result.encoded.cycles)

    def test_shared_complexity_model_between_stages(self):
        transcoder = Transcoder()
        assert transcoder.decoder.complexity_model is transcoder.encoder.complexity_model

    def test_hr_ultrafast_realtime_feasible_at_max_configuration(self, transcoder, hr_frame):
        """The platform must be able to reach the 24 FPS target for HR videos
        (otherwise the control problem of the paper would be infeasible)."""
        config = EncoderConfig(qp=37, threads=12, preset=Preset.ULTRAFAST)
        result = transcoder.transcode_frame(hr_frame, config, 3.2)
        assert result.fps > 24.0

    def test_lr_slow_realtime_feasible_at_moderate_configuration(self, transcoder, lr_frame):
        """LR videos use the slow preset and must be real-time with ~5 threads."""
        config = EncoderConfig(qp=32, threads=5, preset=Preset.SLOW)
        result = transcoder.transcode_frame(lr_frame, config, 3.2)
        assert result.fps > 24.0

    def test_activity_factor_delegates_to_encoder(self, transcoder, hr_frame):
        config = EncoderConfig(qp=32, threads=8)
        assert transcoder.activity_factor(hr_frame, config) == pytest.approx(
            transcoder.encoder.activity_factor(hr_frame, config)
        )

    def test_contention_scale_is_passed_through(self, transcoder, hr_frame):
        config = EncoderConfig(qp=32, threads=8)
        free = transcoder.transcode_frame(hr_frame, config, 3.2, contention_scale=1.0)
        contended = transcoder.transcode_frame(hr_frame, config, 3.2, contention_scale=0.6)
        assert contended.fps < free.fps
