"""Telemetry purity rule: TEL101 (observe paths must not mutate
passed-in objects)."""

from __future__ import annotations

from lint_fixtures import codes_of, lint_snippet


class TestTelemetryPurity:
    def test_entry_point_mutating_parameter_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/telemetry/mod.py",
            """
            class Hook:
                def observe_sample(self, sample):
                    sample.dirty = True
            """,
        )
        assert codes_of(findings) == ["TEL101"]

    def test_reachable_helper_flagged(self, tmp_path):
        # The mutation hides one call down from the entry point.
        findings = lint_snippet(
            tmp_path,
            "repro/telemetry/mod.py",
            """
            def _stamp(event):
                event.seen = True

            class Sink:
                def emit(self, event):
                    _stamp(event)
            """,
        )
        assert codes_of(findings) == ["TEL101"]

    def test_augmented_and_nested_attribute_assignments_flagged(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/telemetry/mod.py",
            """
            def record_step(server):
                server.stats.count += 1
            """,
        )
        assert codes_of(findings) == ["TEL101"]

    def test_self_mutation_passes(self, tmp_path):
        # Telemetry owns its own state: counters, ring buffers, spans.
        findings = lint_snippet(
            tmp_path,
            "repro/telemetry/mod.py",
            """
            class Hub:
                def observe_sample(self, sample):
                    self.samples += 1
                    self.last = sample.value
            """,
        )
        assert findings == []

    def test_unreachable_mutator_passes(self, tmp_path):
        # Not called from any observe/record/emit path; other rules may
        # care, TEL101 does not.
        findings = lint_snippet(
            tmp_path,
            "repro/telemetry/mod.py",
            """
            def reset(state):
                state.cursor = 0

            class Hub:
                def observe_sample(self, sample):
                    self.count = self.count + 1
            """,
        )
        assert findings == []

    def test_telemetry_annotated_parameter_exempt(self, tmp_path):
        # Mutating a telemetry-owned carrier class is the machinery
        # working, not a purity breach.
        findings = lint_snippet(
            tmp_path,
            "repro/telemetry/mod.py",
            """
            class SpanState:
                open = 0

            def record_open(state: SpanState):
                state.open += 1
            """,
        )
        assert findings == []

    def test_nested_function_judged_on_its_own_params(self, tmp_path):
        # The closure's `event` is the closure's parameter, not the
        # entry point's; it must be flagged exactly once.
        findings = lint_snippet(
            tmp_path,
            "repro/telemetry/mod.py",
            """
            class Sink:
                def emit(self, event):
                    def tag(event):
                        event.tagged = True
                    tag(event)
            """,
        )
        assert codes_of(findings) == ["TEL101"]

    def test_rule_is_scoped_to_telemetry_layer(self, tmp_path):
        # Engines mutate state by design; TEL101 only polices telemetry.
        findings = lint_snippet(
            tmp_path,
            "repro/cluster/mod.py",
            """
            class Stepper:
                def observe_sample(self, sample):
                    sample.dirty = True
            """,
        )
        assert findings == []

    def test_suppression(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "repro/telemetry/mod.py",
            """
            class Hook:
                def observe_sample(self, sample):
                    sample.dirty = True  # repro: allow[TEL101]
            """,
        )
        assert findings == []
