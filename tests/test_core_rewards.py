"""Unit tests for repro.core.rewards (paper Sec. III-D, Eq. 1-2)."""

from __future__ import annotations

import pytest

from repro.core.observation import Observation
from repro.core.rewards import RewardConfig, RewardFunction, VIOLATION_PENALTY
from repro.errors import ConfigurationError


@pytest.fixture
def rewards() -> RewardFunction:
    return RewardFunction()


def obs(fps=25.0, psnr=36.0, bitrate=4.0, power=80.0) -> Observation:
    return Observation(fps=fps, psnr_db=psnr, bitrate_mbps=bitrate, power_w=power)


class TestFpsReward:
    def test_below_target_penalised(self, rewards):
        """Eq. 1: -4 when FPS < FPStarget."""
        assert rewards.fps_reward(23.9) == VIOLATION_PENALTY
        assert rewards.fps_reward(1.0) == VIOLATION_PENALTY

    def test_maximum_exactly_at_target(self, rewards):
        """Eq. 1: 1 / (FPS - (target - 1)) is maximal (=1) at the target."""
        assert rewards.fps_reward(24.0) == pytest.approx(1.0)

    def test_decreases_above_target_but_stays_positive(self, rewards):
        values = [rewards.fps_reward(fps) for fps in (24.0, 26.0, 30.0, 40.0)]
        assert values == sorted(values, reverse=True)
        assert all(v > 0 for v in values)

    def test_formula_above_target(self, rewards):
        assert rewards.fps_reward(28.0) == pytest.approx(1.0 / (28.0 - 23.0))


class TestPsnrReward:
    def test_out_of_range_penalised(self, rewards):
        """Eq. 2: -4 when PSNR < 30 or PSNR > 50."""
        assert rewards.psnr_reward(29.9) == VIOLATION_PENALTY
        assert rewards.psnr_reward(50.1) == VIOLATION_PENALTY

    def test_endpoints(self, rewards):
        """Eq. 2: reward 0 at 30 dB and 1 at 50 dB."""
        assert rewards.psnr_reward(30.0) == pytest.approx(0.0, abs=1e-9)
        assert rewards.psnr_reward(50.0) == pytest.approx(1.0, abs=1e-9)

    def test_monotone_increasing_inside_range(self, rewards):
        values = [rewards.psnr_reward(psnr) for psnr in (30.0, 35.0, 40.0, 45.0, 50.0)]
        assert values == sorted(values)

    def test_exponential_shape_is_convex(self, rewards):
        """e^{PSNR/50} grows faster near 50 dB than near 30 dB."""
        low_gain = rewards.psnr_reward(35.0) - rewards.psnr_reward(30.0)
        high_gain = rewards.psnr_reward(50.0) - rewards.psnr_reward(45.0)
        assert high_gain > low_gain


class TestConstraintRewards:
    def test_bitrate_constraint(self, rewards):
        assert rewards.bitrate_reward(5.9) == 0.0
        assert rewards.bitrate_reward(6.1) == VIOLATION_PENALTY

    def test_power_constraint(self, rewards):
        cap = rewards.config.power_cap_w
        assert rewards.power_reward(cap - 1.0) == 0.0
        assert rewards.power_reward(cap) == VIOLATION_PENALTY
        assert rewards.power_reward(cap + 50.0) == VIOLATION_PENALTY


class TestTotalReward:
    def test_breakdown_sums_components(self, rewards):
        breakdown = rewards.breakdown(obs())
        assert breakdown.total == pytest.approx(
            breakdown.fps + breakdown.psnr + breakdown.bitrate + breakdown.power
        )
        assert rewards.total(obs()) == pytest.approx(breakdown.total)

    def test_weights_are_applied(self):
        config = RewardConfig(fps_weight=2.0, psnr_weight=0.0)
        weighted = RewardFunction(config)
        unweighted = RewardFunction()
        observation = obs(fps=24.0, psnr=40.0)
        assert weighted.total(observation) == pytest.approx(
            2.0 * unweighted.fps_reward(24.0)
            + unweighted.bitrate_reward(4.0)
            + unweighted.power_reward(80.0)
        )

    def test_good_operating_point_scores_higher_than_violating_one(self, rewards):
        good = rewards.total(obs(fps=25.0, psnr=40.0, bitrate=4.0, power=90.0))
        bad = rewards.total(obs(fps=15.0, psnr=28.0, bitrate=9.0, power=130.0))
        assert good > 0 > bad


class TestRewardConfig:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RewardConfig(fps_target=0.0)
        with pytest.raises(ConfigurationError):
            RewardConfig(psnr_min_db=50.0, psnr_max_db=30.0)
        with pytest.raises(ConfigurationError):
            RewardConfig(bandwidth_mbps=0.0)
        with pytest.raises(ConfigurationError):
            RewardConfig(power_cap_w=0.0)


class TestExactBatchMode:
    def test_exact_batch_is_bitwise_equal_to_scalar(self):
        import numpy as np

        from repro.core.observation import Observation

        function = RewardFunction()
        rng = np.random.default_rng(11)
        fps = rng.uniform(5.0, 60.0, 500)
        psnr = rng.uniform(20.0, 60.0, 500)
        bitrate = rng.uniform(0.1, 12.0, 500)
        power = rng.uniform(40.0, 200.0, 500)
        batch = function.total_batch(fps, psnr, bitrate, power, exact=True)
        scalar = [
            function.total(Observation(f, p, b, w))
            for f, p, b, w in zip(fps, psnr, bitrate, power)
        ]
        # Bitwise, not approx: the batch engine's Q-table equivalence
        # guarantee rests on this.
        assert batch.tolist() == scalar

    def test_exact_and_default_modes_agree_to_float_noise(self):
        import numpy as np

        function = RewardFunction()
        psnr = np.linspace(30.0, 50.0, 64)
        fps = np.full_like(psnr, 24.0)
        zeros = np.zeros_like(psnr)
        exact = function.total_batch(fps, psnr, zeros, zeros, exact=True)
        default = function.total_batch(fps, psnr, zeros, zeros)
        assert np.allclose(exact, default, rtol=1e-14, atol=0.0)
