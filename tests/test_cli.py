"""Unit tests for the command-line interface (repro.cli)."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_all_commands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["quickstart"])
        assert args.command == "quickstart"
        for command in ("compare", "fig2", "fig4", "fig5", "table1", "table2", "cluster"):
            assert build_parser().parse_args([command]).command == command

    def test_cluster_accepts_trailing_seed(self):
        # The global --seed/--power-cap are also accepted after the
        # subcommand (and win when given there).
        args = build_parser().parse_args(["cluster", "--servers", "2", "--seed", "3"])
        assert args.servers == 2
        assert args.seed == 3
        args = build_parser().parse_args(["--seed", "9", "cluster"])
        assert args.seed == 9

    def test_missing_command_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_global_options(self):
        args = build_parser().parse_args(["--seed", "7", "--power-cap", "90", "quickstart"])
        assert args.seed == 7
        assert args.power_cap == pytest.approx(90.0)


class TestCommands:
    def test_quickstart_prints_metrics(self, capsys):
        assert main(["quickstart", "--frames", "60"]) == 0
        output = capsys.readouterr().out
        assert "mean FPS" in output
        assert "QoS violations" in output

    def test_fig2_prints_the_sweep(self, capsys):
        assert main(["fig2", "--frames", "6"]) == 0
        output = capsys.readouterr().out
        assert "threads" in output and "QP" in output

    def test_fig5_prints_a_trace(self, capsys):
        assert main(["fig5", "--frames", "60"]) == 0
        output = capsys.readouterr().out
        assert "frame" in output and "freq (GHz)" in output

    def test_compare_prints_all_controllers(self, capsys):
        assert main(
            ["compare", "--hr", "1", "--lr", "0", "--frames", "48", "--warmup-videos", "0"]
        ) == 0
        output = capsys.readouterr().out
        for name in ("Heuristic", "MonoAgent", "MAMUT"):
            assert name in output

    def test_table2_with_custom_mixes(self, capsys):
        assert main(
            [
                "table2",
                "--mixes",
                "1x1",
                "--frames-per-video",
                "24",
                "--warmup-videos",
                "0",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "1HR1LR" in output

    def test_cluster_prints_summary(self, capsys):
        assert main(
            [
                "cluster",
                "--servers",
                "2",
                "--arrival-rate",
                "0.5",
                "--duration",
                "30",
                "--frames-per-video",
                "12",
                "--seed",
                "1",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "admitted sessions" in output
        assert "fleet power (W)" in output
        assert "srv-0" in output and "srv-1" in output

    def test_cluster_brownout_prints_overload_metrics(self, capsys):
        assert main(
            [
                "cluster",
                "--servers",
                "1",
                "--traffic",
                "flash",
                "--arrival-rate",
                "0.8",
                "--duration",
                "30",
                "--frames-per-video",
                "10",
                "--patience",
                "4",
                "--brownout",
                "--seed",
                "1",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "dropped (patience)" in output
        assert "shed rate" in output
        assert "brownout steps" in output
        assert "degraded sessions" in output

    def test_cluster_class_aware_admission_runs(self, capsys):
        assert main(
            [
                "cluster",
                "--servers",
                "2",
                "--admission",
                "class-aware",
                "--hr-max-queue",
                "20",
                "--lr-max-queue",
                "2",
                "--lr-patience",
                "3",
                "--queue-while-warming",
                "--duration",
                "20",
                "--frames-per-video",
                "8",
                "--seed",
                "1",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "class-aware admission" in output

    def test_cluster_autoscale_prints_elasticity_metrics(self, capsys):
        assert main(
            [
                "cluster",
                "--servers",
                "1",
                "--traffic",
                "flash",
                "--arrival-rate",
                "0.4",
                "--duration",
                "40",
                "--frames-per-video",
                "10",
                "--autoscale",
                "reactive",
                "--max-servers",
                "4",
                "--warmup-steps",
                "2",
                "--seed",
                "1",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "reactive autoscaling" in output
        assert "mean fleet size" in output
        assert "scale-up events" in output


class TestObservabilityCommands:
    """The obs family: cluster --summary-out/--slo-*, obs report, obs compare."""

    BASE = [
        "cluster", "--servers", "2", "--arrival-rate", "1.0",
        "--duration", "30", "--traffic", "flash", "--patience", "8",
        "--frames-per-video", "12", "--seed", "1",
    ]

    def run_scenario(self, tmp_path, name, extra=()):
        summary_out = tmp_path / f"{name}.json"
        trace_out = tmp_path / f"{name}.jsonl"
        argv = self.BASE + list(extra) + [
            "--summary-out", str(summary_out), "--trace-out", str(trace_out),
        ]
        assert main(argv) == 0
        return summary_out, trace_out

    def test_parser_registers_obs_commands(self):
        args = build_parser().parse_args(["obs", "report", "t.jsonl"])
        assert args.command == "obs" and args.obs_command == "report"
        args = build_parser().parse_args(["obs", "compare", "a.json", "b.json"])
        assert args.obs_command == "compare"

    def test_cluster_slo_flags_print_report(self, capsys):
        assert main(
            self.BASE + ["--slo-queue-wait-p95", "2", "--slo-shed-rate", "5",
                         "--slo-window", "8", "--slo-budget", "10"]
        ) == 0
        output = capsys.readouterr().out
        assert "SLO report:" in output
        assert "queue-wait-p95" in output and "shed-rate" in output
        assert "BREACHED" in output or "OK" in output

    def test_summary_artifact_has_provenance(self, tmp_path, capsys):
        import json

        summary_out, _ = self.run_scenario(tmp_path, "run")
        artifact = json.loads(summary_out.read_text())
        assert artifact["provenance"]["kind"] == "cluster"
        assert artifact["provenance"]["seed"] == {"seed": 1}
        assert artifact["provenance"]["config"]["servers"] == 2
        assert artifact["summary"]["arrivals"] > 0

    def test_obs_report_reconciles_and_exits_zero(self, tmp_path, capsys):
        summary_out, trace_out = self.run_scenario(tmp_path, "run")
        capsys.readouterr()
        assert main(["obs", "report", str(trace_out),
                     "--summary", str(summary_out)]) == 0
        output = capsys.readouterr().out
        assert "Latency breakdown" in output
        assert "Reconciliation" in output and "OK" in output

    def test_obs_report_fails_on_mismatched_summary(self, tmp_path, capsys):
        import json

        summary_out, trace_out = self.run_scenario(tmp_path, "run")
        artifact = json.loads(summary_out.read_text())
        artifact["summary"]["rejected"] += 1
        summary_out.write_text(json.dumps(artifact))
        assert main(["obs", "report", str(trace_out),
                     "--summary", str(summary_out)]) == 1
        assert "MISMATCH" in capsys.readouterr().out

    def test_obs_compare_identical_runs_pass(self, tmp_path, capsys):
        a, _ = self.run_scenario(tmp_path, "a")
        b, _ = self.run_scenario(tmp_path, "b")
        capsys.readouterr()
        assert main(["obs", "compare", str(a), str(b)]) == 0
        assert "OK" in capsys.readouterr().out

    def test_obs_compare_refuses_different_scenarios(self, tmp_path, capsys):
        a, _ = self.run_scenario(tmp_path, "a")
        degraded, _ = self.run_scenario(tmp_path, "deg", extra=["--servers", "1"])
        capsys.readouterr()
        assert main(["obs", "compare", str(a), str(degraded)]) == 2
        assert "not comparable" in capsys.readouterr().out

    def test_obs_compare_forced_diff_flags_regression(self, tmp_path, capsys):
        a, _ = self.run_scenario(tmp_path, "a")
        degraded, _ = self.run_scenario(tmp_path, "deg", extra=["--servers", "1"])
        capsys.readouterr()
        assert main(["obs", "compare", str(a), str(degraded), "--force"]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_obs_compare_tolerance_and_ignore(self, tmp_path, capsys):
        import json

        a, _ = self.run_scenario(tmp_path, "a")
        b = tmp_path / "b.json"
        artifact = json.loads(a.read_text())
        artifact["summary"]["fleet_mean_power_w"] *= 1.005  # 0.5% drift
        b.write_text(json.dumps(artifact))
        assert main(["obs", "compare", str(a), str(b)]) == 1
        assert main(["obs", "compare", str(a), str(b), "--rel-tol", "0.01"]) == 0
        assert main(["obs", "compare", str(a), str(b),
                     "--ignore", "summary.fleet_mean_power_w"]) == 0
