"""Unit tests for repro.manager.pretrain."""

from __future__ import annotations

from repro.manager.pretrain import pretrain_mamut, pretrained_mamut_factory
from repro.manager.runner import ExperimentRunner
from repro.manager.scenario import scenario_one
from repro.video.sequence import ResolutionClass


class TestPretrain:
    def test_pretraining_produces_knowledge_for_all_agents(self):
        snapshot = pretrain_mamut(ResolutionClass.HR, frames=300, seed=0)
        assert set(snapshot["agents"]) == {"qp", "threads", "dvfs"}
        assert all(agent["q_values"] for agent in snapshot["agents"].values())

    def test_pretrained_factory_seeds_new_controllers(self, hr_request):
        snapshot = pretrain_mamut(ResolutionClass.HR, frames=300, seed=0)
        factory = pretrained_mamut_factory({ResolutionClass.HR: snapshot})
        controller = factory(hr_request, seed=5)
        assert all(
            entry["q_entries"] > 0 for entry in controller.summary().values()
        )

    def test_factory_without_knowledge_for_a_class_starts_cold(self, lr_request):
        snapshot = pretrain_mamut(ResolutionClass.HR, frames=300, seed=0)
        factory = pretrained_mamut_factory({ResolutionClass.HR: snapshot})
        controller = factory(lr_request, seed=5)
        assert all(
            entry["q_entries"] == 0 for entry in controller.summary().values()
        )

    def test_pretrained_controller_beats_cold_start_on_short_runs(self):
        """With only a short measured window, a pre-trained MAMUT should not
        be worse than a cold-started one on the same workload."""
        snapshot = pretrain_mamut(ResolutionClass.HR, frames=1200, seed=0)
        specs = scenario_one(1, 0, num_frames=120, seed=1)
        runner = ExperimentRunner(seed=1)

        from repro.manager.factories import mamut_factory

        cold = runner.run("cold", mamut_factory(), specs)
        warm = runner.run(
            "warm", pretrained_mamut_factory({ResolutionClass.HR: snapshot}), specs
        )
        assert warm.qos_violation_pct <= cold.qos_violation_pct + 10.0
