"""Unit tests for repro.platform.server."""

from __future__ import annotations

import pytest

from repro.errors import AllocationError
from repro.platform.dvfs import DvfsPolicy
from repro.platform.server import MulticoreServer, SessionDemand


def demand(session_id="s0", threads=8, frequency=3.2, activity=0.8) -> SessionDemand:
    return SessionDemand(
        session_id=session_id, threads=threads, frequency_ghz=frequency, activity=activity
    )


class TestSessionDemand:
    def test_validation(self):
        with pytest.raises(AllocationError):
            demand(threads=0)
        with pytest.raises(AllocationError):
            demand(frequency=0.0)
        with pytest.raises(AllocationError):
            demand(activity=1.5)


class TestAllocation:
    def test_no_contention_below_core_count(self, server):
        allocation = server.allocate([demand(threads=10)])
        assert allocation.contention_scale("s0") == pytest.approx(1.0)
        assert allocation.total_threads == 10
        assert not allocation.oversubscribed

    def test_contention_appears_with_smt_sharing(self, server):
        allocation = server.allocate([demand("a", 12), demand("b", 12)])
        assert 0.5 < allocation.contention_scale("a") < 1.0
        assert not allocation.oversubscribed

    def test_oversubscription_detected(self, server):
        allocation = server.allocate([demand("a", 20), demand("b", 20)])
        assert allocation.oversubscribed
        assert allocation.contention_scale("a") < 0.8

    def test_contention_is_uniform_across_sessions(self, server):
        allocation = server.allocate([demand("a", 16), demand("b", 8)])
        assert allocation.contention_scale("a") == pytest.approx(
            allocation.contention_scale("b")
        )

    def test_duplicate_session_ids_rejected(self, server):
        with pytest.raises(AllocationError):
            server.allocate([demand("a"), demand("a")])

    def test_empty_allocation_is_idle_power(self, server):
        allocation = server.allocate([])
        assert allocation.total_threads == 0
        assert allocation.busy_cores == 0.0
        assert allocation.total_power_w > 0
        assert allocation.total_power_w < 60.0

    def test_power_grows_with_load(self, server):
        idle = server.allocate([]).total_power_w
        light = server.allocate([demand(threads=4)]).total_power_w
        heavy = server.allocate([demand("a", 12), demand("b", 12), demand("c", 12)]).total_power_w
        assert idle < light < heavy

    def test_power_grows_with_frequency(self, server):
        slow = server.allocate([demand(threads=10, frequency=1.6)]).total_power_w
        fast = server.allocate([demand(threads=10, frequency=3.2)]).total_power_w
        assert slow < fast

    def test_session_power_shares_sum_to_total(self, server):
        allocation = server.allocate([demand("a", 10), demand("b", 6, 2.3)])
        share_sum = sum(s.power_w for s in allocation.sessions.values())
        assert share_sum == pytest.approx(allocation.total_power_w, rel=1e-6)

    def test_chip_wide_policy_burns_more_power_when_cores_idle(self):
        per_core = MulticoreServer(dvfs_policy=DvfsPolicy.PER_CORE)
        chip_wide = MulticoreServer(dvfs_policy=DvfsPolicy.CHIP_WIDE)
        demands = [demand(threads=6, frequency=3.2)]
        assert (
            chip_wide.allocate(demands).total_power_w
            > per_core.allocate(demands).total_power_w
        )

    def test_chip_wide_equals_per_core_when_machine_is_full(self):
        per_core = MulticoreServer(dvfs_policy=DvfsPolicy.PER_CORE)
        chip_wide = MulticoreServer(dvfs_policy=DvfsPolicy.CHIP_WIDE)
        demands = [demand("a", 16, 3.2), demand("b", 16, 3.2)]
        assert chip_wide.allocate(demands).total_power_w == pytest.approx(
            per_core.allocate(demands).total_power_w
        )

    def test_scenario_ii_power_range(self, server):
        """Table II calibration: multi-user mixes land roughly in 80-140 W."""
        light = server.allocate(
            [demand("hr", 10, 2.9, 0.7), demand("lr", 4, 2.9, 0.8)]
        ).total_power_w
        heavy = server.allocate(
            [demand(f"hr{i}", 10, 3.2, 0.9) for i in range(3)]
            + [demand(f"lr{i}", 5, 3.2, 0.9) for i in range(3)]
        ).total_power_w
        assert 75.0 <= light <= 110.0
        assert 105.0 <= heavy <= 145.0

    def test_driver_mirrors_allocation(self, server):
        server.allocate([demand("a", 4, 2.9), demand("b", 2, 1.6)])
        freqs = server.dvfs.frequencies()
        assert [freqs[i] for i in range(4)] == [pytest.approx(2.9)] * 4
        assert [freqs[i] for i in range(4, 6)] == [pytest.approx(1.6)] * 2
        # Remaining cores are parked at the minimum frequency (per-core policy).
        assert freqs[10] == pytest.approx(server.dvfs.min_frequency_ghz)

    def test_busy_plus_idle_cores_equals_topology(self, server):
        allocation = server.allocate([demand(threads=5)])
        assert allocation.busy_cores + allocation.idle_cores == pytest.approx(
            server.topology.physical_cores
        )
