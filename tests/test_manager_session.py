"""Unit tests for repro.manager.session."""

from __future__ import annotations

import pytest

from repro.baselines.static import StaticController
from repro.core.controller import Controller, Decision
from repro.errors import ScenarioError
from repro.hevc.params import Preset
from repro.manager.session import TranscodingSession
from repro.video.catalog import make_sequence
from repro.video.request import TranscodingRequest


class _CountingController(Controller):
    """A static controller that counts reset() calls (playlist transitions)."""

    def __init__(self) -> None:
        self.resets = 0
        self.frames_seen: list[int] = []

    def decide(self, frame_index, observation) -> Decision:
        self.frames_seen.append(frame_index)
        return Decision(qp=32, threads=4, frequency_ghz=3.2)

    def reset(self) -> None:
        self.resets += 1


def make_session(
    num_frames=8, playlist_videos=1, controller=None, start_frame_index=0
) -> TranscodingSession:
    videos = [
        make_sequence("Kimono", num_frames=num_frames, seed=i) for i in range(playlist_videos)
    ]
    request = TranscodingRequest(user_id="u0", sequence=videos[0])
    return TranscodingSession(
        request=request,
        controller=controller if controller is not None else StaticController(32, 4, 3.2),
        playlist=videos,
        start_frame_index=start_frame_index,
    )


class TestSessionProtocol:
    def test_prepare_then_execute_produces_a_record(self):
        session = make_session()
        demand = session.prepare()
        assert demand.session_id == "u0"
        assert demand.threads == 4
        record = session.execute(contention_scale=1.0, server_power_w=75.0)
        assert record.session_id == "u0"
        assert record.step == 0
        assert record.power_w == pytest.approx(75.0)
        assert record.fps > 0
        assert session.step == 1

    def test_double_prepare_rejected(self):
        session = make_session()
        session.prepare()
        with pytest.raises(ScenarioError):
            session.prepare()

    def test_execute_without_prepare_rejected(self):
        session = make_session()
        with pytest.raises(ScenarioError):
            session.execute(1.0, 75.0)

    def test_session_finishes_after_all_frames(self):
        session = make_session(num_frames=3)
        for _ in range(3):
            session.prepare()
            session.execute(1.0, 75.0)
        assert not session.active
        with pytest.raises(ScenarioError):
            session.prepare()

    def test_observation_is_fed_back_to_the_controller(self):
        session = make_session()
        assert session.last_observation is None
        session.prepare()
        session.execute(1.0, 75.0)
        assert session.last_observation is not None
        assert session.last_observation.power_w == pytest.approx(75.0)


class TestPlaylist:
    def test_playlist_advances_and_resets_controller(self):
        controller = _CountingController()
        session = make_session(num_frames=4, playlist_videos=3, controller=controller)
        assert session.total_frames == 12
        for _ in range(12):
            session.prepare()
            session.execute(1.0, 75.0)
        assert not session.active
        # reset() fires on each video-to-video transition (not after the last).
        assert controller.resets == 2

    def test_step_counter_is_monotonic_across_videos(self):
        controller = _CountingController()
        session = make_session(num_frames=4, playlist_videos=2, controller=controller)
        for _ in range(8):
            session.prepare()
            session.execute(1.0, 75.0)
        assert controller.frames_seen == list(range(8))
        assert [r.step for r in session.records] == list(range(8))

    def test_empty_playlist_rejected(self):
        video = make_sequence("Kimono", num_frames=4)
        request = TranscodingRequest(user_id="u0", sequence=video)
        with pytest.raises(ScenarioError):
            TranscodingSession(request, StaticController(32, 4, 3.2), playlist=[])


class TestCheckpointResume:
    """``start_frame_index`` — how checkpointed sessions rejoin a fleet."""

    def test_resumes_mid_video(self):
        session = make_session(num_frames=8, start_frame_index=5)
        assert session.frame_index == 5
        # Only the remaining frames of the interrupted video are processed.
        records = []
        while session.active:
            session.prepare()
            records.append(session.execute(1.0, 75.0))
        assert [r.frame_index for r in records] == [5, 6, 7]

    def test_resume_spans_playlist_boundary(self):
        controller = _CountingController()
        session = make_session(
            num_frames=4, playlist_videos=2, controller=controller,
            start_frame_index=2,
        )
        while session.active:
            session.prepare()
            session.execute(1.0, 75.0)
        # Frames 2-3 of the interrupted video, then all of the next one.
        assert controller.frames_seen == [0, 1, 2, 3, 4, 5]
        assert controller.resets == 1

    def test_start_frame_must_be_inside_first_video(self):
        with pytest.raises(ScenarioError):
            make_session(num_frames=8, start_frame_index=8)
        with pytest.raises(ScenarioError):
            make_session(num_frames=8, start_frame_index=-1)


class TestPresets:
    def test_hr_uses_ultrafast_and_lr_uses_slow(self):
        hr_video = make_sequence("Cactus", num_frames=4)
        lr_video = make_sequence("BQMall", num_frames=4)
        hr_session = TranscodingSession(
            TranscodingRequest(user_id="hr", sequence=hr_video), StaticController(32, 4, 3.2)
        )
        lr_session = TranscodingSession(
            TranscodingRequest(user_id="lr", sequence=lr_video), StaticController(32, 4, 3.2)
        )
        assert hr_session.preset_for(hr_video) is Preset.ULTRAFAST
        assert lr_session.preset_for(lr_video) is Preset.SLOW

    def test_preset_override(self):
        video = make_sequence("Cactus", num_frames=4)
        session = TranscodingSession(
            TranscodingRequest(user_id="u", sequence=video),
            StaticController(32, 4, 3.2),
            preset=Preset.MEDIUM,
        )
        assert session.preset_for(video) is Preset.MEDIUM


class TestDrivenStepProtocol:
    """commit_driven_step: the batch MAMUT driver's commit entry point."""

    def commit_args(self, session):
        from repro.core.observation import Observation
        from repro.metrics.records import FrameRecord

        video = session.current_video
        record = FrameRecord(
            session_id=session.session_id,
            step=session.step,
            video_name=video.name,
            frame_index=session.frame_index,
            resolution_class=video.resolution_class,
            qp=32,
            threads=4,
            frequency_ghz=3.2,
            fps=30.0,
            psnr_db=40.0,
            bitrate_mbps=2.0,
            encode_time_s=0.03,
            power_w=100.0,
            target_fps=session.request.target_fps,
        )
        observation = Observation(
            fps=30.0, psnr_db=40.0, bitrate_mbps=2.0, power_w=100.0
        )
        return record, observation

    def test_advances_like_commit_step_result(self):
        session = make_session(num_frames=3)
        record, observation = self.commit_args(session)
        session.commit_driven_step(record, observation)
        assert session.step == 1
        assert session.frame_index == 1
        assert session.records == [record]
        assert session.last_observation == observation

    def test_rejected_with_prepare_in_flight(self):
        session = make_session()
        session.prepare()
        record, observation = self.commit_args(session)
        with pytest.raises(ScenarioError):
            session.commit_driven_step(record, observation)

    def test_rejected_with_peek_in_flight(self):
        session = make_session()
        session.peek_decision()
        with pytest.raises(ScenarioError):
            session.commit_driven_step(None, None)

    def test_rejected_after_finish(self):
        session = make_session(num_frames=1)
        record, observation = self.commit_args(session)
        session.commit_driven_step(record, observation)
        assert not session.active
        with pytest.raises(ScenarioError):
            session.commit_driven_step(record, observation)
