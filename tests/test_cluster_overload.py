"""Overload control: queue aging, per-class SLAs, brownout, and the
admission/power-accounting fixes for scaling transients (ISSUE 4)."""

from __future__ import annotations

import pytest

from repro.cluster import (
    AdmissionVerdict,
    AlwaysAdmit,
    BrownoutController,
    CapacityThreshold,
    ClassAwareAdmission,
    ClusterOrchestrator,
    ClusterSnapshot,
    FlashCrowdTraffic,
    PoissonTraffic,
    PowerHeadroom,
    QueueWhileWarming,
    ReactiveThreshold,
    ServerSnapshot,
    WorkloadGenerator,
)
from repro.cluster.admission import AdmissionPolicy
from repro.errors import ClusterError
from repro.manager.factories import static_factory
from repro.video.sequence import ResolutionClass


def make_snapshot(
    *,
    active_per_server=(0, 0),
    queue_length=0,
    last_power_w=40.0,
    idle_power_w=20.0,
    power_cap_w=None,
    offline_power_w=0.0,
    warming_servers=0,
    warming_ready_in=None,
    brownout_level=0,
    queue_by_class=None,
):
    servers = tuple(
        ServerSnapshot(
            server_index=i,
            active_sessions=active,
            last_power_w=last_power_w,
            sessions_dispatched=active,
            idle_power_w=idle_power_w,
            last_active_sessions=active,
        )
        for i, active in enumerate(active_per_server)
    )
    return ClusterSnapshot(
        step=0,
        servers=servers,
        queue_length=queue_length,
        power_cap_w=(
            power_cap_w if power_cap_w is not None else 100.0 * max(1, len(servers))
        ),
        offline_power_w=offline_power_w,
        warming_servers=warming_servers,
        warming_ready_in=warming_ready_in,
        brownout_level=brownout_level,
        queue_by_class=queue_by_class if queue_by_class is not None else {},
    )


def make_event(resolution_class=ResolutionClass.HR, patience=None, seed=0):
    generator = WorkloadGenerator(
        PoissonTraffic(1.0),
        seed=seed,
        hr_fraction=1.0 if resolution_class is ResolutionClass.HR else 0.0,
        frames_per_video=4,
        patience_steps=patience,
    )
    while True:
        events = generator.arrivals(0)
        if events:
            return events[0]


def make_cluster(
    engine="batch",
    *,
    servers=1,
    traffic=None,
    admission=None,
    patience=None,
    patience_by_class=None,
    brownout=None,
    frames_per_video=20,
    seed=1,
    autoscaler=None,
    max_servers=None,
    warmup=2,
):
    workload = WorkloadGenerator(
        traffic if traffic is not None else PoissonTraffic(1.0),
        seed=seed,
        frames_per_video=frames_per_video,
        patience_steps=patience,
        patience_by_class=patience_by_class,
    )
    return ClusterOrchestrator(
        servers,
        workload,
        admission=admission,
        controller_factory=static_factory(qp=32, threads=4, frequency_ghz=3.2),
        seed=seed,
        engine=engine,
        autoscaler=autoscaler,
        max_servers=max_servers,
        provision_warmup_steps=warmup,
        brownout=brownout,
    )


def overload_traffic():
    return FlashCrowdTraffic(0.3, peak_multiplier=6.0, start=5, duration=10)


class TestWorkloadPatience:
    def test_events_carry_patience_and_class(self):
        event = make_event(ResolutionClass.HR, patience=5)
        assert event.patience_steps == 5
        assert event.deadline_step == event.arrival_step + 5
        assert event.service_class == "HR"

    def test_expiry_semantics(self):
        event = make_event(patience=3)
        assert not event.expired(event.arrival_step + 3)
        assert event.expired(event.arrival_step + 4)

    def test_infinite_patience_never_expires(self):
        event = make_event(patience=None)
        assert event.deadline_step is None
        assert not event.expired(10_000)

    def test_per_class_patience_overrides_default(self):
        generator = WorkloadGenerator(
            PoissonTraffic(2.0),
            seed=0,
            frames_per_video=4,
            patience_steps=10,
            patience_by_class={ResolutionClass.LR: 2},
        )
        events = generator.generate(30)
        by_class = {e.request.resolution_class: e.patience_steps for e in events}
        assert by_class[ResolutionClass.HR] == 10
        assert by_class[ResolutionClass.LR] == 2

    def test_negative_patience_rejected(self):
        with pytest.raises(ClusterError):
            WorkloadGenerator(PoissonTraffic(1.0), patience_steps=-1)


class TestQueueAging:
    def overloaded(self, **kwargs):
        return make_cluster(
            traffic=overload_traffic(),
            admission=CapacityThreshold(max_sessions_per_server=2, max_queue=12),
            **kwargs,
        )

    def test_dropped_ledger_is_complete(self):
        result = self.overloaded(patience=3).run(30)
        assert result.dropped > 0
        assert (
            result.arrivals
            == result.admitted + result.rejected + result.dropped + result.abandoned
        )

    def test_queue_waits_exclude_dropped_and_respect_patience(self):
        result = self.overloaded(patience=3).run(30)
        assert len(result.queue_waits) == result.admitted
        assert all(wait <= 3 for wait in result.queue_waits)

    def test_no_patience_means_no_drops(self):
        result = self.overloaded(patience=None).run(30)
        assert result.dropped == 0

    def test_fleet_trace_records_drops(self):
        result = self.overloaded(patience=3).run(30)
        assert sum(s.dropped for s in result.fleet_trace) == result.dropped

    def test_summary_carries_drop_metrics(self):
        summary = self.overloaded(patience=3).run(30).summary()
        assert summary.dropped > 0
        assert summary.shed_rate == pytest.approx(
            (summary.rejected + summary.dropped + summary.abandoned)
            / summary.arrivals
        )


class _RejectAll(AdmissionPolicy):
    def decide(self, event, snapshot):
        return AdmissionVerdict.REJECT


class TestClassAwareAdmission:
    def test_routes_by_resolution_class(self):
        policy = ClassAwareAdmission(
            {
                ResolutionClass.HR: AlwaysAdmit(),
                ResolutionClass.LR: _RejectAll(),
            }
        )
        snapshot = make_snapshot()
        hr = make_event(ResolutionClass.HR)
        lr = make_event(ResolutionClass.LR)
        assert policy.decide(hr, snapshot) is AdmissionVerdict.ADMIT
        assert policy.decide(lr, snapshot) is AdmissionVerdict.REJECT

    def test_default_policy_serves_unmapped_classes(self):
        policy = ClassAwareAdmission(
            {ResolutionClass.HR: _RejectAll()}, default=AlwaysAdmit()
        )
        assert (
            policy.decide(make_event(ResolutionClass.LR), make_snapshot())
            is AdmissionVerdict.ADMIT
        )

    def test_protects_hr_while_lr_sheds_end_to_end(self):
        def run(admission):
            cluster = make_cluster(
                traffic=overload_traffic(),
                admission=admission,
                patience=4,
                seed=3,
            )
            result = cluster.run(30)
            served = {
                record[0].resolution_class
                for server in result.records_by_server
                for record in server.values()
            }
            return result, served

        protected, classes = run(
            ClassAwareAdmission(
                {
                    ResolutionClass.HR: CapacityThreshold(
                        max_sessions_per_server=2, max_queue=12
                    ),
                    ResolutionClass.LR: _RejectAll(),
                }
            )
        )
        assert classes == {ResolutionClass.HR}
        assert protected.rejected > 0  # the LR traffic was shed at the door

    def test_one_class_backlog_cannot_eat_anothers_queue_budget(self):
        # 5 HR requests queued, 0 LR: each class's SLA is judged against
        # its own backlog, not the shared aggregate.
        policy = ClassAwareAdmission(
            {
                ResolutionClass.HR: CapacityThreshold(
                    max_sessions_per_server=1, max_queue=4
                ),
                ResolutionClass.LR: CapacityThreshold(
                    max_sessions_per_server=1, max_queue=4
                ),
            }
        )
        snapshot = make_snapshot(
            active_per_server=(1, 1),
            queue_length=5,
            queue_by_class={"HR": 5},
        )
        assert (
            policy.decide(make_event(ResolutionClass.LR), snapshot)
            is AdmissionVerdict.QUEUE
        )
        assert (
            policy.decide(make_event(ResolutionClass.HR), snapshot)
            is AdmissionVerdict.REJECT
        )

    def test_class_queue_breakdown_recorded_end_to_end(self):
        cluster = make_cluster(
            traffic=overload_traffic(),
            admission=CapacityThreshold(max_sessions_per_server=1, max_queue=12),
            seed=3,
        )
        result = cluster.run(20, drain=False)
        assert result.abandoned > 0  # the run really left a backlog behind
        snapshot = cluster.snapshot(step=20, queue_length=result.abandoned)
        assert sum(snapshot.queue_by_class.values()) == result.abandoned
        assert snapshot.class_queue_length("HR") + snapshot.class_queue_length(
            "LR"
        ) == result.abandoned

    def test_needs_at_least_one_policy(self):
        with pytest.raises(ClusterError):
            ClassAwareAdmission({})

    def test_name_lists_sub_policies(self):
        policy = ClassAwareAdmission({ResolutionClass.HR: AlwaysAdmit()})
        assert "HR=AlwaysAdmit" in policy.name


class TestQueueWhileWarming:
    def test_softens_reject_while_capacity_is_warming(self):
        policy = QueueWhileWarming(_RejectAll(), max_queue=8)
        warming = make_snapshot(warming_servers=2, warming_ready_in=1)
        assert policy.decide(make_event(), warming) is AdmissionVerdict.QUEUE

    def test_reject_stands_without_warming_capacity(self):
        policy = QueueWhileWarming(_RejectAll(), max_queue=8)
        assert policy.decide(make_event(), make_snapshot()) is AdmissionVerdict.REJECT

    def test_reject_stands_once_the_queue_is_full(self):
        policy = QueueWhileWarming(_RejectAll(), max_queue=2)
        snapshot = make_snapshot(
            warming_servers=1, warming_ready_in=1, queue_length=2
        )
        assert policy.decide(make_event(), snapshot) is AdmissionVerdict.REJECT

    def test_horizon_bounds_the_wait(self):
        policy = QueueWhileWarming(_RejectAll(), max_queue=8, horizon_steps=2)
        near = make_snapshot(warming_servers=1, warming_ready_in=2)
        far = make_snapshot(warming_servers=1, warming_ready_in=5)
        assert policy.decide(make_event(), near) is AdmissionVerdict.QUEUE
        assert policy.decide(make_event(), far) is AdmissionVerdict.REJECT

    def test_admit_and_queue_pass_through(self):
        policy = QueueWhileWarming(AlwaysAdmit())
        snapshot = make_snapshot(warming_servers=1, warming_ready_in=1)
        assert policy.decide(make_event(), snapshot) is AdmissionVerdict.ADMIT

    def test_fewer_rejections_end_to_end(self):
        def run(admission):
            cluster = make_cluster(
                traffic=overload_traffic(),
                admission=admission,
                autoscaler=ReactiveThreshold(sessions_per_server=4),
                servers=1,
                max_servers=6,
                warmup=3,
                seed=5,
            )
            return cluster.run(30)

        strict = run(CapacityThreshold(max_sessions_per_server=4, max_queue=2))
        softened = run(
            QueueWhileWarming(
                CapacityThreshold(max_sessions_per_server=4, max_queue=2)
            )
        )
        assert strict.rejected > 0
        assert softened.rejected < strict.rejected
        assert softened.admitted > strict.admitted


class TestBrownoutHysteresis:
    def controller(self, **kwargs):
        defaults = dict(
            enter_queue_per_server=2.0,
            exit_queue_per_server=0.5,
            enter_utilization=0.95,
            exit_utilization=0.5,
            sessions_per_server=4,
            enter_steps=3,
            exit_steps=2,
        )
        defaults.update(kwargs)
        return BrownoutController(**defaults)

    def test_enters_only_after_sustained_pressure(self):
        controller = self.controller()
        hot = make_snapshot(active_per_server=(4, 4), queue_length=8)
        assert controller.observe(hot) == 0
        assert controller.observe(hot) == 0
        assert controller.observe(hot) == 1
        assert controller.active

    def test_single_hot_step_does_not_trigger(self):
        controller = self.controller()
        hot = make_snapshot(active_per_server=(4, 4), queue_length=8)
        calm = make_snapshot(active_per_server=(1, 1))
        controller.observe(hot)
        controller.observe(hot)
        controller.observe(calm)  # streak broken
        assert controller.observe(hot) == 0

    def test_exits_only_after_sustained_calm(self):
        controller = self.controller()
        hot = make_snapshot(active_per_server=(4, 4), queue_length=8)
        calm = make_snapshot(active_per_server=(1, 1))
        for _ in range(3):
            controller.observe(hot)
        assert controller.active
        assert controller.observe(calm) == 1  # one calm step is not enough
        assert controller.observe(calm) == 0
        assert not controller.active

    def test_mid_band_holds_the_current_level(self):
        controller = self.controller()
        # Busy but not pressured, idle-ish but not calm: inside the band.
        mid = make_snapshot(active_per_server=(3, 3), queue_length=3)
        for _ in range(10):
            assert controller.observe(mid) == 0
        hot = make_snapshot(active_per_server=(4, 4), queue_length=8)
        for _ in range(3):
            controller.observe(hot)
        for _ in range(10):
            assert controller.observe(mid) == 1

    def test_degrade_request_relaxes_the_fps_target(self):
        controller = self.controller(fps_relax=0.5)
        request = make_event().request
        degraded = controller.degrade_request(request)
        assert degraded.target_fps == pytest.approx(request.target_fps * 0.5)
        assert degraded.user_id == request.user_id

    def test_parameters_validated(self):
        with pytest.raises(ClusterError):
            BrownoutController(enter_queue_per_server=1.0, exit_queue_per_server=2.0)
        with pytest.raises(ClusterError):
            BrownoutController(enter_utilization=0.5, exit_utilization=0.6)
        with pytest.raises(ClusterError):
            BrownoutController(fps_relax=0.0)
        with pytest.raises(ClusterError):
            BrownoutController(enter_steps=0)


class TestBrownoutOrchestration:
    def run_pair(self):
        admission = lambda extra: CapacityThreshold(
            max_sessions_per_server=2, max_queue=12, brownout_extra_sessions=extra
        )
        baseline = make_cluster(
            traffic=overload_traffic(), admission=admission(0), patience=4
        ).run(30)
        browned = make_cluster(
            traffic=overload_traffic(),
            admission=admission(6),
            patience=4,
            brownout=BrownoutController(
                sessions_per_server=2,
                enter_steps=2,
                exit_steps=4,
                fps_relax=0.6,
                degraded_factory=static_factory(qp=40, threads=2, frequency_ghz=3.2),
            ),
        ).run(30)
        return baseline, browned

    def test_brownout_trades_shedding_for_degradation(self):
        baseline, browned = self.run_pair()
        shed = lambda r: r.rejected + r.dropped + r.abandoned
        assert shed(baseline) > 0
        assert shed(browned) < shed(baseline)
        assert browned.degraded_sessions > 0
        assert browned.brownout_steps > 0

    def test_degraded_sessions_use_the_degraded_factory(self):
        _, browned = self.run_pair()
        qps = {
            record.qp
            for server in browned.records_by_server
            for session in server.values()
            for record in session
        }
        assert qps == {32, 40}

    def test_brownout_level_recorded_in_fleet_trace(self):
        _, browned = self.run_pair()
        levels = [s.brownout_level for s in browned.fleet_trace]
        assert 1 in levels
        # The trace and the summary counter agree exactly: brownout ends
        # with the arrival window (admission is closed during the drain
        # tail, so there is nothing left to degrade).
        assert sum(1 for level in levels if level > 0) == browned.brownout_steps

    def test_acceptance_brownout_serves_everyone_where_baseline_sheds(self):
        """ISSUE 4: the flash-crowd claim pinned by bench_overload.py."""

        def run(brownout, extra):
            return make_cluster(
                servers=2,
                seed=0,
                traffic=FlashCrowdTraffic(
                    0.25, peak_multiplier=6.0, start=10, duration=10
                ),
                frames_per_video=12,
                admission=CapacityThreshold(
                    max_sessions_per_server=4,
                    max_queue=48,
                    brownout_extra_sessions=extra,
                ),
                patience=8,
                brownout=brownout,
            ).run(35)

        baseline = run(None, 0)
        browned = run(
            BrownoutController(
                sessions_per_server=4,
                enter_queue_per_server=2.0,
                enter_steps=2,
                exit_steps=6,
                fps_relax=0.75,
                degraded_factory=static_factory(qp=40, threads=2, frequency_ghz=3.2),
            ),
            10,
        )
        assert baseline.rejected + baseline.dropped + baseline.abandoned > 0
        assert browned.rejected == 0
        assert browned.dropped == 0
        assert browned.abandoned == 0
        assert browned.admitted == browned.arrivals
        assert browned.degraded_sessions > 0


class TestOfflinePowerAccounting:
    """ISSUE 4 satellite: warming/draining draw must reach the cap projection."""

    def test_snapshot_fleet_power_includes_offline_draw(self):
        online = make_snapshot(active_per_server=(2, 2))
        transient = make_snapshot(active_per_server=(2, 2), offline_power_w=35.0)
        assert transient.fleet_power_w == pytest.approx(online.fleet_power_w + 35.0)
        assert transient.projected_power_w(25.0) == pytest.approx(
            online.projected_power_w(25.0) + 35.0
        )
        # The marginal-session estimate reasons about dispatchable servers
        # only; offline draw must not skew it.
        assert transient.marginal_session_power_w(25.0) == pytest.approx(
            online.marginal_session_power_w(25.0)
        )

    def test_orchestrator_reports_warming_draw_and_readiness(self):
        cluster = make_cluster(
            servers=2, warmup=3, autoscaler=ReactiveThreshold(sessions_per_server=4)
        )
        cluster._commission(2, step=0, provisioned=2, reason="test")
        snapshot = cluster.snapshot(step=1, queue_length=0)
        assert snapshot.num_servers == 2  # warming servers are not dispatchable
        assert snapshot.warming_servers == 2
        assert snapshot.warming_ready_in == 2  # ready at step 3, asked at step 1
        assert snapshot.offline_power_w > 0.0
        assert snapshot.fleet_power_w == pytest.approx(
            snapshot.dispatchable_power_w + snapshot.offline_power_w
        )

    def test_power_headroom_sees_the_transient_draw(self):
        policy = PowerHeadroom(watts_per_session_estimate=25.0)
        # 2 servers at 40 W, cap 130 W: 80 + 25 + 25 fits -> ADMIT...
        roomy = make_snapshot(active_per_server=(1, 1), power_cap_w=130.0)
        assert policy.decide(make_event(), roomy) is AdmissionVerdict.ADMIT
        # ...but not once a warming server's 35 W is on the meter.
        transient = make_snapshot(
            active_per_server=(1, 1), power_cap_w=130.0, offline_power_w=35.0
        )
        assert policy.decide(make_event(), transient) is AdmissionVerdict.QUEUE


class TestZeroDispatchableServers:
    """ISSUE 4 satellite: policies must not crash on an empty dispatchable fleet."""

    def test_capacity_threshold_queues_then_rejects(self):
        policy = CapacityThreshold(max_sessions_per_server=2, max_queue=2)
        empty = make_snapshot(active_per_server=())
        assert policy.decide(make_event(), empty) is AdmissionVerdict.QUEUE
        full = make_snapshot(active_per_server=(), queue_length=2)
        assert policy.decide(make_event(), full) is AdmissionVerdict.REJECT

    def test_power_headroom_queues_then_rejects(self):
        policy = PowerHeadroom(max_queue=2)
        empty = make_snapshot(active_per_server=(), power_cap_w=1000.0)
        assert policy.decide(make_event(), empty) is AdmissionVerdict.QUEUE
        full = make_snapshot(active_per_server=(), queue_length=2, power_cap_w=1000.0)
        assert policy.decide(make_event(), full) is AdmissionVerdict.REJECT

    def test_orchestrator_backstops_admit_into_an_empty_fleet(self):
        # AlwaysAdmit (or any custom policy) may still answer ADMIT with
        # zero dispatchable servers; the orchestrator holds the request
        # instead of crashing dispatch.
        cluster = make_cluster(admission=AlwaysAdmit())
        empty = make_snapshot(active_per_server=())
        assert (
            cluster._resolve_verdict(AdmissionVerdict.ADMIT, empty)
            is AdmissionVerdict.QUEUE
        )
        occupied = make_snapshot(active_per_server=(3,))
        assert (
            cluster._resolve_verdict(AdmissionVerdict.ADMIT, occupied)
            is AdmissionVerdict.ADMIT
        )


class TestDrainTailAutoscale:
    """ISSUE 4 satellite: an unservable leftover queue must not pin the fleet."""

    def build(self, engine="batch"):
        # Four servers, one session each at most (tight per-server bound),
        # and a burst that leaves a queue admission will never serve: at the
        # window's end ~3 sessions are mid-playlist and >= 4 requests are
        # still queued.  Without the effective-queue fix, ReactiveThreshold
        # keeps asking to scale *up* (blocked during the tail) and the idle
        # fourth server stays powered for the entire drain.
        return make_cluster(
            engine,
            servers=4,
            seed=2,
            traffic=FlashCrowdTraffic(3.0, peak_multiplier=1.0, start=0, duration=2),
            frames_per_video=30,
            admission=CapacityThreshold(max_sessions_per_server=1, max_queue=16),
            autoscaler=ReactiveThreshold(
                sessions_per_server=4, scale_down_cooldown_steps=2
            ),
            warmup=0,
        )

    def test_idle_servers_are_released_during_the_tail(self):
        result = self.build().run(3)
        assert result.abandoned >= 4  # the tail really had a dead backlog
        tail_downs = [
            e for e in result.scaling_events if e.direction == "down" and e.step >= 3
        ]
        assert tail_downs, "expected scale-downs during the drain tail"
        # A released server stops sampling: its power trace is shorter than
        # the run — that is the idle-power saving.
        assert min(len(trace) for trace in result.samples_by_server) < result.steps

    def test_draining_tail_equivalent_on_both_engines(self):
        scalar = self.build("scalar").run(3)
        batch = self.build("batch").run(3)
        assert scalar.samples_by_server == batch.samples_by_server
        assert scalar.scaling_events == batch.scaling_events
        assert scalar.summary() == batch.summary()


class TestEngineEquivalenceUnderOverload:
    def build(self, engine):
        return make_cluster(
            engine,
            servers=2,
            traffic=overload_traffic(),
            admission=CapacityThreshold(
                max_sessions_per_server=2, max_queue=12, brownout_extra_sessions=4
            ),
            patience=4,
            brownout=BrownoutController(
                sessions_per_server=2,
                enter_steps=2,
                exit_steps=4,
                fps_relax=0.6,
                degraded_factory=static_factory(qp=40, threads=2, frequency_ghz=3.2),
            ),
        )

    def test_drops_and_brownout_identical_on_both_engines(self):
        scalar = self.build("scalar").run(30)
        batch = self.build("batch").run(30)
        assert scalar.dropped > 0 and scalar.degraded_sessions > 0
        assert scalar.records_by_server == batch.records_by_server
        assert scalar.samples_by_server == batch.samples_by_server
        assert scalar.fleet_trace == batch.fleet_trace
        assert scalar.queue_waits == batch.queue_waits
        assert (
            scalar.dropped,
            scalar.degraded_sessions,
            scalar.brownout_steps,
        ) == (batch.dropped, batch.degraded_sessions, batch.brownout_steps)
        assert scalar.summary() == batch.summary()
