"""Unit tests for repro.metrics."""

from __future__ import annotations

import pytest

from repro.metrics.aggregate import summarize_experiment, summarize_session
from repro.metrics.qos import qos_violation_pct, qos_violation_pct_fps, violations
from repro.metrics.records import FrameRecord, PowerSample
from repro.metrics.report import format_table
from repro.video.sequence import ResolutionClass


def record(step=0, fps=25.0, psnr=36.0, bitrate=4.0, power=80.0, threads=8, freq=2.9, qp=32,
           session_id="s0", resolution=ResolutionClass.HR, target=24.0) -> FrameRecord:
    return FrameRecord(
        session_id=session_id,
        step=step,
        video_name="Test",
        frame_index=step,
        resolution_class=resolution,
        qp=qp,
        threads=threads,
        frequency_ghz=freq,
        fps=fps,
        psnr_db=psnr,
        bitrate_mbps=bitrate,
        encode_time_s=1.0 / fps,
        power_w=power,
        target_fps=target,
    )


class TestQos:
    def test_violation_flag(self):
        assert record(fps=23.9).is_violation
        assert not record(fps=24.0).is_violation

    def test_violations_count(self):
        records = [record(fps=f) for f in (20.0, 23.0, 25.0, 30.0)]
        assert violations(records) == 2

    def test_violation_percentage(self):
        records = [record(fps=f) for f in (20.0, 25.0, 25.0, 25.0)]
        assert qos_violation_pct(records) == pytest.approx(25.0)
        assert qos_violation_pct([]) == 0.0

    def test_violation_percentage_from_fps_values(self):
        assert qos_violation_pct_fps([20.0, 26.0], 24.0) == pytest.approx(50.0)
        assert qos_violation_pct_fps([], 24.0) == 0.0


class TestSessionSummary:
    def test_averages(self):
        records = [record(step=i, fps=24.0 + i, threads=6 + i, qp=30 + i) for i in range(4)]
        summary = summarize_session("s0", records)
        assert summary.frames == 4
        assert summary.mean_fps == pytest.approx(25.5)
        assert summary.mean_threads == pytest.approx(7.5)
        assert summary.mean_qp == pytest.approx(31.5)
        assert summary.qos_violation_pct == 0.0
        assert summary.resolution_class is ResolutionClass.HR

    def test_empty_session_rejected(self):
        with pytest.raises(ValueError):
            summarize_session("s0", [])


class TestExperimentSummary:
    def test_aggregates_sessions_and_power(self):
        records = {
            "a": [record(session_id="a", fps=30.0)],
            "b": [record(session_id="b", fps=20.0, resolution=ResolutionClass.LR)],
        }
        samples = [PowerSample(step=0, power_w=100.0, duration_s=0.05, active_sessions=2)]
        summary = summarize_experiment(records, samples)
        assert summary.mean_power_w == pytest.approx(100.0)
        assert summary.energy_j == pytest.approx(5.0)
        assert summary.qos_violation_pct == pytest.approx(50.0)
        assert len(summary.sessions_by_class(ResolutionClass.LR)) == 1

    def test_time_weighted_power_average(self):
        records = {"a": [record()]}
        samples = [
            PowerSample(0, 100.0, 1.0, 1),
            PowerSample(1, 50.0, 3.0, 1),
        ]
        summary = summarize_experiment(records, samples)
        assert summary.mean_power_w == pytest.approx((100.0 + 150.0) / 4.0)

    def test_empty_experiment_rejected(self):
        with pytest.raises(ValueError):
            summarize_experiment({}, [])


class TestReport:
    def test_format_table_alignment_and_floats(self):
        text = format_table(
            ["name", "value"],
            [["alpha", 1.234], ["beta", 10.0]],
            float_format="{:.2f}",
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.23" in text
        assert "10.00" in text
        assert len(lines) == 4

    def test_format_table_handles_non_floats(self):
        text = format_table(["a", "b"], [["x", 3], ["y", "z"]])
        assert "x" in text and "z" in text
