"""Unit tests for repro.platform.meter."""

from __future__ import annotations

import pytest

from repro.errors import PlatformError
from repro.platform.meter import PowerMeter


class TestPowerMeter:
    def test_energy_accumulates(self):
        meter = PowerMeter()
        meter.record(100.0, 2.0)
        meter.record(50.0, 2.0)
        assert meter.energy_joules == pytest.approx(300.0)
        assert meter.elapsed_seconds == pytest.approx(4.0)

    def test_average_power(self):
        meter = PowerMeter()
        meter.record(100.0, 1.0)
        meter.record(50.0, 3.0)
        assert meter.average_power_w() == pytest.approx((100.0 + 150.0) / 4.0)

    def test_empty_meter_averages_zero(self):
        meter = PowerMeter()
        assert meter.average_power_w() == 0.0
        assert meter.windowed_average_w() == 0.0

    def test_windowed_average_forgets_old_samples(self):
        meter = PowerMeter(window_seconds=1.0)
        meter.record(200.0, 1.0)
        meter.record(100.0, 1.0)
        assert meter.windowed_average_w() == pytest.approx(100.0)

    def test_zero_duration_samples_are_ignored(self):
        meter = PowerMeter()
        meter.record(100.0, 0.0)
        assert meter.energy_joules == 0.0

    def test_reset(self):
        meter = PowerMeter()
        meter.record(100.0, 1.0)
        meter.reset()
        assert meter.energy_joules == 0.0
        assert meter.elapsed_seconds == 0.0
        assert meter.windowed_average_w() == 0.0

    def test_validation(self):
        with pytest.raises(PlatformError):
            PowerMeter(window_seconds=0.0)
        meter = PowerMeter()
        with pytest.raises(PlatformError):
            meter.record(-1.0, 1.0)
        with pytest.raises(PlatformError):
            meter.record(1.0, -1.0)
